"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (pip falls back to ``setup.py develop``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
