"""Compare all seven matching algorithms across embedding regimes.

Reproduces the heart of the paper's main experiment (Table 4/5 style) on
one dense and one sparse preset: every surveyed matcher, under both a
strong (R) and weak (G) structural regime plus the name-fused regime
(NR), with wall-clock time and declared peak memory.

Run:  python examples/compare_matchers.py
"""

from repro.core import PAPER_MATCHERS
from repro.experiments import ExperimentConfig, format_table, run_experiment


def main() -> None:
    for preset in ("dbp15k/zh_en", "srprs/en_fr"):
        rows = []
        for regime in ("R", "G", "NR"):
            config = ExperimentConfig(
                preset=preset, input_regime=regime, matchers=PAPER_MATCHERS,
            )
            result = run_experiment(config)
            improvements = result.improvement_over()
            for name in PAPER_MATCHERS:
                run = result.runs[name]
                rows.append({
                    "regime": regime,
                    "matcher": name,
                    "F1": run.f1,
                    "vs DInf": f"{improvements[name] * 100:+.1f}%",
                    "time(s)": round(run.seconds, 3),
                    "peak MiB": round(run.peak_bytes / 2**20, 1),
                })
        print(format_table(rows, title=f"\n=== {preset} ==="))


if __name__ == "__main__":
    main()
