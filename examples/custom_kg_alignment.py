"""Scenario: align your own knowledge graphs end to end.

The downstream-user story: two hand-built movie KGs with overlapping
content, different relation vocabularies, and noisy surface names.  The
example trains the *real* numpy encoders (RREA-style propagation), fuses
in character-n-gram name embeddings, matches with CSLS, and saves the
dataset in the OpenEA text format for interchange with other EA tools.

Run:  python examples/custom_kg_alignment.py
"""

import tempfile
from pathlib import Path

from repro.core import create_matcher
from repro.embedding import NameEncoder, RREAEncoder, fuse_embeddings
from repro.eval import evaluate_pairs
from repro.kg import (
    AlignmentSplit,
    AlignmentTask,
    KnowledgeGraph,
    save_alignment_task,
)


def build_movie_task() -> AlignmentTask:
    """Two tiny movie KGs describing the same facts differently."""
    source = KnowledgeGraph([
        ("inception", "directed_by", "nolan"),
        ("inception", "stars", "dicaprio"),
        ("interstellar", "directed_by", "nolan"),
        ("interstellar", "stars", "mcconaughey"),
        ("titanic", "directed_by", "cameron"),
        ("titanic", "stars", "dicaprio"),
        ("avatar", "directed_by", "cameron"),
        ("avatar", "stars", "worthington"),
        ("memento", "directed_by", "nolan"),
        ("dunkirk", "directed_by", "nolan"),
        ("dunkirk", "stars", "hardy"),
        ("inception", "stars", "hardy"),
    ], name="movie-kb-a")

    target = KnowledgeGraph([
        ("Inception_2010", "director", "C_Nolan"),
        ("Inception_2010", "actor", "L_DiCaprio"),
        ("Interstellar_2014", "director", "C_Nolan"),
        ("Interstellar_2014", "actor", "M_McConaughey"),
        ("Titanic_1997", "director", "J_Cameron"),
        ("Titanic_1997", "actor", "L_DiCaprio"),
        ("Avatar_2009", "director", "J_Cameron"),
        ("Avatar_2009", "actor", "S_Worthington"),
        ("Memento_2000", "director", "C_Nolan"),
        ("Dunkirk_2017", "director", "C_Nolan"),
        ("Dunkirk_2017", "actor", "T_Hardy"),
        ("Inception_2010", "actor", "T_Hardy"),
    ], name="movie-kb-b")

    links = [
        ("inception", "Inception_2010"),
        ("interstellar", "Interstellar_2014"),
        ("titanic", "Titanic_1997"),
        ("avatar", "Avatar_2009"),
        ("memento", "Memento_2000"),
        ("dunkirk", "Dunkirk_2017"),
        ("nolan", "C_Nolan"),
        ("dicaprio", "L_DiCaprio"),
        ("mcconaughey", "M_McConaughey"),
        ("cameron", "J_Cameron"),
        ("worthington", "S_Worthington"),
        ("hardy", "T_Hardy"),
    ]
    # A handful of seeds; the rest is what we want to discover.
    split = AlignmentSplit(
        train=tuple(links[:4]), validation=(), test=tuple(links[4:]),
    )
    # Display names give the name encoder something to chew on.
    source_names = {e: e.replace("_", " ") for e in source.entities}
    target_names = {e: e.replace("_", " ").lower() for e in target.entities}
    return AlignmentTask(
        source, target, split, name="movies",
        source_names=source_names, target_names=target_names,
    )


def main() -> None:
    task = build_movie_task()
    print(task)

    # Real representation learning: relation-aware propagation anchored
    # on the seed pairs, plus name embeddings, fused.
    structural = RREAEncoder(dim=32, num_layers=2, bootstrap_rounds=1, seed=0).encode(task)
    names = NameEncoder(dim=32).encode(task)
    embeddings = fuse_embeddings(structural, names, name_weight=0.6)

    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    gold = {
        (int(q), int(c))
        for q, c in zip(
            [list(queries).index(task.source.entity_id(s)) for s, _ in task.test_links],
            [list(candidates).index(task.target.entity_id(t)) for _, t in task.test_links],
        )
    }
    result = create_matcher("CSLS").match(
        embeddings.source[queries], embeddings.target[candidates]
    )
    metrics = evaluate_pairs(result.pairs, gold)

    print("\nDiscovered alignments:")
    for (query_pos, candidate_pos), score in zip(result.pairs, result.scores):
        source_name = task.source.entities[queries[query_pos]]
        target_name = task.target.entities[candidates[candidate_pos]]
        marker = "+" if (int(query_pos), int(candidate_pos)) in gold else "x"
        print(f"  [{marker}] {source_name:14s} -> {target_name:18s} ({score:+.3f})")
    print(f"\nF1 = {metrics.f1:.3f} on {metrics.num_gold} held-out links")

    # Interchange: persist the task in the OpenEA text layout.
    out = Path(tempfile.mkdtemp()) / "movies"
    save_alignment_task(task, out)
    print(f"Dataset exported in OpenEA format to {out}")


if __name__ == "__main__":
    main()
