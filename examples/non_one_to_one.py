"""Scenario: non-1-to-1 alignment (paper Section 5.2).

KGs model the world at different granularities — one Freebase entity may
correspond to several DBpedia entities and vice versa.  This example
builds an FB_DBP_MUL-style dataset whose gold links form 1-to-many /
many-to-1 / many-to-many clusters, and shows the setting inverting the
main-experiment ranking: the hard 1-to-1 matchers (Hun., SMat) fall
below the simple baseline, while the score rescalers hold up best.

Run:  python examples/non_one_to_one.py
"""

from collections import Counter

from repro.core import create_matcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs
from repro.kg import dataset_statistics


def main() -> None:
    task = load_preset("fb_dbp_mul")
    stats = dataset_statistics(task)
    print(task)
    print(
        f"  gold links: {stats.num_gold_links} "
        f"({stats.num_non_one_to_one_links} non-1-to-1, "
        f"{stats.num_one_to_one_links} 1-to-1)"
    )
    # Show the cluster-size profile of the gold links.
    link_counts = Counter(src for src, _ in task.split.all_links)
    profile = Counter(link_counts.values())
    print(f"  links per source entity: {dict(sorted(profile.items()))}")

    embeddings = build_embeddings(task, "R", preset_name="fb_dbp_mul")
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    source = embeddings.source[queries]
    target = embeddings.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    rows = []
    for name in ("DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat"):
        result = create_matcher(name).match(source, target)
        metrics = evaluate_pairs(result.pairs, gold)
        rows.append({
            "matcher": name,
            "P": metrics.precision,
            "R": metrics.recall,
            "F1": metrics.f1,
        })
    print(format_table(rows, title="\nNon-1-to-1 alignment (FB_DBP_MUL-style)"))
    print(
        "\nRecall is capped: every matcher answers once per source while the\n"
        "gold links fan out.  The 1-to-1 constraint of Hun./SMat now *hurts*."
    )


if __name__ == "__main__":
    main()
