"""Quickstart: align two knowledge graphs in entity embedding space.

Generates a DBP15K-like benchmark pair, builds unified embeddings in the
strong structural regime, runs three matching algorithms, and reports F1
— the minimal end-to-end path through the library.

Run:  python examples/quickstart.py
"""

from repro.core import create_matcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings
from repro.experiments.runner import _gold_local_pairs


def main() -> None:
    # 1. A benchmark alignment task: two correlated KGs + gold links
    #    split into seed (train) and test pairs.
    task = load_preset("dbp15k/zh_en")
    print(task)
    print(f"  seed links: {len(task.seed_links)}, test links: {len(task.test_links)}")

    # 2. Unified entity embeddings (the output of representation
    #    learning).  "R" is the strong structural regime; try "G", "N",
    #    "NR", or the trainable "gcn"/"rrea" encoders.
    embeddings = build_embeddings(task, "R", preset_name="dbp15k/zh_en")
    print(f"  embedding dim: {embeddings.dim}")

    # 3. Slice to the test queries/candidates, as the evaluation protocol
    #    prescribes, and map the gold links into local coordinates.
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    source = embeddings.source[queries]
    target = embeddings.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    # 4. Match with three algorithms from the survey and compare.
    print("\n  matcher   F1      time(s)")
    for name in ("DInf", "CSLS", "Hun."):
        matcher = create_matcher(name)
        result = matcher.match(source, target)
        metrics = evaluate_pairs(result.pairs, gold)
        print(f"  {name:8s}  {metrics.f1:.3f}   {result.seconds:.3f}")


if __name__ == "__main__":
    main()
