"""Scenario: explaining matching decisions (the paper's Appendix D).

The paper argues embedding matching "empowers EA with explainability".
This example runs the high-level pipeline, picks queries where the
simple greedy decision disagrees with CSLS or the reciprocal view, and
prints decision reports: the ranked candidates under each view, hub
competition, and human-readable diagnosis notes.

Run:  python examples/explain_decisions.py
"""

from repro.core import create_matcher
from repro.datasets import load_preset
from repro.eval.explain import explain_decision, format_report
from repro.experiments import build_embeddings
from repro.pipeline import AlignmentPipeline
from repro.similarity import similarity_matrix


class _RegimeEncoder:
    """Adapter: the calibrated regime as an EmbeddingModel."""

    def __init__(self, regime: str, preset: str) -> None:
        self.regime = regime
        self.preset = preset

    def encode(self, task):
        return build_embeddings(task, self.regime, preset_name=self.preset)


def main() -> None:
    preset = "dbp15k/zh_en"
    task = load_preset(preset)
    pipeline = AlignmentPipeline(_RegimeEncoder("R", preset), create_matcher("DInf"))
    prediction = pipeline.align(task)
    print(f"{task}: greedy F1 = {prediction.metrics.f1:.3f}\n")

    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    scores = similarity_matrix(
        prediction.embeddings.source[queries],
        prediction.embeddings.target[candidates],
    )
    source_names = {
        i: task.display_name("source", task.source.entities[q])
        for i, q in enumerate(queries)
    }
    target_names = {
        j: task.display_name("target", task.target.entities[c])
        for j, c in enumerate(candidates)
    }

    shown = 0
    for query in range(scores.shape[0]):
        report = explain_decision(scores, query)
        # Appendix-D-style cases: the advanced views overturn greedy.
        if report.csls_choice == report.greedy_choice and (
            report.reciprocal_choice == report.greedy_choice
        ):
            continue
        print(format_report(
            report, query_name=source_names[query], candidate_names=target_names,
        ))
        print()
        shown += 1
        if shown == 3:
            break
    if shown == 0:
        print("No contested decisions on this run — try the G regime.")


if __name__ == "__main__":
    main()
