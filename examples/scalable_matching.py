"""Scenario: matching at scale with blocking (paper Section 6, insight 4).

"Current best performing embedding matching algorithms are not
scalable."  This example runs the expensive matchers on a DWY100K-like
preset directly and inside the :class:`BlockedMatcher` wrapper, showing
the time/memory reduction blocking buys and the (small) accuracy cost —
the ClusterEA-style direction the paper points to.

Run:  python examples/scalable_matching.py
"""

from repro.core import create_matcher
from repro.core.blocking import BlockedMatcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs


def main() -> None:
    preset = "dwy100k/dbp_wd"
    task = load_preset(preset)
    emb = build_embeddings(task, "G", preset_name=preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)
    print(f"{task}: {len(queries)} queries x {len(candidates)} candidates\n")

    rows = []
    for name in ("RInf", "Hun."):
        direct = create_matcher(name).match(src, tgt)
        blocked = BlockedMatcher(
            create_matcher(name), num_blocks=4, overlap=0.3
        ).match(src, tgt)
        for label, result in ((name, direct), (f"{name}+blocked", blocked)):
            metrics = evaluate_pairs(result.pairs, gold)
            rows.append({
                "matcher": label,
                "F1": metrics.f1,
                "time(s)": round(result.seconds, 3),
                "peak MiB": round(result.peak_bytes / 2**20, 1),
            })
    print(format_table(rows, title="Blocking: direct vs blocked execution"))
    print(
        "\nBlocking bounds the peak working set to one block's matrices; "
        "\naccuracy dips only where gold pairs straddle block boundaries."
    )


if __name__ == "__main__":
    main()
