"""Scenario: aligning KGs with unmatchable entities (paper Section 5.1).

Real integrations (e.g. YAGO vs IMDB) contain entities with no
counterpart.  This example builds a DBP15K+-style task, shows how greedy
matchers bleed precision by answering every query, and how the
Hungarian matcher — via dummy-node absorption — abstains on the
worst-fitting queries and wins.

Run:  python examples/unmatchable_entities.py
"""

from repro.core import create_matcher
from repro.datasets import UnmatchableConfig, add_unmatchable_entities, load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs


def main() -> None:
    # Start from a clean 1-to-1 task and graft unmatchable entities onto
    # both sides (more on the source side, as in DBP15K+).
    base = load_preset("dbp15k/ja_en")
    task = add_unmatchable_entities(
        base, UnmatchableConfig(unmatchable_fraction=0.5, target_fraction=0.25)
    )
    print(task)
    print(
        f"  unmatchable: {len(task.unmatchable_source)} source / "
        f"{len(task.unmatchable_target)} target entities"
    )

    embeddings = build_embeddings(task, "R", preset_name="dbp15k/ja_en")
    queries = task.test_query_ids()          # includes unmatchable sources
    candidates = task.candidate_target_ids()  # includes unmatchable targets
    source = embeddings.source[queries]
    target = embeddings.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)
    print(f"  queries: {len(queries)}, candidates: {len(candidates)}, gold: {len(gold)}")

    rows = []
    for name in ("DInf", "CSLS", "Sink.", "Hun.", "SMat"):
        result = create_matcher(name).match(source, target)
        metrics = evaluate_pairs(result.pairs, gold)
        rows.append({
            "matcher": name,
            "#answers": metrics.num_predicted,
            "P": metrics.precision,
            "R": metrics.recall,
            "F1": metrics.f1,
        })
    print(format_table(rows, title="\nUnmatchable-entity setting (DBP15K+-style)"))
    print(
        "\nNote how Hun./SMat answer fewer queries (surplus sources fall on\n"
        "dummy nodes / stay unmatched) and convert that into precision."
    )


if __name__ == "__main__":
    main()
