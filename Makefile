# Developer entry points.  The default `make check` is the suite CI
# runs on every change: the full test tree minus the exhaustive chaos
# sweeps, which includes the property/metamorphic and obs suites.

PY := PYTHONPATH=src python -m

.PHONY: check test property obs chaos bench bench-obs

check:
	$(PY) pytest -q -m "not chaos"

# Tier-1: everything, fail fast (the acceptance gate).
test:
	$(PY) pytest -x -q

property:
	$(PY) pytest -q tests/property

obs:
	$(PY) pytest -q -m obs

chaos:
	$(PY) pytest -q -m chaos

bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

bench-obs:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q test_obs_overhead.py
