# Developer entry points.  The default `make check` is the suite CI
# runs on every change: lint plus the full test tree minus the
# exhaustive chaos sweeps, which includes the property/metamorphic and
# obs suites.

PY := PYTHONPATH=src python -m

.PHONY: check lint test property obs serve test-serve chaos chaos-crash \
	bench bench-obs bench-serve bench-check bench-scale-smoke soak-smoke \
	drift reference-update

check: lint
	$(PY) pytest -q -m "not chaos and not chaos_crash"

# Ruff config lives in pyproject.toml.  The local toolchain may not
# ship ruff; skip with a notice rather than fail (CI always runs it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed locally; skipping (CI enforces it)"; \
	fi

# Tier-1: everything, fail fast (the acceptance gate).
test:
	$(PY) pytest -x -q

property:
	$(PY) pytest -q tests/property

obs:
	$(PY) pytest -q -m obs

# Serving-grade pass: daemon e2e goldens (real subprocess + HTTP),
# concurrency determinism, and the delta/rebuild property suite.
test-serve:
	$(PY) pytest -q -m serve tests

serve: test-serve

chaos:
	$(PY) pytest -q -m chaos

# Crash-recovery matrix: torn writes, SIGKILL'd pool workers, and
# kill-resume round trips (real process spawns, so slower than tier-1).
chaos-crash:
	$(PY) pytest -q -m chaos_crash

bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

bench-obs:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q test_obs_overhead.py

bench-serve:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q test_serve_latency.py

# Out-of-core scale benchmark at CI-sized scales (~20x smaller); writes
# BENCH_scale_smoke.json, never the committed full-scale baseline.
bench-scale-smoke:
	cd benchmarks && REPRO_SCALE_SMOKE=1 PYTHONPATH=../src python -m pytest -q test_scale.py

# Traffic soak smoke: a short seeded open-loop mixed stream against a
# real daemon subprocess, replayed twice to assert byte-identical
# streams; writes BENCH_soak_smoke.json + soak_report_smoke.json,
# never the committed full-length BENCH_soak.json baseline.
soak-smoke:
	cd benchmarks && REPRO_SOAK_SMOKE=1 PYTHONPATH=../src python -m pytest -q test_soak.py

# Re-run the timed benchmarks and fail on >25% regression against the
# committed BENCH_*.json baselines (see benchmarks/check_regression.py).
bench-check:
	PYTHONPATH=src python benchmarks/check_regression.py

# Accuracy drift gate: re-run the canonical seeded sweep into a fresh
# ledger and check it against the committed reference bands.
drift:
	rm -f /tmp/repro-drift-ledger.jsonl
	$(PY) repro runs record --ledger /tmp/repro-drift-ledger.jsonl
	$(PY) repro runs drift --ledger /tmp/repro-drift-ledger.jsonl

# Rebaseline the drift gate after an intentional accuracy change:
# regenerates benchmarks/results/ledger_seed0.jsonl and
# REFERENCE_accuracy.json; review the diff and commit both.
reference-update:
	PYTHONPATH=src python benchmarks/update_reference.py
