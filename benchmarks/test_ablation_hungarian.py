"""Ablation: native Jonker-Volgenant solver vs scipy's C implementation.

Cross-validates the from-scratch Hungarian solver: identical assignment
quality on the benchmark workload, with the expected constant-factor
time gap between pure numpy and C (the asymptotic class is the same).
"""

import numpy as np

from repro.core import Hungarian
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once


def run_ablation():
    task = load_preset("dbp15k/zh_en")
    emb = build_embeddings(task, "R", preset_name="dbp15k/zh_en")
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    out = {}
    for backend in ("native", "scipy"):
        result = Hungarian(backend=backend).match(src, tgt)
        out[backend] = {
            "metrics": evaluate_pairs(result.pairs, gold),
            "seconds": result.seconds,
            "total_score": float(result.scores.sum()),
        }
    return out


def test_ablation_hungarian_backend(benchmark, save_artifact):
    out = run_once(benchmark, run_ablation)

    rows = [
        {"backend": backend, "F1": data["metrics"].f1,
         "total score": data["total_score"], "time(s)": data["seconds"]}
        for backend, data in out.items()
    ]
    save_artifact(
        "ablation_hungarian",
        format_table(rows, title="Ablation: Hungarian solver backend (R-D-Z)"),
    )

    # Same optimum: the assignment totals agree to numerical precision.
    np.testing.assert_allclose(
        out["native"]["total_score"], out["scipy"]["total_score"], atol=1e-6
    )
    # And the alignment quality is identical.
    assert out["native"]["metrics"].f1 == out["scipy"]["metrics"].f1
    # The C backend is faster, but only by a constant factor (same O(n^3)).
    assert out["scipy"]["seconds"] <= out["native"]["seconds"]
