"""Ablation: choice of similarity metric (cosine vs euclidean vs manhattan).

The paper follows the mainstream and fixes cosine similarity (Section
4.2).  This ablation verifies the choice is not load-bearing: on unit-
normalised embeddings the three metrics produce closely matched F1, with
cosine at least as good as the alternatives.
"""

from repro.experiments import ExperimentConfig, format_table, run_experiment

from conftest import run_once

METRICS = ("cosine", "euclidean", "manhattan")


def run_ablation():
    results = {}
    for metric in METRICS:
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("DInf", "CSLS", "Hun."), metric=metric,
        )
        results[metric] = run_experiment(config)
    return results


def test_ablation_similarity_metric(benchmark, save_artifact):
    results = run_once(benchmark, run_ablation)

    rows = []
    for metric, result in results.items():
        row = {"metric": metric}
        for matcher in ("DInf", "CSLS", "Hun."):
            row[matcher] = result.f1(matcher)
        rows.append(row)
    save_artifact(
        "ablation_metric",
        format_table(rows, title="Ablation: similarity metric (R-regime, D-Z)"),
    )

    # On normalised embeddings the metrics agree closely...
    for matcher in ("DInf", "Hun."):
        values = [results[m].f1(matcher) for m in METRICS]
        assert max(values) - min(values) < 0.08, matcher
    # ...and cosine (the paper's choice) is never dominated badly.
    for metric in METRICS:
        assert results["cosine"].f1("DInf") >= results[metric].f1("DInf") - 0.05
