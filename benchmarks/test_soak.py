"""Soak benchmark: sustained mixed traffic against a real ``repro serve``.

Replays a seeded open-loop workload (Zipfian reads, interleaved
inserts/deletes/explains) from :mod:`repro.loadgen` against a real
daemon subprocess — twice, from pristine artifacts, with the same seed
— and asserts the two replays fired the *identical* request stream
(fingerprint equality).  The measured tail percentiles and sustained
QPS land in ``benchmarks/results/BENCH_soak.json``, gated by
``check_regression.py``'s latency (``*p99*``/``*p999*``), timing, and
rate families; the full schema-versioned soak report is written next to
it for the CI artifact upload.

The daemon's own telemetry is part of the gate: after the first run the
harness scrapes ``/metrics``, snapshots the raw exposition document
next to the report, and asserts the server-side p99 (derived from the
``repro_serve_request_seconds`` histogram) agrees with the client-side
p99 to within one histogram bucket width — the two independent
measurements of the same tail must corroborate each other.

Set ``REPRO_SOAK_SMOKE=1`` for the CI smoke job: a shorter, lighter
stream whose numbers go to ``BENCH_soak_smoke.json`` so the committed
full baseline is never overwritten.  The smoke gate is **p99 + zero
errors**; p999 is deliberately smoke-exempt — at smoke sample counts
p999 is a single worst sample, pure noise (DESIGN.md §13).
"""

import json
import os

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.loadgen import ServeDaemon, SoakRunner, WorkloadSpec, stream_fingerprint
from repro.loadgen.report import server_latency_summary
from repro.obs.histogram import DEFAULT_LATENCY_BOUNDS, bucket_width_at
from repro.storage import EmbeddingStore

from conftest import RESULTS_DIR

pytestmark = [pytest.mark.serve, pytest.mark.soak]

SMOKE = os.environ.get("REPRO_SOAK_SMOKE", "") not in ("", "0")
N_BASE = 512 if SMOKE else 2000
DIM = 32
N_CLUSTERS = 8 if SMOKE else 16
QPS = 40.0 if SMOKE else 80.0
DURATION = 4.0 if SMOKE else 10.0
SEED = 20240808
WORKERS = 8
#: Smoke SLO: generous enough for a loaded shared CI runner, tight
#: enough that a compaction stall or batcher pile-up blows through it.
P99_CEILING_SECONDS = 0.5
RESULT_NAME = "BENCH_soak_smoke.json" if SMOKE else "BENCH_soak.json"
REPORT_NAME = "soak_report_smoke.json" if SMOKE else "soak_report.json"
METRICS_NAME = "soak_metrics_smoke.prom" if SMOKE else "soak_metrics.prom"

SPEC = WorkloadSpec(seed=SEED, qps=QPS, duration_seconds=DURATION, k=10)


def _build_artifacts(root):
    """Pristine store + index (the daemon mutates its store during a soak)."""
    rng = np.random.default_rng(SEED)
    base = rng.normal(size=(N_BASE, DIM)).astype(np.float64)
    capacity = N_BASE + int(QPS * DURATION) + 8  # room for every insert
    store = EmbeddingStore.create(
        root / "emb.store", base.shape, "float64", capacity=capacity
    )
    store[:] = base
    store.update_checksum()
    store.close()
    IVFIndex(n_clusters=N_CLUSTERS).train(base).add(base).save(root / "ivf.json")
    return root / "emb.store", root / "ivf.json"


def test_stream_generation_is_deterministic():
    """Same spec + same id space => byte-identical request stream."""
    first = SPEC.generate(N_BASE, DIM)
    second = SPEC.generate(N_BASE, DIM)
    assert stream_fingerprint(first) == stream_fingerprint(second)
    reseeded = WorkloadSpec(
        seed=SEED + 1, qps=QPS, duration_seconds=DURATION, k=10
    ).generate(N_BASE, DIM)
    assert stream_fingerprint(reseeded) != stream_fingerprint(first)


def test_soak_replay(tmp_path):
    expected = stream_fingerprint(SPEC.generate(N_BASE, DIM))

    reports = []
    metrics_text = ""
    for run in range(2):
        root = tmp_path / f"run{run}"
        root.mkdir()
        store, index = _build_artifacts(root)
        with ServeDaemon(store, index) as daemon:
            runner = SoakRunner(daemon.url, workers=WORKERS)
            reports.append(runner.run(SPEC))
            assert daemon.alive(), "daemon died under soak traffic"
            if run == 0:
                # The daemon is a fresh subprocess per run, so its
                # histogram holds exactly this run's requests.
                metrics_text = runner.scrape_metrics()

    # The replay contract: both runs fired the identical stream the
    # spec describes — the soak is reproducible, not merely "similar".
    assert [r.stream_fingerprint for r in reports] == [expected, expected]

    report = reports[0]
    for candidate in reports:
        assert candidate.completed == candidate.scheduled
        assert candidate.errors == 0, candidate.phases
        assert candidate.timeouts == 0, candidate.phases
    assert report.scheduled > 0.5 * QPS * DURATION  # the stream is real load
    assert {"query", "insert"} <= set(report.phases)  # mixed, not read-only
    assert report.sustained_qps > 0.3 * QPS  # daemon kept up with the schedule

    p50 = report.latency["p50_seconds"]
    p99 = report.latency["p99_seconds"]
    assert 0.0 < p50 <= p99
    # The smoke gate: tail + zero errors (asserted above).  p999 is
    # smoke-exempt by design — see the module docstring.
    assert p99 < P99_CEILING_SECONDS, report.latency

    # Two views of the same tail: the client's open-loop measurement and
    # the daemon's own histogram must agree within one bucket width —
    # the histogram's stated resolution.  Client latency includes HTTP
    # framing and scheduler delay the server never sees, so the band is
    # the bucket width at the larger of the two estimates.
    server = server_latency_summary(metrics_text)
    assert server is not None, "daemon /metrics exposed no request histogram"
    server_p99 = server["p99_seconds"]
    tolerance = bucket_width_at(DEFAULT_LATENCY_BOUNDS, max(p99, server_p99))
    assert abs(p99 - server_p99) <= tolerance, (
        f"client p99 {p99 * 1e3:.2f}ms vs server p99 {server_p99 * 1e3:.2f}ms: "
        f"disagree beyond one bucket width ({tolerance * 1e3:.2f}ms)"
    )

    report.save(RESULTS_DIR / REPORT_NAME)
    _write_results(report, server)
    (RESULTS_DIR / METRICS_NAME).write_text(metrics_text, encoding="utf-8")
    print(
        f"\nsoak: {report.scheduled} reqs @ {QPS:.0f} qps offered, "
        f"{report.sustained_qps:.1f} sustained; "
        f"p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms "
        f"p999={report.latency['p999_seconds'] * 1e3:.2f}ms "
        f"max_version_lag={report.max_version_lag}"
    )


def _write_results(report, server):
    """The curated leaves the bench-regression gate reads."""
    phases = {
        kind: {
            "count": stats.count,
            "p99_seconds": stats.latency["p99_seconds"],
        }
        for kind, stats in report.phases.items()
    }
    document = {
        "soak": {
            "smoke": SMOKE,
            "n_base": N_BASE,
            "dim": DIM,
            "offered_qps": QPS,
            "duration": DURATION,
            "seed": SEED,
            "requests": report.scheduled,
            "errors": report.errors,
            "timeouts": report.timeouts,
            "max_version_lag": report.max_version_lag,
            "p50_seconds": report.latency["p50_seconds"],
            "p95_seconds": report.latency["p95_seconds"],
            "p99_seconds": report.latency["p99_seconds"],
            "p999_seconds": report.latency["p999_seconds"],
            "sustained_per_second": report.sustained_qps,
            "server_p99_seconds": server["p99_seconds"],
            "server_request_count": server["count"],
            "phases": phases,
        }
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / RESULT_NAME
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
