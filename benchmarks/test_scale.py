"""Out-of-core scaling benchmark: memmap store -> blocked candidates ->
sparse matching, at 10k and 100k entities (1M store smoke).

Records throughput (``entities_per_second``) and measured peak RSS
(``peak_rss_bytes``) into ``benchmarks/results/BENCH_scale.json`` — the
committed file is the baseline ``check_regression.py`` gates against
(rates may not collapse, RSS may not balloon).  The *structural*
guarantees are asserted here, so the no-n-x-n claim never rests on the
RSS gate alone: the sharded path touches only O(n k) candidate
structures (``sparse.densify`` stays flat, nnz <= n k), and every pair
list is a full one-to-one matching.

Set ``REPRO_SCALE_SMOKE=1`` to shrink the scales ~20x (the CI smoke
job); the JSON is then written to ``BENCH_scale_smoke.json`` so the
committed full-scale baseline is never overwritten by a smoke run.
"""

import json
import os
import time

import numpy as np

from repro.core.greedy import Greedy
from repro.core.hungarian import Hungarian
from repro.index.blocked import blocked_candidates
from repro.obs.metrics import get_metrics
from repro.storage import EmbeddingStore
from repro.utils.memory import peak_rss_bytes
from repro.utils.parallel import plan_shards

from conftest import RESULTS_DIR

SMOKE = os.environ.get("REPRO_SCALE_SMOKE", "") not in ("", "0")
#: (label, n_entities, candidate k, matcher factory)
POINTS = (
    ("10k", 500 if SMOKE else 10_000, 50, Hungarian),
    ("100k", 2_000 if SMOKE else 100_000, 10, Greedy),
)
HUGE = 50_000 if SMOKE else 1_000_000
DIM = 32
MEMORY_BUDGET = 256 * 2**20
RESULT_NAME = "BENCH_scale_smoke.json" if SMOKE else "BENCH_scale.json"
#: Generous no-n-x-n ceiling: the 100k dense matrix alone would be
#: 80 GB, so any peak in this vicinity proves the sharded path held.
RSS_CEILING_BYTES = 8 * 2**30


def _aligned(rng, n):
    latent = rng.normal(size=(n, DIM)).astype(np.float32)
    source = latent + 0.3 * rng.normal(size=(n, DIM)).astype(np.float32)
    target = latent + 0.3 * rng.normal(size=(n, DIM)).astype(np.float32)
    return source, target


def test_out_of_core_scaling(tmp_path):
    registry = get_metrics()
    record = {
        "smoke": SMOKE,
        "dim": DIM,
        "memory_budget_bytes": MEMORY_BUDGET,
        "points": {},
        "huge_store": {},
    }

    for label, n, k, matcher_factory in POINTS:
        rng = np.random.default_rng(0)
        source, target = _aligned(rng, n)

        # The embeddings live in memmap stores, as they would out of core.
        start = time.perf_counter()
        source_store = EmbeddingStore.write(tmp_path / f"{label}_s.bin", source)
        target_store = EmbeddingStore.write(tmp_path / f"{label}_t.bin", target)
        store_seconds = time.perf_counter() - start

        densifies = registry.counter("sparse.densify")
        start = time.perf_counter()
        candidates = blocked_candidates(
            source_store,
            target_store,
            k,
            nprobe=8,
            train_iterations=4,
            memory_budget=MEMORY_BUDGET,
        )
        candidates_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = matcher_factory().match_candidates(candidates)
        match_seconds = time.perf_counter() - start

        # Structural no-n-x-n guarantees (never trust the RSS gate alone).
        assert registry.counter("sparse.densify") == densifies
        assert candidates.nnz <= n * k
        assert len(result.pairs) == n
        assert len(set(result.pairs[:, 0].tolist())) == n  # one row, one pair
        if matcher_factory is Hungarian:  # only Hungarian promises 1-to-1
            assert len(set(result.pairs[:, 1].tolist())) == n

        total = candidates_seconds + match_seconds
        record["points"][label] = {
            "n_entities": n,
            "k": k,
            "matcher": matcher_factory.__name__,
            "store_seconds": store_seconds,
            "candidates_seconds": candidates_seconds,
            "match_seconds": match_seconds,
            "entities_per_second": n / total,
            "candidate_nnz": candidates.nnz,
            "peak_rss_bytes": peak_rss_bytes(),
        }
        source_store.close()
        target_store.close()

    assert record["points"]["100k"]["peak_rss_bytes"] < RSS_CEILING_BYTES

    # 1M smoke: the store and the shard plan must handle the scale even
    # though scoring it end-to-end is out of a CI box's time budget.
    start = time.perf_counter()
    with EmbeddingStore.create(
        tmp_path / "huge.bin", (HUGE, 8), dtype="float32"
    ) as store:
        for band, view in store.row_shards(chunk_rows=HUGE // 4):
            view[:] = 1.0
        store.flush()
    with EmbeddingStore.open(tmp_path / "huge.bin") as store:
        assert store.n_rows == HUGE
        view = store.rows(slice(HUGE - 5, HUGE))
        assert float(view.sum()) == 5.0 * 8
    huge_seconds = time.perf_counter() - start
    plan = plan_shards(HUGE, HUGE, memory_budget=MEMORY_BUDGET, itemsize=8)
    assert sum(shard.elems for shard in plan) == HUGE * HUGE
    record["huge_store"] = {
        "n_entities": HUGE,
        "store_roundtrip_seconds": huge_seconds,
        "plan_shard_count": len(plan),
        "peak_rss_bytes": peak_rss_bytes(),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / RESULT_NAME).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
