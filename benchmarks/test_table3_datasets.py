"""Benchmark: regenerate Table 3 (dataset statistics)."""

from repro.experiments import format_table, table3_dataset_statistics

from conftest import run_once


def test_table3_dataset_statistics(benchmark, save_artifact):
    table = run_once(benchmark, table3_dataset_statistics)
    text = format_table(table.rows, title=table.title, float_format="{:.1f}")
    save_artifact("table3", text)

    rows = {row["preset"]: row for row in table.rows}

    # Density ordering of Table 3: DBP15K-like pairs are dense
    # (avg degree 4.2-5.6), SRPRS-like sparse (2.3-2.6).
    for preset in ("dbp15k/zh_en", "dbp15k/ja_en", "dbp15k/fr_en"):
        assert rows[preset]["Avg. degree"] >= 3.5
    for preset in ("srprs/en_fr", "srprs/en_de", "srprs/dbp_wd", "srprs/dbp_yg"):
        assert rows[preset]["Avg. degree"] <= 3.0

    # D-F is the densest DBP pair, as in the paper (5.6).
    assert rows["dbp15k/fr_en"]["Avg. degree"] == max(
        rows[p]["Avg. degree"] for p in ("dbp15k/zh_en", "dbp15k/ja_en", "dbp15k/fr_en")
    )

    # DWY100K-like presets are the large ones.
    assert rows["dwy100k/dbp_wd"]["#Entities"] > 3 * rows["dbp15k/zh_en"]["#Entities"]

    # FB_DBP_MUL is dominated by non-1-to-1 links (paper: 20,353 of 22,117).
    fb = rows["fb_dbp_mul"]
    assert fb["#non-1-to-1"] > 0.6 * fb["#Gold links"]

    # Unmatchable variants contain more entities than gold links can cover.
    plus = rows["dbp15k_plus/zh_en"]
    base = rows["dbp15k/zh_en"]
    assert plus["#Entities"] > base["#Entities"]
    assert plus["#Gold links"] == base["#Gold links"]
