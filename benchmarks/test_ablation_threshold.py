"""Ablation: threshold abstention under unmatchable entities (extension).

The paper's insight 2 leaves "much room for improvement" under the
unmatchable setting.  This ablation evaluates the ThresholdMatcher
extension: an abstention cutoff calibrated on a validation pool (the
validation links plus a held-out share of the unmatchable entities)
recovers precision that vanilla greedy forfeits, closing part of the
gap to the Hungarian matcher without its O(n^3) cost.
"""

import numpy as np

from repro.core import DInf, Hungarian, ThresholdMatcher, calibrate_threshold
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs
from repro.similarity import similarity_matrix

from conftest import run_once


def run_ablation():
    preset = "dbp15k_plus/zh_en"
    task = load_preset(preset)
    emb = build_embeddings(task, "R", preset_name=preset)

    # Hold out 30% of the unmatchable entities as the calibration pool.
    n_holdout_src = len(task.unmatchable_source) * 3 // 10
    n_holdout_tgt = len(task.unmatchable_target) * 3 // 10
    holdout_src = [task.source.entity_id(e) for e in task.unmatchable_source[:n_holdout_src]]
    holdout_tgt = [task.target.entity_id(e) for e in task.unmatchable_target[:n_holdout_tgt]]

    # Validation pool: validation links + held-out unmatchables.
    valid = task.validation_index_pairs()
    valid_queries = np.concatenate([valid[:, 0], np.asarray(holdout_src, dtype=np.int64)])
    valid_candidates = np.concatenate([valid[:, 1], np.asarray(holdout_tgt, dtype=np.int64)])
    valid_scores = similarity_matrix(
        emb.source[valid_queries], emb.target[valid_candidates]
    )
    valid_gold = [(i, i) for i in range(len(valid))]
    threshold = calibrate_threshold(DInf(), valid_scores, valid_gold)

    # Test pool: the standard query/candidate sets minus the held-out
    # calibration entities (no leakage).
    queries = np.array(
        [q for q in task.test_query_ids() if q not in set(holdout_src)], dtype=np.int64
    )
    candidates = np.array(
        [c for c in task.candidate_target_ids() if c not in set(holdout_tgt)],
        dtype=np.int64,
    )
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    contenders = {
        "DInf": DInf(),
        "DInf+threshold": ThresholdMatcher(DInf(), threshold),
        "Hun.": Hungarian(),
    }
    return {
        name: evaluate_pairs(matcher.match(src, tgt).pairs, gold)
        for name, matcher in contenders.items()
    }


def test_ablation_threshold_abstention(benchmark, save_artifact):
    metrics = run_once(benchmark, run_ablation)

    rows = [
        {"matcher": name, "P": m.precision, "R": m.recall, "F1": m.f1,
         "#answers": m.num_predicted}
        for name, m in metrics.items()
    ]
    save_artifact(
        "ablation_threshold",
        format_table(rows, title="Ablation: abstention threshold on DBP15K+ (R)"),
    )

    # Abstention trades recall for precision and improves F1 over plain
    # greedy under unmatchable queries.
    assert metrics["DInf+threshold"].precision > metrics["DInf"].precision
    assert metrics["DInf+threshold"].f1 >= metrics["DInf"].f1
    # The calibrated wrapper answers fewer queries than vanilla greedy.
    assert metrics["DInf+threshold"].num_predicted < metrics["DInf"].num_predicted
