"""Observability overhead micro-benchmark.

Times the two hottest instrumented paths — the engine's chunked
similarity computation and the per-iteration Sinkhorn loop — against
uninstrumented reference implementations of the *same* work, with the
default null recorder installed.  Records min-of-N wall-clock for the
disabled-tracing, enabled-tracing, and reference variants into
``benchmarks/results/BENCH_obs.json``, and asserts the disabled-tracing
overhead stays under the 5 % budget (DESIGN.md §7).

Min-of-N is deliberate: the minimum is the least noisy estimator of the
true cost on a shared machine, and the overhead being measured is a
constant few function calls per span site.

A second benchmark covers the run ledger and live event stream: with
neither opted in, a ``run_experiment`` sweep's only residue is the
early-out ``events.emit()`` calls and a handful of ``is None`` checks,
and their implied cost must stay under 2 % of the sweep's wall time.

A third covers the serving daemon's *always-on* telemetry: the latency
histogram observe, the SLO record, and the access-log emit every
completed request pays.  Their summed per-call price must stay under
5 % of the cheapest real request work the daemon does.
"""

import json
import time

import numpy as np
import pytest

from repro.core.sinkhorn import _EPS, sinkhorn_scores
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import events as obs_events
from repro.obs import trace
from repro.obs.ledger import RunLedger
from repro.similarity.engine import SimilarityEngine
from repro.similarity.metrics import prepare_metric
from repro.utils.parallel import map_chunks, row_chunks

from conftest import RESULTS_DIR

pytestmark = pytest.mark.obs

OVERHEAD_BUDGET = 1.05  # disabled tracing must cost < 5 %
SWEEP_BUDGET = 1.02  # disabled ledger+events must cost < 2 % of a sweep
DURABLE_BUDGET = 1.05  # fsync'd ledger appends must cost < 5 % of a sweep
SERVE_BUDGET = 1.05  # always-on request telemetry must cost < 5 % of a request

ENGINE_N, ENGINE_DIM, ENGINE_CHUNK = 2000, 128, 128
SINKHORN_N, SINKHORN_ITERATIONS = 300, 100
REPEATS = 5


def _merge_results(key, entry):
    """Merge one benchmark section into BENCH_obs.json (tests may run solo)."""
    path = RESULTS_DIR / "BENCH_obs.json"
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        document = {}
    document[key] = entry
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def _min_of(func, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _engine_embeddings():
    rng = np.random.default_rng(0)
    source = rng.normal(size=(ENGINE_N, ENGINE_DIM))
    target = source + 0.3 * rng.normal(size=(ENGINE_N, ENGINE_DIM))
    return source, target


def _reference_similarity(source, target):
    """The engine's compute path with every obs call stripped."""
    source = source.astype(np.float64, copy=False)
    target = target.astype(np.float64, copy=False)
    kernel = prepare_metric("cosine", source, target)
    out = np.empty((source.shape[0], target.shape[0]), dtype=np.float64)
    chunks = row_chunks(source.shape[0], ENGINE_CHUNK)

    def work(rows):
        out[rows] = kernel(rows)

    map_chunks(work, chunks, workers=1)
    return out


def _reference_sinkhorn(scores, iterations, temperature):
    """sinkhorn_scores with the span/metric/guard-event calls stripped."""

    def logsumexp(matrix, axis):
        peak = matrix.max(axis=axis, keepdims=True)
        return peak + np.log(
            np.maximum(np.exp(matrix - peak).sum(axis=axis, keepdims=True), _EPS)
        )

    log_kernel = scores / temperature
    assert np.all(np.isfinite(log_kernel))
    for _ in range(iterations):
        log_kernel = log_kernel - logsumexp(log_kernel, axis=1)
        log_kernel = log_kernel - logsumexp(log_kernel, axis=0)
        assert np.all(np.isfinite(log_kernel))
    return np.exp(log_kernel)


def test_disabled_tracing_overhead_under_budget():
    assert not trace.tracing_enabled()  # the default the budget applies to

    source, target = _engine_embeddings()
    rng = np.random.default_rng(1)
    sinkhorn_input = rng.normal(size=(SINKHORN_N, SINKHORN_N))

    record = {"budget_ratio": OVERHEAD_BUDGET, "repeats": REPEATS, "paths": {}}

    # -- engine similarity: one span + N chunk spans per computation ----
    with SimilarityEngine(workers=1, cache=False, chunk_rows=ENGINE_CHUNK) as engine:
        np.testing.assert_allclose(  # same work before timing it
            engine.similarity(source, target), _reference_similarity(source, target)
        )
        disabled = _min_of(lambda: engine.similarity(source, target))
        reference = _min_of(lambda: _reference_similarity(source, target))
        with trace.recording():
            enabled = _min_of(lambda: engine.similarity(source, target))
    record["paths"]["engine.similarity"] = {
        "n": ENGINE_N, "dim": ENGINE_DIM, "chunk_rows": ENGINE_CHUNK,
        "reference_seconds": reference,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_ratio": disabled / reference,
    }

    # -- sinkhorn: one span per iteration -------------------------------
    np.testing.assert_allclose(
        sinkhorn_scores(sinkhorn_input, SINKHORN_ITERATIONS, 0.1),
        _reference_sinkhorn(sinkhorn_input, SINKHORN_ITERATIONS, 0.1),
    )
    disabled = _min_of(
        lambda: sinkhorn_scores(sinkhorn_input, SINKHORN_ITERATIONS, 0.1)
    )
    reference = _min_of(
        lambda: _reference_sinkhorn(sinkhorn_input, SINKHORN_ITERATIONS, 0.1)
    )
    with trace.recording():
        enabled = _min_of(
            lambda: sinkhorn_scores(sinkhorn_input, SINKHORN_ITERATIONS, 0.1)
        )
    record["paths"]["sinkhorn"] = {
        "n": SINKHORN_N, "iterations": SINKHORN_ITERATIONS,
        "reference_seconds": reference,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_ratio": disabled / reference,
    }

    _merge_results("tracing", record)

    for path, entry in record["paths"].items():
        assert entry["disabled_ratio"] < OVERHEAD_BUDGET, (
            f"{path}: disabled-tracing overhead "
            f"{(entry['disabled_ratio'] - 1) * 100:.1f}% exceeds the "
            f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
        )


def test_disabled_ledger_and_events_overhead_under_budget(tmp_path):
    """Opting out of the ledger and event stream must stay ~free.

    With no sinks and no ledger, a sweep's instrumentation residue is
    exactly its early-out ``emit()`` calls (the ``ledger is None``
    branches are single pointer checks).  Count the events one enabled
    sweep produces, price a disabled ``emit()`` by timing a tight loop,
    and require the implied total under 2 % of the sweep's wall time.
    """
    assert not obs_events.enabled()
    config = ExperimentConfig(
        preset="dbp15k/zh_en", input_regime="R", scale=0.2, seed=0
    )

    run_experiment(config)  # warm dataset/embedding construction paths
    disabled = _min_of(lambda: run_experiment(config), repeats=3)

    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with obs_events.emitting() as sink:
        start = time.perf_counter()
        run_experiment(config, ledger=ledger)
        enabled = time.perf_counter() - start
    n_events = len(sink.events)
    n_records = len(ledger.records())
    assert n_events > 0 and n_records > 0

    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        obs_events.emit("bench.noop", value=1, other="x")
    per_call = (time.perf_counter() - start) / calls

    implied_overhead = n_events * per_call
    implied_ratio = 1.0 + implied_overhead / disabled
    _merge_results("sweep", {
        "budget_ratio": SWEEP_BUDGET,
        "preset": config.preset,
        "scale": config.scale,
        "disabled_seconds": disabled,
        "enabled_ledger_events_seconds": enabled,
        "events_per_sweep": n_events,
        "ledger_records_per_sweep": n_records,
        "disabled_emit_seconds_per_call": per_call,
        "implied_disabled_ratio": implied_ratio,
    })

    assert implied_ratio < SWEEP_BUDGET, (
        f"{n_events} disabled emit() calls at {per_call * 1e9:.0f}ns imply "
        f"{(implied_ratio - 1) * 100:.2f}% sweep overhead; budget is "
        f"{(SWEEP_BUDGET - 1) * 100:.0f}%"
    )


def test_durable_append_overhead_under_budget(tmp_path):
    """``--durable`` fsync'd ledger appends must stay under 5 % of a sweep.

    A sweep appends one record per matcher cell, so the durable surcharge
    is ``cells x (durable_append - plain_append)``.  Price both append
    variants over repeated real appends (min-of-N over batches, so each
    sample amortises the open/seek cost the same way the sweep does) and
    require the implied surcharge under 5 % of the sweep's wall time.
    """
    from repro.obs.ledger import build_record

    config = ExperimentConfig(
        preset="dbp15k/zh_en", input_regime="R", scale=0.2, seed=0
    )
    run_experiment(config)  # warm dataset/embedding construction paths
    sweep_seconds = _min_of(lambda: run_experiment(config), repeats=3)
    n_records = len(config.matchers)

    record = build_record(
        fingerprint="bench", preset=config.preset, regime="R",
        task=config.preset, matcher="CSLS", seed=0, scale=config.scale,
        metric="cosine", status="ok",
        metrics={"precision": 0.5, "recall": 0.5, "f1": 0.5},
        ranking={"hits@1": 0.5},
    )
    batch = 50

    def _append_batch(durable):
        ledger = RunLedger(tmp_path / f"bench-{durable}.jsonl", durable=durable)
        ledger.path.unlink(missing_ok=True)
        for _ in range(batch):
            ledger.append(record)

    plain = _min_of(lambda: _append_batch(False)) / batch
    durable = _min_of(lambda: _append_batch(True)) / batch

    implied_overhead = n_records * max(durable - plain, 0.0)
    implied_ratio = 1.0 + implied_overhead / sweep_seconds
    _merge_results("durable_append", {
        "budget_ratio": DURABLE_BUDGET,
        "preset": config.preset,
        "scale": config.scale,
        "sweep_seconds": sweep_seconds,
        "ledger_records_per_sweep": n_records,
        "plain_append_seconds": plain,
        "durable_append_seconds": durable,
        "implied_durable_ratio": implied_ratio,
    })

    assert implied_ratio < DURABLE_BUDGET, (
        f"{n_records} durable appends at {durable * 1e3:.2f}ms "
        f"(vs {plain * 1e3:.2f}ms plain) imply "
        f"{(implied_ratio - 1) * 100:.2f}% sweep overhead; budget is "
        f"{(DURABLE_BUDGET - 1) * 100:.0f}%"
    )


def test_serve_request_telemetry_overhead_under_budget(tmp_path):
    """The daemon's always-on per-request telemetry must cost < 5 %.

    Every completed request pays exactly three instrument calls: one
    latency-histogram ``observe``, one SLO ``record``, and one sinkless
    ``serve.access`` emit.  Price each with a tight loop, then require
    their sum under 5 % of the *cheapest* real request work the daemon
    does — a single-vector :meth:`ServingState.query` against a small
    snapshot.  Heavier requests only dilute a fixed surcharge, so the
    ratio measured here is the worst case.
    """
    from repro.index import IVFIndex
    from repro.obs.histogram import Histogram
    from repro.obs.slo import SLOTracker
    from repro.serve.state import ServingState
    from repro.storage import EmbeddingStore

    assert not obs_events.enabled()

    rng = np.random.default_rng(2)
    base = rng.normal(size=(512, 32)).astype(np.float64)
    store = EmbeddingStore.create(
        tmp_path / "emb.store", base.shape, "float64", capacity=520
    )
    store[:] = base
    store.update_checksum()
    store.close()
    IVFIndex(n_clusters=8).train(base).add(base).save(tmp_path / "ivf.json")
    state = ServingState.load(tmp_path / "emb.store", tmp_path / "ivf.json")
    probe_vector = base[0]

    state.query(probe_vector, 10)  # warm the snapshot path
    query_seconds = _min_of(lambda: state.query(probe_vector, 10))
    state.store.close()

    calls = 100_000
    histogram = Histogram()
    start = time.perf_counter()
    for _ in range(calls):
        histogram.observe(0.004)
    observe_per_call = (time.perf_counter() - start) / calls

    tracker = SLOTracker(objective=0.999, latency_threshold=0.25)
    start = time.perf_counter()
    for _ in range(calls):
        tracker.record(True, latency=0.004)
    record_per_call = (time.perf_counter() - start) / calls

    start = time.perf_counter()
    for _ in range(calls):
        obs_events.emit(
            "serve.access", request_id="bench", method="GET",
            path="/healthz", status=200, seconds=0.004,
        )
    emit_per_call = (time.perf_counter() - start) / calls

    per_request = observe_per_call + record_per_call + emit_per_call
    implied_ratio = 1.0 + per_request / query_seconds
    _merge_results("serve_histogram", {
        "budget_ratio": SERVE_BUDGET,
        "query_seconds": query_seconds,
        "histogram_observe_seconds_per_call": observe_per_call,
        "slo_record_seconds_per_call": record_per_call,
        "access_emit_seconds_per_call": emit_per_call,
        "telemetry_seconds_per_request": per_request,
        "implied_request_ratio": implied_ratio,
    })

    assert implied_ratio < SERVE_BUDGET, (
        f"per-request telemetry at {per_request * 1e6:.1f}us against a "
        f"{query_seconds * 1e6:.1f}us floor-cost query implies "
        f"{(implied_ratio - 1) * 100:.2f}% overhead; budget is "
        f"{(SERVE_BUDGET - 1) * 100:.0f}%"
    )
