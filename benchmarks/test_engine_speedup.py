"""Similarity-engine benchmark: worker scaling and cache payoff.

Records wall-clock for the parallel score-matrix computation at 1/2/4
workers and for a cold versus cached seven-matcher sweep, into
``benchmarks/results/BENCH_engine.json``.  Timing is *recorded*, never
asserted — hardware varies (a single-core CI box shows no thread
speedup at all); the assertions cover the structural guarantees only:
parallel results match serial exactly, and a cached sweep performs
exactly one similarity computation.
"""

import json
import time

import numpy as np

from repro.core.registry import PAPER_MATCHERS, create_matcher
from repro.similarity.engine import SimilarityEngine

from conftest import RESULTS_DIR

N_ENTITIES = 1500
DIM = 64
CHUNK_ROWS = 128


def _embeddings():
    rng = np.random.default_rng(0)
    source = rng.normal(size=(N_ENTITIES, DIM))
    target = source + 0.3 * rng.normal(size=(N_ENTITIES, DIM))
    return source, target


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_engine_worker_scaling_and_cache_payoff():
    source, target = _embeddings()
    record = {
        "n_entities": N_ENTITIES,
        "dim": DIM,
        "chunk_rows": CHUNK_ROWS,
        "similarity_seconds_by_workers": {},
        "float32_seconds": None,
        "sweep": {},
    }

    # Worker scaling on the cold similarity computation (fixed chunk
    # grid, so every run computes bitwise-identical scores).
    reference = None
    for workers in (1, 2, 4):
        with SimilarityEngine(
            workers=workers, cache=False, chunk_rows=CHUNK_ROWS
        ) as engine:
            scores, seconds = _timed(lambda: engine.similarity(source, target))
        record["similarity_seconds_by_workers"][str(workers)] = seconds
        if reference is None:
            reference = scores
        else:
            np.testing.assert_array_equal(scores, reference)

    with SimilarityEngine(
        workers=4, dtype="float32", cache=False, chunk_rows=CHUNK_ROWS
    ) as engine:
        scores32, seconds = _timed(lambda: engine.similarity(source, target))
    record["float32_seconds"] = seconds
    np.testing.assert_allclose(scores32, reference, atol=1e-4)

    # Cold versus cached sweep over the paper's seven matchers.  The RL
    # matcher's O(n^2) profile correlations dwarf everything at this n;
    # sweep the six closed-form matchers so S dominates the cold cost.
    matchers = tuple(name for name in PAPER_MATCHERS if name != "RL")

    def sweep(engine):
        for name in matchers:
            matcher = create_matcher(name)
            matcher.engine = engine
            matcher.match(source, target)

    with SimilarityEngine(workers=1, cache=False, chunk_rows=CHUNK_ROWS) as engine:
        _, cold_seconds = _timed(lambda: sweep(engine))
        cold_computations = engine.stats.computations
    with SimilarityEngine(workers=1, cache=True, chunk_rows=CHUNK_ROWS) as engine:
        _, cached_seconds = _timed(lambda: sweep(engine))
        cached_stats = engine.stats.as_dict()

    record["sweep"] = {
        "matchers": list(matchers),
        "cold_seconds": cold_seconds,
        "cold_computations": cold_computations,
        "cached_seconds": cached_seconds,
        **{f"cached_{key}": value for key, value in cached_stats.items()},
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\nengine benchmark written to {path}:\n{json.dumps(record, indent=2)}")

    # Structural guarantees (timing-free).
    assert cold_computations == len(matchers)
    assert cached_stats["computations"] == 1
    assert cached_stats["hits"] == len(matchers) - 1
