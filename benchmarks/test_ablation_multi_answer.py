"""Ablation: multi-answer decoding under non-1-to-1 alignment (extension).

Table 8's diagnosis is structural: single-answer decoding caps recall at
(#queries / #gold links).  The MultiAnswerMatcher extension returns every
candidate holding a comparable share of the softmax posterior, so
duplicate targets are all recovered.  This ablation verifies it beats
every single-answer matcher on recall — and on F1 — on the
FB_DBP_MUL-style dataset, the paper's suggested probabilistic direction.
"""

from repro.core import create_matcher
from repro.core.multi import MultiAnswerMatcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once


def run_ablation():
    task = load_preset("fb_dbp_mul")
    emb = build_embeddings(task, "R", preset_name="fb_dbp_mul")
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    results = {}
    for name in ("DInf", "CSLS", "RInf", "Hun."):
        results[name] = evaluate_pairs(
            create_matcher(name).match(src, tgt).pairs, gold
        )
    for ratio in (0.9, 0.5, 0.2):
        matcher = MultiAnswerMatcher(mass_ratio=ratio, temperature=0.05)
        results[f"Multi@{ratio}"] = evaluate_pairs(matcher.match(src, tgt).pairs, gold)
    return results


def test_ablation_multi_answer(benchmark, save_artifact):
    metrics = run_once(benchmark, run_ablation)

    rows = [
        {"matcher": name, "P": m.precision, "R": m.recall, "F1": m.f1,
         "#answers": m.num_predicted}
        for name, m in metrics.items()
    ]
    save_artifact(
        "ablation_multi_answer",
        format_table(rows, title="Ablation: multi-answer decoding on FB_DBP_MUL (R)"),
    )

    single_best_recall = max(
        metrics[m].recall for m in ("DInf", "CSLS", "RInf", "Hun.")
    )
    single_best_f1 = max(metrics[m].f1 for m in ("DInf", "CSLS", "RInf", "Hun."))

    # A permissive mass ratio recovers fan-out links single-answer
    # decoding cannot express.
    assert metrics["Multi@0.5"].recall > single_best_recall
    # And the recall gain outweighs the precision cost at the F1 level.
    best_multi_f1 = max(metrics[f"Multi@{r}"].f1 for r in (0.9, 0.5, 0.2))
    assert best_multi_f1 > single_best_f1
    # The ratio knob trades precision for recall monotonically.
    assert metrics["Multi@0.2"].recall >= metrics["Multi@0.9"].recall
    assert metrics["Multi@0.9"].precision >= metrics["Multi@0.2"].precision
