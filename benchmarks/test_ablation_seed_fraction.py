"""Ablation: seed-pair supply and the trained encoders.

The paper's related work (the industry survey it cites) shows EA quality
hinges on the seed-mapping size — a representation-learning property,
not a matching one.  This ablation runs the *real* trainable encoders
over a seed-fraction sweep and verifies (1) more seeds -> better
embeddings, (2) the RREA-style encoder dominates the GCN at every
supply level, and (3) the matcher ordering on top (Hun. >= DInf) is
insensitive to the seed supply — evidence that matching quality and
representation quality are separable concerns, the premise of the
paper's whole factor-isolation methodology.
"""

from repro.core import DInf, Hungarian
from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
from repro.embedding import GCNEncoder, RREAEncoder
from repro.eval import evaluate_pairs
from repro.experiments import format_table
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once

FRACTIONS = (0.05, 0.1, 0.2, 0.3)


def run_sweep():
    out = {}
    for fraction in FRACTIONS:
        task = generate_aligned_pair(
            KGPairConfig(
                num_entities=400, num_relations=20, average_degree=4.2,
                heterogeneity=0.12, train_fraction=fraction,
                validation_fraction=0.05, seed=55, name=f"seed{fraction}",
            )
        )
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        gold = _gold_local_pairs(task, queries, candidates)
        row = {}
        for label, encoder in (
            ("gcn", GCNEncoder(seed=0)), ("rrea", RREAEncoder(seed=0)),
        ):
            emb = encoder.encode(task)
            src, tgt = emb.source[queries], emb.target[candidates]
            row[f"{label}:DInf"] = evaluate_pairs(DInf().match(src, tgt).pairs, gold).f1
            row[f"{label}:Hun."] = evaluate_pairs(
                Hungarian().match(src, tgt).pairs, gold
            ).f1
        out[fraction] = row
    return out


def test_ablation_seed_fraction(benchmark, save_artifact):
    out = run_once(benchmark, run_sweep)

    rows = [{"seed fraction": fraction, **values} for fraction, values in out.items()]
    save_artifact(
        "ablation_seed_fraction",
        format_table(rows, title="Ablation: seed supply x trained encoders"),
    )

    # (1) More seeds help both encoders (allow one non-monotone step).
    for encoder in ("gcn", "rrea"):
        series = [out[f][f"{encoder}:DInf"] for f in FRACTIONS]
        assert series[-1] > series[0], encoder
        drops = sum(1 for a, b in zip(series, series[1:]) if b < a - 0.02)
        assert drops <= 1, (encoder, series)

    # (2) RREA dominates GCN at every supply level.
    for fraction in FRACTIONS:
        assert out[fraction]["rrea:DInf"] >= out[fraction]["gcn:DInf"] - 0.02

    # (3) The matcher ordering is seed-insensitive once the embeddings
    # carry usable signal.  (At starvation level — 5% seeds — scores are
    # so inaccurate that the 1-to-1 constraint can misfire, the same
    # score-accuracy dependence the paper notes for Hun. under Pattern 2.)
    for fraction in (f for f in FRACTIONS if f >= 0.1):
        for encoder in ("gcn", "rrea"):
            assert (
                out[fraction][f"{encoder}:Hun."]
                >= out[fraction][f"{encoder}:DInf"] - 0.04
            ), (fraction, encoder)
