"""Ablation: the RL matcher's design choices.

Two knobs the paper's analysis attributes RL's behaviour to:

1. **Confident-pair pre-filtering** — accepting decisive mutual nearest
   neighbours outright shrinks the expensive sequential phase.  The
   paper explains RL's speed on accurate scores with exactly this.
2. **Exclusiveness strength** — the relaxed 1-to-1 penalty helps under
   1-to-1 gold links and misfires on non-1-to-1 ones (Table 8).
"""

from repro.core.rl import RLMatcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once


def _setting(preset, regime):
    task = load_preset(preset)
    emb = build_embeddings(task, regime, preset_name=preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    return (
        emb.source[queries],
        emb.target[candidates],
        _gold_local_pairs(task, queries, candidates),
    )


def run_ablation():
    src, tgt, gold = _setting("dbp15k/zh_en", "R")
    out = {}

    # (1) Pre-filter margin: 0 accepts every mutual nearest neighbour
    # (most aggressive pre-filtering, smallest sequential phase); a huge
    # margin deems nothing confident (pre-filter effectively off).
    for margin, label in ((0.0, "prefilter:aggressive"),
                          (0.15, "prefilter:default"),
                          (1e9, "prefilter:off")):
        matcher = RLMatcher(confident_margin=margin)
        result = matcher.match(src, tgt)
        out[label] = {
            "f1": evaluate_pairs(result.pairs, gold).f1,
            "seconds": result.seconds,
        }

    # (2) Exclusiveness strength on 1-to-1 vs non-1-to-1 data.
    mul_src, mul_tgt, mul_gold = _setting("fb_dbp_mul", "R")
    for strength in (0.0, 6.0):
        one = RLMatcher(exclusion_strength=strength).match(src, tgt)
        multi = RLMatcher(exclusion_strength=strength).match(mul_src, mul_tgt)
        out[f"exclusion:{strength:g}"] = {
            "f1_1to1": evaluate_pairs(one.pairs, gold).f1,
            "f1_multi": evaluate_pairs(multi.pairs, mul_gold).f1,
        }
    return out


def test_ablation_rl(benchmark, save_artifact):
    out = run_once(benchmark, run_ablation)

    lines = ["Ablation: RL matcher design choices"]
    for label, data in out.items():
        fields = "  ".join(f"{k}={v:.3f}" for k, v in data.items())
        lines.append(f"  {label:26s} {fields}")
    save_artifact("ablation_rl", "\n".join(lines))

    # (1) More pre-filtering shrinks the sequential phase (the paper's
    # explanation of RL's speed on accurate scores) without hurting F1.
    assert out["prefilter:aggressive"]["seconds"] <= out["prefilter:off"]["seconds"]
    assert out["prefilter:aggressive"]["f1"] >= out["prefilter:off"]["f1"] - 0.03

    # (2) Exclusiveness helps under 1-to-1 gold links...
    assert out["exclusion:6"]["f1_1to1"] >= out["exclusion:0"]["f1_1to1"] - 0.01
    # ...and the help evaporates (or reverses) on non-1-to-1 links.
    gain_1to1 = out["exclusion:6"]["f1_1to1"] - out["exclusion:0"]["f1_1to1"]
    gain_multi = out["exclusion:6"]["f1_multi"] - out["exclusion:0"]["f1_multi"]
    assert gain_multi < gain_1to1 + 0.01
