"""Bench-regression gate: re-run the timed benchmarks and diff the numbers.

The engine-speedup, obs-overhead, out-of-core-scale, and serving-latency
benchmarks write their measurements to
``benchmarks/results/BENCH_engine.json`` / ``BENCH_obs.json`` /
``BENCH_scale.json`` / ``BENCH_serve.json``; those committed files are
the performance baseline.  This script

1. snapshots the committed baselines,
2. re-runs the benchmark modules (which overwrite the files),
3. compares every gated leaf of the fresh run against the baseline,
   failing on a regression beyond its tolerance band,
4. restores the committed baselines so the working tree stays clean
   (pass ``--update`` to keep the fresh numbers as the new baseline).

Three families of leaves are gated, each with its own direction:

* ``*seconds*`` — wall-clock timings, lower is better.  Fails only when
  **both** more than ``--tolerance`` (default 25%) slower than the
  baseline **and** more than ``--floor`` (default 0.05 s) slower in
  absolute terms — the floor keeps millisecond-scale timings from
  tripping the gate on scheduler noise.
* ``*per_second*`` — throughput rates, higher is better.  Fails when the
  fresh rate drops below ``1 - --rate-tolerance`` (default 60%) of the
  baseline; hardware varies far more than a single box's run-to-run
  noise, so the band is wide.
* ``*rss_bytes*`` — measured peak RSS, lower is better.  Fails only when
  **both** more than ``--rss-tolerance`` (default 50%) above baseline
  **and** more than ``--rss-floor`` (default 256 MiB) above it in
  absolute terms — the pair catches an accidental n x n materialisation
  (gigabytes) while ignoring allocator jitter.

Faster / leaner-than-baseline numbers never fail.

Usage (or ``make bench-check``)::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES = (
    "BENCH_engine.json",
    "BENCH_obs.json",
    "BENCH_scale.json",
    "BENCH_serve.json",
)
BENCH_MODULES = (
    "test_engine_speedup.py",
    "test_obs_overhead.py",
    "test_scale.py",
    "test_serve_latency.py",
)


def flatten(document: object, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a JSON document."""
    leaves: dict[str, float] = {}
    if isinstance(document, dict):
        for key, value in document.items():
            leaves.update(flatten(value, f"{prefix}{key}." if prefix or key else key))
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        leaves[prefix.rstrip(".")] = float(document)
    return leaves


def timing_paths(leaves: dict[str, float]) -> dict[str, float]:
    """Only the leaves that are wall-clock timings."""
    return {
        path: value for path, value in leaves.items() if "seconds" in path
    }


def rate_paths(leaves: dict[str, float]) -> dict[str, float]:
    """Only the throughput leaves (higher is better)."""
    return {
        path: value for path, value in leaves.items() if "per_second" in path
    }


def rss_paths(leaves: dict[str, float]) -> dict[str, float]:
    """Only the measured peak-RSS leaves (lower is better)."""
    return {
        path: value for path, value in leaves.items() if "rss_bytes" in path
    }


def compare(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    floor: float,
) -> list[str]:
    """Human-readable failure lines, empty when the gate passes."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(f"MISSING  {path}: baseline {old:.4f}s has no fresh value")
            continue
        if new > old * (1.0 + tolerance) and new - old > floor:
            failures.append(
                f"SLOWER   {path}: {old:.4f}s -> {new:.4f}s "
                f"(+{(new / old - 1.0) * 100.0:.0f}%, band is +{tolerance * 100:.0f}%)"
            )
    return failures


def compare_rates(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Throughput gate: fresh rate must stay within the band below baseline."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(f"MISSING  {path}: baseline {old:.1f}/s has no fresh value")
            continue
        if new < old * (1.0 - tolerance):
            failures.append(
                f"SLOWER   {path}: {old:.1f}/s -> {new:.1f}/s "
                f"({(new / old - 1.0) * 100.0:.0f}%, band is -{tolerance * 100:.0f}%)"
            )
    return failures


def compare_rss(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    floor_bytes: float,
) -> list[str]:
    """Peak-RSS gate: flags growth that smells like an n x n allocation."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(
                f"MISSING  {path}: baseline {old / 2**20:.0f}MiB has no fresh value"
            )
            continue
        if new > old * (1.0 + tolerance) and new - old > floor_bytes:
            failures.append(
                f"BIGGER   {path}: {old / 2**20:.0f}MiB -> {new / 2**20:.0f}MiB "
                f"(+{(new / old - 1.0) * 100.0:.0f}%, band is +{tolerance * 100:.0f}%)"
            )
    return failures


def run_benchmarks() -> int:
    """Re-run the timed benchmark modules; returns the pytest exit code."""
    command = [
        sys.executable, "-m", "pytest", "-q", *BENCH_MODULES,
    ]
    env = dict(os.environ)
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(command, cwd=BENCH_DIR, env=env)
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative slowdown band (0.25 = fail beyond +25%%)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.05,
        help="absolute slowdown floor in seconds (noise guard)",
    )
    parser.add_argument(
        "--rate-tolerance", type=float, default=0.6,
        help="allowed throughput drop for *per_second* leaves "
             "(0.6 = fail below 40%% of baseline)",
    )
    parser.add_argument(
        "--rss-tolerance", type=float, default=0.5,
        help="relative peak-RSS growth band (0.5 = fail beyond +50%%)",
    )
    parser.add_argument(
        "--rss-floor", type=float, default=256 * 2**20,
        help="absolute peak-RSS growth floor in bytes (noise guard)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="keep the fresh numbers as the new committed baseline",
    )
    args = parser.parse_args(argv)

    missing = [name for name in BASELINES if not (RESULTS_DIR / name).exists()]
    if missing:
        print(f"no committed baseline for {', '.join(missing)}; run `make bench` first")
        return 2

    with tempfile.TemporaryDirectory(prefix="bench-baseline-") as checkpoint:
        for name in BASELINES:
            shutil.copy2(RESULTS_DIR / name, Path(checkpoint) / name)
        exit_code = run_benchmarks()
        if exit_code != 0:
            print(f"benchmark run failed (pytest exit {exit_code}); gate not evaluated")
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)
            return exit_code

        failures: list[str] = []
        for name in BASELINES:
            baseline = flatten(
                json.loads((Path(checkpoint) / name).read_text("utf-8"))
            )
            fresh = flatten(json.loads((RESULTS_DIR / name).read_text("utf-8")))
            failures.extend(
                f"{name}: {line}"
                for line in compare(
                    timing_paths(baseline), timing_paths(fresh),
                    args.tolerance, args.floor,
                )
            )
            failures.extend(
                f"{name}: {line}"
                for line in compare_rates(
                    rate_paths(baseline), rate_paths(fresh), args.rate_tolerance
                )
            )
            failures.extend(
                f"{name}: {line}"
                for line in compare_rss(
                    rss_paths(baseline), rss_paths(fresh),
                    args.rss_tolerance, args.rss_floor,
                )
            )

        if not args.update:
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)

    if args.update:
        # Rebaselining: the fresh numbers are the new truth by definition.
        print("bench-check rebaselined; review and commit the BENCH_*.json diffs")
        for line in failures:
            print(f"  was outside band: {line}")
        return 0
    if failures:
        print("bench-check FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("bench-check passed (baselines restored)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
