"""Bench-regression gate: re-run the timed benchmarks and diff the numbers.

The engine-speedup, obs-overhead, out-of-core-scale, serving-latency,
and soak benchmarks write their measurements to
``benchmarks/results/BENCH_engine.json`` / ``BENCH_obs.json`` /
``BENCH_scale.json`` / ``BENCH_serve.json`` / ``BENCH_soak.json``;
those committed files are the performance baseline.  This script

1. snapshots the committed baselines,
2. re-runs the benchmark modules (which overwrite the files),
3. compares every gated leaf of the fresh run against the baseline,
   failing on a regression beyond its tolerance band,
4. restores the committed baselines so the working tree stays clean
   (pass ``--update`` to keep the fresh numbers as the new baseline).

Four families of leaves are gated.  Every leaf belongs to at most one
family — classification is by key name, most specific first — and every
failure line names the family that tripped, so a violated key is
diagnosable without re-deriving which band applied:

* ``latency`` (``*p99*`` / ``*p999*``) — tail-latency percentiles from
  the soak and serving benchmarks, lower is better.  Fails only when
  **both** more than ``--latency-tolerance`` (default 40%) above the
  baseline **and** more than ``--latency-floor`` (default 0.02 s = 20 ms)
  above it absolutely — tails are noisier than medians, so both bands
  are wider than the timing family's.  Checked before the generic
  timing family so ``p99_seconds`` never double-matches.
* ``timing`` (``*seconds*``) — wall-clock timings, lower is better.
  Fails only when **both** more than ``--tolerance`` (default 25%)
  slower than the baseline **and** more than ``--floor`` (default
  0.05 s) slower in absolute terms — the floor keeps millisecond-scale
  timings from tripping the gate on scheduler noise.
* ``rate`` (``*per_second*``) — throughput, higher is better.  Fails
  when the fresh rate drops below ``1 - --rate-tolerance`` (default
  60%) of the baseline; hardware varies far more than a single box's
  run-to-run noise, so the band is wide.
* ``rss`` (``*rss_bytes*``) — measured peak RSS, lower is better.
  Fails only when **both** more than ``--rss-tolerance`` (default 50%)
  above baseline **and** more than ``--rss-floor`` (default 256 MiB)
  above it in absolute terms — the pair catches an accidental n x n
  materialisation (gigabytes) while ignoring allocator jitter.

Faster / leaner-than-baseline numbers never fail.

Usage (or ``make bench-check``)::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES = (
    "BENCH_engine.json",
    "BENCH_obs.json",
    "BENCH_scale.json",
    "BENCH_serve.json",
    "BENCH_soak.json",
)
BENCH_MODULES = (
    "test_engine_speedup.py",
    "test_obs_overhead.py",
    "test_scale.py",
    "test_serve_latency.py",
    "test_soak.py",
)

#: Gate families in classification order (most specific key match first).
FAMILIES = ("latency", "timing", "rate", "rss")


def flatten(document: object, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a JSON document."""
    leaves: dict[str, float] = {}
    if isinstance(document, dict):
        for key, value in document.items():
            leaves.update(flatten(value, f"{prefix}{key}." if prefix or key else key))
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        leaves[prefix.rstrip(".")] = float(document)
    return leaves


def family_of(path: str) -> str | None:
    """Which gate family a leaf belongs to (None = ungated).

    Order matters: ``p99_seconds`` / ``p999_seconds`` are *latency*
    leaves, not timing leaves, even though they also contain "seconds"
    — the latency test runs first so each key matches exactly one band.
    """
    leaf = path.rsplit(".", 1)[-1]
    if "p99" in leaf:  # catches both p99_* and p999_*
        return "latency"
    if "seconds" in path:
        return "timing"
    if "per_second" in path:
        return "rate"
    if "rss_bytes" in path:
        return "rss"
    return None


def family_paths(leaves: dict[str, float], family: str) -> dict[str, float]:
    """Only the leaves gated by ``family``."""
    return {
        path: value for path, value in leaves.items() if family_of(path) == family
    }


def compare_lower_better(
    family: str,
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    floor: float,
    unit: str = "s",
) -> list[str]:
    """Gate for lower-is-better leaves with a relative + absolute band."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(
                f"MISSING  [{family}] {path}: baseline {old:.4f}{unit} "
                f"has no fresh value"
            )
            continue
        if new > old * (1.0 + tolerance) and new - old > floor:
            failures.append(
                f"SLOWER   [{family}] {path}: {old:.4f}{unit} -> {new:.4f}{unit} "
                f"(+{(new / old - 1.0) * 100.0:.0f}%, band is +{tolerance * 100:.0f}% "
                f"and +{floor:.3f}{unit})"
            )
    return failures


def compare_rates(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Throughput gate: fresh rate must stay within the band below baseline."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(
                f"MISSING  [rate] {path}: baseline {old:.1f}/s has no fresh value"
            )
            continue
        if new < old * (1.0 - tolerance):
            failures.append(
                f"SLOWER   [rate] {path}: {old:.1f}/s -> {new:.1f}/s "
                f"({(new / old - 1.0) * 100.0:.0f}%, band is -{tolerance * 100:.0f}%)"
            )
    return failures


def compare_rss(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    floor_bytes: float,
) -> list[str]:
    """Peak-RSS gate: flags growth that smells like an n x n allocation."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(
                f"MISSING  [rss] {path}: baseline {old / 2**20:.0f}MiB "
                f"has no fresh value"
            )
            continue
        if new > old * (1.0 + tolerance) and new - old > floor_bytes:
            failures.append(
                f"BIGGER   [rss] {path}: {old / 2**20:.0f}MiB -> {new / 2**20:.0f}MiB "
                f"(+{(new / old - 1.0) * 100.0:.0f}%, band is +{tolerance * 100:.0f}%)"
            )
    return failures


def evaluate(
    baseline: dict[str, float],
    fresh: dict[str, float],
    *,
    tolerance: float = 0.25,
    floor: float = 0.05,
    rate_tolerance: float = 0.6,
    rss_tolerance: float = 0.5,
    rss_floor: float = 256 * 2**20,
    latency_tolerance: float = 0.40,
    latency_floor: float = 0.020,
) -> list[str]:
    """All gate families over one (baseline, fresh) leaf pair.

    The pure core of the gate — ``main`` calls it per baseline file and
    the unit tests call it with synthetic documents.
    """
    failures: list[str] = []
    failures.extend(
        compare_lower_better(
            "latency",
            family_paths(baseline, "latency"), family_paths(fresh, "latency"),
            latency_tolerance, latency_floor,
        )
    )
    failures.extend(
        compare_lower_better(
            "timing",
            family_paths(baseline, "timing"), family_paths(fresh, "timing"),
            tolerance, floor,
        )
    )
    failures.extend(
        compare_rates(
            family_paths(baseline, "rate"), family_paths(fresh, "rate"),
            rate_tolerance,
        )
    )
    failures.extend(
        compare_rss(
            family_paths(baseline, "rss"), family_paths(fresh, "rss"),
            rss_tolerance, rss_floor,
        )
    )
    return failures


def run_benchmarks() -> int:
    """Re-run the timed benchmark modules; returns the pytest exit code."""
    command = [
        sys.executable, "-m", "pytest", "-q", *BENCH_MODULES,
    ]
    env = dict(os.environ)
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(command, cwd=BENCH_DIR, env=env)
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative slowdown band for *seconds* leaves "
             "(0.25 = fail beyond +25%%)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.05,
        help="absolute slowdown floor in seconds (noise guard)",
    )
    parser.add_argument(
        "--rate-tolerance", type=float, default=0.6,
        help="allowed throughput drop for *per_second* leaves "
             "(0.6 = fail below 40%% of baseline)",
    )
    parser.add_argument(
        "--rss-tolerance", type=float, default=0.5,
        help="relative peak-RSS growth band (0.5 = fail beyond +50%%)",
    )
    parser.add_argument(
        "--rss-floor", type=float, default=256 * 2**20,
        help="absolute peak-RSS growth floor in bytes (noise guard)",
    )
    parser.add_argument(
        "--latency-tolerance", type=float, default=0.40,
        help="relative band for tail-latency *p99*/*p999* leaves "
             "(0.40 = fail beyond +40%%)",
    )
    parser.add_argument(
        "--latency-floor", type=float, default=0.020,
        help="absolute tail-latency floor in seconds (default 20 ms; "
             "tails jitter more than medians)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="keep the fresh numbers as the new committed baseline",
    )
    args = parser.parse_args(argv)

    missing = [name for name in BASELINES if not (RESULTS_DIR / name).exists()]
    if missing:
        print(f"no committed baseline for {', '.join(missing)}; run `make bench` first")
        return 2

    with tempfile.TemporaryDirectory(prefix="bench-baseline-") as checkpoint:
        for name in BASELINES:
            shutil.copy2(RESULTS_DIR / name, Path(checkpoint) / name)
        exit_code = run_benchmarks()
        if exit_code != 0:
            print(f"benchmark run failed (pytest exit {exit_code}); gate not evaluated")
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)
            return exit_code

        failures: list[str] = []
        for name in BASELINES:
            baseline = flatten(
                json.loads((Path(checkpoint) / name).read_text("utf-8"))
            )
            fresh = flatten(json.loads((RESULTS_DIR / name).read_text("utf-8")))
            failures.extend(
                f"{name}: {line}"
                for line in evaluate(
                    baseline, fresh,
                    tolerance=args.tolerance,
                    floor=args.floor,
                    rate_tolerance=args.rate_tolerance,
                    rss_tolerance=args.rss_tolerance,
                    rss_floor=args.rss_floor,
                    latency_tolerance=args.latency_tolerance,
                    latency_floor=args.latency_floor,
                )
            )

        if not args.update:
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)

    if args.update:
        # Rebaselining: the fresh numbers are the new truth by definition.
        print("bench-check rebaselined; review and commit the BENCH_*.json diffs")
        for line in failures:
            print(f"  was outside band: {line}")
        return 0
    if failures:
        print("bench-check FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("bench-check passed (baselines restored)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
