"""Bench-regression gate: re-run the timed benchmarks and diff the numbers.

The engine-speedup and obs-overhead benchmarks write their measurements
to ``benchmarks/results/BENCH_engine.json`` / ``BENCH_obs.json``; those
committed files are the performance baseline.  This script

1. snapshots the committed baselines,
2. re-runs the two benchmark modules (which overwrite the files),
3. compares every ``*seconds*`` leaf of the fresh run against the
   baseline, failing when a timing regressed beyond the tolerance band,
4. restores the committed baselines so the working tree stays clean
   (pass ``--update`` to keep the fresh numbers as the new baseline).

Tolerance: a timing fails only when it is **both** more than
``--tolerance`` (default 25%) slower than the baseline **and** more
than ``--floor`` (default 0.05 s) slower in absolute terms — the floor
keeps millisecond-scale timings from tripping the gate on scheduler
noise.  Faster-than-baseline numbers never fail.

Usage (or ``make bench-check``)::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES = ("BENCH_engine.json", "BENCH_obs.json")
BENCH_MODULES = ("test_engine_speedup.py", "test_obs_overhead.py")


def flatten(document: object, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a JSON document."""
    leaves: dict[str, float] = {}
    if isinstance(document, dict):
        for key, value in document.items():
            leaves.update(flatten(value, f"{prefix}{key}." if prefix or key else key))
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        leaves[prefix.rstrip(".")] = float(document)
    return leaves


def timing_paths(leaves: dict[str, float]) -> dict[str, float]:
    """Only the leaves that are wall-clock timings."""
    return {
        path: value for path, value in leaves.items() if "seconds" in path
    }


def compare(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    floor: float,
) -> list[str]:
    """Human-readable failure lines, empty when the gate passes."""
    failures = []
    for path, old in sorted(baseline.items()):
        new = fresh.get(path)
        if new is None:
            failures.append(f"MISSING  {path}: baseline {old:.4f}s has no fresh value")
            continue
        if new > old * (1.0 + tolerance) and new - old > floor:
            failures.append(
                f"SLOWER   {path}: {old:.4f}s -> {new:.4f}s "
                f"(+{(new / old - 1.0) * 100.0:.0f}%, band is +{tolerance * 100:.0f}%)"
            )
    return failures


def run_benchmarks() -> int:
    """Re-run the timed benchmark modules; returns the pytest exit code."""
    command = [
        sys.executable, "-m", "pytest", "-q", *BENCH_MODULES,
    ]
    env = dict(os.environ)
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(command, cwd=BENCH_DIR, env=env)
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative slowdown band (0.25 = fail beyond +25%%)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.05,
        help="absolute slowdown floor in seconds (noise guard)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="keep the fresh numbers as the new committed baseline",
    )
    args = parser.parse_args(argv)

    missing = [name for name in BASELINES if not (RESULTS_DIR / name).exists()]
    if missing:
        print(f"no committed baseline for {', '.join(missing)}; run `make bench` first")
        return 2

    with tempfile.TemporaryDirectory(prefix="bench-baseline-") as checkpoint:
        for name in BASELINES:
            shutil.copy2(RESULTS_DIR / name, Path(checkpoint) / name)
        exit_code = run_benchmarks()
        if exit_code != 0:
            print(f"benchmark run failed (pytest exit {exit_code}); gate not evaluated")
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)
            return exit_code

        failures: list[str] = []
        for name in BASELINES:
            baseline = timing_paths(
                flatten(json.loads((Path(checkpoint) / name).read_text("utf-8")))
            )
            fresh = timing_paths(
                flatten(json.loads((RESULTS_DIR / name).read_text("utf-8")))
            )
            failures.extend(
                f"{name}: {line}"
                for line in compare(baseline, fresh, args.tolerance, args.floor)
            )

        if not args.update:
            for name in BASELINES:
                shutil.copy2(Path(checkpoint) / name, RESULTS_DIR / name)

    if args.update:
        # Rebaselining: the fresh numbers are the new truth by definition.
        print("bench-check rebaselined; review and commit the BENCH_*.json diffs")
        for line in failures:
            print(f"  was outside band: {line}")
        return 0
    if failures:
        print("bench-check FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("bench-check passed (baselines restored)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
