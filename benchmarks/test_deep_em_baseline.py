"""Benchmark: the DL-based entity-matching comparison (paper Section 4.3).

The paper adapts a deepmatcher-style pair classifier to EA and finds it
"not promising" — scarce labels, extreme class imbalance, and no
attribute text leave it unable to compete with dedicated embedding
matching.  We reproduce the comparison on the D-Z-like preset.
"""

from repro.baselines.deep_em import DeepEMBaseline, DeepEMConfig
from repro.core import create_matcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once


def run_comparison():
    task = load_preset("dbp15k/zh_en")
    emb = build_embeddings(task, "G", preset_name="dbp15k/zh_en")
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    gold = _gold_local_pairs(task, queries, candidates)
    src, tgt = emb.source[queries], emb.target[candidates]

    model = DeepEMBaseline(DeepEMConfig(epochs=30, seed=0))
    model.fit(emb.source, emb.target, task.seed_index_pairs())
    em_f1 = evaluate_pairs(model.match(src, tgt), gold).f1

    results = {"DeepEM": em_f1}
    for name in ("DInf", "Hun."):
        results[name] = evaluate_pairs(
            create_matcher(name).match(src, tgt).pairs, gold
        ).f1
    return results


def test_deep_em_baseline(benchmark, save_artifact):
    results = run_once(benchmark, run_comparison)
    lines = ["Section 4.3: DL-based EM vs embedding matching (G-D-Z)"]
    for name, f1 in results.items():
        lines.append(f"  {name:8s} F1={f1:.3f}")
    save_artifact("deep_em", "\n".join(lines))

    # The learned pair classifier cannot compete with dedicated
    # embedding-matching algorithms on the same input.
    assert results["DeepEM"] < results["Hun."]
    assert results["DeepEM"] <= results["DInf"] + 0.05
