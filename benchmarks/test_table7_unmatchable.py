"""Benchmark: regenerate Table 7 (unmatchable entities, DBP15K+).

Shape expectations from the paper:

1. Every method's F1 drops relative to the clean 1-to-1 datasets
   (Table 4): unmatchable queries bleed precision.
2. Hun. — with dummy-node absorption — is the clear winner, well ahead
   of Sink. (unlike the 1-to-1 setting where they tie).
3. The constrained matchers (Hun., SMat) beat the greedy family because
   they can abstain; DInf stays last.
"""

import numpy as np

from repro.datasets.zoo import DBP15K_PRESETS
from repro.experiments import format_table
from repro.experiments.tables import (
    DBP15K_PLUS_PRESETS,
    table4_structure_only,
    table7_unmatchable,
)

from conftest import run_once


def group_mean(table, regime, matcher):
    return float(np.mean(
        [table.result(regime, p).f1(matcher) for p in DBP15K_PLUS_PRESETS]
    ))


def test_table7_unmatchable(benchmark, save_artifact):
    table = run_once(benchmark, table7_unmatchable)
    save_artifact("table7", format_table(table.rows, title=table.title))

    for regime in ("G", "R"):
        scores = {
            m: group_mean(table, regime, m)
            for m in ("DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat", "RL")
        }
        # (2) Hun. wins in every regime.
        assert scores["Hun."] == max(scores.values()), regime
        # (3) DInf in the bottom band (RL, whose exclusiveness constraint
        # misfires on unmatchable queries, may dip just below it).
        bottom_two = sorted(scores, key=scores.get)[:2]
        assert "DInf" in bottom_two, regime
        assert scores["DInf"] <= min(scores.values()) + 0.03, regime

    # Hun.'s dummy-node absorption separates it clearly from Sink. in
    # the strong-encoder regime (the paper's headline Table 7 contrast).
    assert group_mean(table, "R", "Hun.") > group_mean(table, "R", "Sink.") + 0.02

    # (1) F1 drops vs the clean datasets (same regime, same base presets).
    t4 = table4_structure_only(matchers=("DInf", "CSLS"))
    for plus_preset, base_preset in zip(DBP15K_PLUS_PRESETS, DBP15K_PRESETS):
        for matcher in ("DInf", "CSLS"):
            clean = t4.result("R", base_preset).f1(matcher)
            noisy = table.result("R", plus_preset).f1(matcher)
            assert noisy < clean, (plus_preset, matcher)

    # Precision/recall split: greedy answers every query, so precision
    # drops below recall under unmatchable queries.
    dinf = table.result("R", DBP15K_PLUS_PRESETS[0]).runs["DInf"].metrics
    assert dinf.precision < dinf.recall
    hun = table.result("R", DBP15K_PLUS_PRESETS[0]).runs["Hun."].metrics
    assert hun.precision > dinf.precision
