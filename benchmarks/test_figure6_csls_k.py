"""Benchmark: regenerate Figure 6 (CSLS F1 as a function of k).

Shape expectation (paper): under the 1-to-1 setting a larger k makes the
pairwise scores less distinctive, so F1 is non-increasing in k — k=1 is
the best choice.
"""

from repro.experiments import figure6_csls_k

from conftest import run_once


def test_figure6_csls_k(benchmark, save_artifact):
    figure = run_once(benchmark, figure6_csls_k)

    lines = [figure.title]
    for series, points in figure.series.items():
        lines.append(f"  {series}: " + "  ".join(f"k={k}:{y:.3f}" for k, y in points))
    save_artifact("figure6", "\n".join(lines))

    for series, points in figure.series.items():
        values = dict(points)
        # k=1 at least matches the largest k tried (monotone trend with a
        # small tolerance for adjacent-k noise).
        assert values[1] >= values[max(values)] - 0.01, series
        # No k is catastrophically better than k=1.
        assert max(values.values()) - values[1] < 0.05, series
