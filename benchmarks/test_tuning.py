"""Benchmark: validation-based hyper-parameter tuning (paper Sec. 4.5).

The paper fixes CSLS's k=1 and Sinkhorn's l=100 "by tuning on the
validation set".  This benchmark reruns that workflow end to end and
checks the tuned choices transfer: the validation-selected configuration
performs within noise of the best test-set configuration.
"""

from repro.datasets import load_preset
from repro.experiments import ExperimentConfig, build_embeddings, run_experiment
from repro.experiments.tuning import suggested_grids, tune_matcher

from conftest import run_once


def run_tuning():
    preset = "dbp15k/zh_en"
    task = load_preset(preset)
    embeddings = build_embeddings(task, "R", preset_name=preset)
    grids = suggested_grids()
    out = {}
    for matcher in ("CSLS", "Sink."):
        outcome = tune_matcher(matcher, task, embeddings, grids[matcher])
        # Test-set F1 for every configuration (for transfer checking).
        test_f1 = {}
        for options in grids[matcher]:
            config = ExperimentConfig(
                preset=preset, input_regime="R", matchers=(matcher,),
                matcher_options={matcher: dict(options)},
            )
            test_f1[tuple(sorted(options.items()))] = run_experiment(config).f1(matcher)
        out[matcher] = {"outcome": outcome, "test_f1": test_f1}
    return out


def test_validation_tuning_transfers(benchmark, save_artifact):
    out = run_once(benchmark, run_tuning)

    lines = ["Validation-based tuning (R-D-Z)"]
    for matcher, data in out.items():
        outcome = data["outcome"]
        lines.append(f"  {matcher}: best on validation = {dict(outcome.best_options)} "
                     f"(val F1 {outcome.best_f1:.3f})")
        for key, f1 in data["test_f1"].items():
            lines.append(f"    test {dict(key)}: F1={f1:.3f}")
    save_artifact("tuning", "\n".join(lines))

    for matcher, data in out.items():
        chosen = tuple(sorted(data["outcome"].best_options.items()))
        chosen_test = data["test_f1"][chosen]
        best_test = max(data["test_f1"].values())
        # The validation choice transfers: within 3 points of the test optimum.
        assert chosen_test >= best_test - 0.03, (matcher, chosen)
