"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints it,
saves the rendered text under ``benchmarks/results/``, and asserts the
qualitative *shape* the paper reports (who wins, roughly by how much,
where the crossovers fall).  Absolute numbers are not asserted — the
substrate is a synthetic simulator, not the authors' testbed.
"""

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Return a callable that persists a rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}", file=sys.stderr)

    return _save


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment sweeps are deterministic and expensive; multiple
    rounds would only repeat identical work.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
