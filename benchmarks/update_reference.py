"""Regenerate the committed drift-watch reference state.

Runs the canonical seeded sweep (:func:`repro.obs.drift.reference_configs`)
into a fresh ``benchmarks/results/ledger_seed0.jsonl`` and rebuilds
``benchmarks/results/REFERENCE_accuracy.json`` from it with the default
tolerance bands and ordering constraints.  Invoked by
``make reference-update``; run it whenever an intentional accuracy change
lands (see EXPERIMENTS.md), review the diff, and commit both files.

Usage::

    PYTHONPATH=src python benchmarks/update_reference.py [--results DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.runner import run_experiment
from repro.obs.drift import (
    DEFAULT_LEDGER_PATH,
    DEFAULT_REFERENCE_PATH,
    build_reference,
    check_drift,
    reference_configs,
    write_reference,
)
from repro.obs.ledger import RunLedger
from repro.obs.provenance import provenance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path, default=Path("benchmarks/results"),
        help="directory holding the committed ledger and reference files",
    )
    args = parser.parse_args(argv)

    ledger_path = args.results / DEFAULT_LEDGER_PATH.name
    reference_path = args.results / DEFAULT_REFERENCE_PATH.name
    if ledger_path.exists():
        ledger_path.unlink()  # the reference ledger is regenerated whole
    ledger = RunLedger(ledger_path)

    configs = reference_configs()
    for config in configs:
        result = run_experiment(config, ledger=ledger)
        print(
            f"swept {config.preset} ({config.input_regime} regime): "
            f"{len(result.runs)} ok, {len(result.failures)} failed"
        )

    records = ledger.records()
    reference = build_reference(
        records,
        source={
            "configs": [
                {
                    "preset": c.preset,
                    "input_regime": c.input_regime,
                    "scale": c.scale,
                    "seed": c.seed,
                }
                for c in configs
            ],
            "provenance": provenance(),
        },
    )
    written = write_reference(reference_path, reference)
    print(f"ledger written to {ledger_path} ({len(records)} records)")
    print(f"reference written to {written} ({len(reference['cells'])} cells)")

    # Sanity: the freshly generated pair must agree with itself.
    report = check_drift(records, reference)
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
