"""Benchmark: regenerate Table 6 (large-scale results: F1 + time + memory).

Shape expectations from the paper:

1. F1 ordering as on G-DBP: Sink./Hun. best, RInf next, CSLS/RL above
   DInf; RInf-wr equals CSLS exactly; RInf-pb sits between wr and full.
2. Memory feasibility: DInf, CSLS, RInf-wr, RInf-pb, RL fit the budget;
   RInf, Sink., Hun. do not; SMat is infeasible outright.
3. Time: DInf fastest; the super-quadratic decoders (Sink., Hun.) far
   above everything else, Sink. slowest up to scheduler noise; the RInf
   variants far cheaper than full RInf.
"""

from repro.experiments import format_table, table6_large_scale
from repro.experiments.tables import DWY_LABELS

from conftest import run_once


def test_table6_large_scale(benchmark, save_artifact):
    table = run_once(benchmark, table6_large_scale)
    save_artifact("table6", format_table(table.rows, title=table.title))

    rows = {row["matcher"]: row for row in table.rows}

    def f1(matcher):
        return (rows[matcher][DWY_LABELS[0]] + rows[matcher][DWY_LABELS[1]]) / 2

    # (1) Quality ordering.
    assert f1("DInf") == min(
        f1(m) for m in ("DInf", "CSLS", "RInf", "RInf-wr", "Sink.", "Hun.", "RL")
    )
    assert max(f1("Sink."), f1("Hun.")) >= f1("RInf")
    assert f1("RInf") >= f1("CSLS") - 0.01
    # RInf-wr makes exactly CSLS(k=1)'s decisions.
    assert f1("RInf-wr") == f1("CSLS")
    # RInf-pb between wr and full (small tolerance for blocking noise).
    assert f1("RInf-wr") - 0.03 <= f1("RInf-pb") <= f1("RInf") + 0.03

    # (2) Memory feasibility pattern (paper Table 6 "Mem." column).
    assert rows["DInf"]["Mem."] == "Yes"
    assert rows["CSLS"]["Mem."] == "Yes"
    assert rows["RInf"]["Mem."] == "No"
    assert rows["RInf-wr"]["Mem."] == "Yes"
    assert rows["RInf-pb"]["Mem."] == "Yes"
    assert rows["Sink."]["Mem."] == "No"
    assert rows["Hun."]["Mem."] == "No"
    assert rows["RL"]["Mem."] == "Yes"
    assert rows["SMat"][DWY_LABELS[0]] == "/"  # infeasible, as in the paper

    # (3) Time ordering.  Sink. and Hun. sit near their timing crossover
    # at this scale (l*n^2 vs n^3), so "Sink. slowest" is asserted with
    # slack — a wall-clock near-tie on busy hardware must not flip it.
    times = {m: rows[m]["T"] for m in
             ("DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb", "Sink.", "Hun.", "RL")}
    assert times["DInf"] == min(times.values())
    assert set(sorted(times, key=times.__getitem__)[-2:]) == {"Sink.", "Hun."}
    assert times["Sink."] >= 0.75 * times["Hun."]
    assert times["RInf-wr"] < times["RInf"]
    assert times["RInf-pb"] < times["RInf"]
