"""Ablation: k-means blocking for scalable matching (extension).

Paper insight 4: the best-performing matchers are not scalable.  The
BlockedMatcher extension bounds the working set to one block's matrices
(ClusterEA-style).  This ablation measures the quality/efficiency
trade-off across block counts on the DWY100K-like preset.
"""

from repro.core import create_matcher
from repro.core.blocking import BlockedMatcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings, format_table
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once


def run_ablation():
    preset = "dwy100k/dbp_wd"
    task = load_preset(preset)
    emb = build_embeddings(task, "G", preset_name=preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)

    out = {}
    direct = create_matcher("Hun.").match(src, tgt)
    out["direct"] = {
        "f1": evaluate_pairs(direct.pairs, gold).f1,
        "seconds": direct.seconds,
        "peak_bytes": direct.peak_bytes,
    }
    for blocks in (2, 4, 8):
        result = BlockedMatcher(
            create_matcher("Hun."), num_blocks=blocks, overlap=0.3
        ).match(src, tgt)
        out[f"blocked:{blocks}"] = {
            "f1": evaluate_pairs(result.pairs, gold).f1,
            "seconds": result.seconds,
            "peak_bytes": result.peak_bytes,
        }
    return out


def test_ablation_blocking(benchmark, save_artifact):
    out = run_once(benchmark, run_ablation)

    rows = [
        {"config": label, "F1": data["f1"], "time(s)": round(data["seconds"], 3),
         "peak MiB": round(data["peak_bytes"] / 2**20, 1)}
        for label, data in out.items()
    ]
    save_artifact(
        "ablation_blocking",
        format_table(rows, title="Ablation: k-means blocking of Hun. (G-D-W)"),
    )

    direct = out["direct"]
    # Every blocked configuration cuts both time and peak memory...
    for blocks in (2, 4, 8):
        data = out[f"blocked:{blocks}"]
        assert data["seconds"] < direct["seconds"]
        assert data["peak_bytes"] < direct["peak_bytes"]
    # ...and more blocks cut memory monotonically.
    assert out["blocked:8"]["peak_bytes"] <= out["blocked:2"]["peak_bytes"]
    # Quality stays within a usable band of the direct run (blocking is a
    # trade, not a free lunch: assert it keeps >= 70% of direct F1).
    assert out["blocked:4"]["f1"] >= 0.7 * direct["f1"]
