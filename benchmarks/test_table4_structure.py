"""Benchmark: regenerate Table 4 (F1 with structure-only embeddings).

Shape expectations from the paper:

1. Ordering per setting: Hun./Sink. on top, then RInf, then CSLS, with
   SMat and RL in the CSLS band, DInf last.
2. The weak-encoder (G-) settings show *larger relative* improvements
   over DInf than the strong-encoder (R-) settings.
3. Pattern 2: improvements shrink on the sparse SRPRS-like presets
   relative to the dense DBP15K-like presets.
"""

import numpy as np

from repro.datasets.zoo import DBP15K_PRESETS, SRPRS_PRESETS
from repro.experiments import format_table, table4_structure_only

from conftest import run_once

GROUPS = (
    ("R", DBP15K_PRESETS), ("R", SRPRS_PRESETS),
    ("G", DBP15K_PRESETS), ("G", SRPRS_PRESETS),
)


def group_mean_f1(table, regime, presets, matcher):
    return float(np.mean([table.result(regime, p).f1(matcher) for p in presets]))


def group_mean_improvement(table, regime, presets, matcher):
    return float(np.mean(
        [table.result(regime, p).improvement_over()[matcher] for p in presets]
    ))


def test_table4_structure_only(benchmark, save_artifact):
    table = run_once(benchmark, table4_structure_only)
    save_artifact("table4", format_table(table.rows, title=table.title))

    for regime, presets in GROUPS:
        dinf = group_mean_f1(table, regime, presets, "DInf")
        sink = group_mean_f1(table, regime, presets, "Sink.")
        hun = group_mean_f1(table, regime, presets, "Hun.")
        csls = group_mean_f1(table, regime, presets, "CSLS")
        rinf = group_mean_f1(table, regime, presets, "RInf")
        smat = group_mean_f1(table, regime, presets, "SMat")
        rl = group_mean_f1(table, regime, presets, "RL")

        # (1) DInf is the weakest strategy in every setting.
        for other in (csls, rinf, sink, hun, smat, rl):
            assert other >= dinf - 0.01, (regime, presets)
        # Assignment-based methods lead.
        assert max(sink, hun) >= max(csls, rinf, smat, rl) - 0.01
        # CSLS/RInf improve on DInf.
        assert csls > dinf
        assert rinf > dinf

    # (2) Weak encoder -> larger relative gains (Sink. as the probe).
    sink_gain_r = group_mean_improvement(table, "R", DBP15K_PRESETS, "Sink.")
    sink_gain_g = group_mean_improvement(table, "G", DBP15K_PRESETS, "Sink.")
    assert sink_gain_g > sink_gain_r

    # (3) Pattern 2: sparse datasets shrink the top methods' margins.
    for regime in ("R", "G"):
        dbp_gain = group_mean_improvement(table, regime, DBP15K_PRESETS, "Sink.")
        srp_gain = group_mean_improvement(table, regime, SRPRS_PRESETS, "Sink.")
        assert srp_gain < dbp_gain, regime

    # Absolute quality: strong encoder beats weak encoder on dense data.
    assert group_mean_f1(table, "R", DBP15K_PRESETS, "DInf") > group_mean_f1(
        table, "G", DBP15K_PRESETS, "DInf"
    )
