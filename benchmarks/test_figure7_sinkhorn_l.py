"""Benchmark: regenerate Figure 7 (Sinkhorn F1 as a function of l).

Shape expectation (paper): more normalisation rounds fit the 1-to-1
constraint progressively better, so F1 rises with l and saturates by
l ~ 100.
"""

from repro.experiments import figure7_sinkhorn_l

from conftest import run_once


def test_figure7_sinkhorn_l(benchmark, save_artifact):
    figure = run_once(benchmark, figure7_sinkhorn_l)

    lines = [figure.title]
    for series, points in figure.series.items():
        lines.append(f"  {series}: " + "  ".join(f"l={x}:{y:.3f}" for x, y in points))
    save_artifact("figure7", "\n".join(lines))

    for series, points in figure.series.items():
        values = dict(points)
        smallest, largest = min(values), max(values)
        # Rising trend from l=1 to the largest l.
        assert values[largest] >= values[smallest], series
        # Saturation: the last doubling adds little.
        ls = sorted(values)
        assert values[ls[-1]] - values[ls[-2]] < 0.05, series
