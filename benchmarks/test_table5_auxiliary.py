"""Benchmark: regenerate Table 5 (F1 with name / name+structure inputs).

Shape expectations from the paper:

1. Name information alone (N-) is already highly accurate, and fusing it
   with structural embeddings (NR-) lifts performance further.
2. Improvements over DInf are much smaller than in the structural
   settings (discriminative scores leave less to fix).
3. Pattern 1: with discriminative scores, the global-constraint methods
   (SMat, Hun.) gain at least as much as the score-rescaling methods
   (CSLS); Hun. is the strongest overall.
"""

import numpy as np

from repro.datasets.zoo import DBP15K_PRESETS
from repro.experiments import format_table
from repro.experiments.tables import (
    TABLE5_SRPRS,
    table4_structure_only,
    table5_auxiliary_information,
)

from conftest import run_once


def group_mean_f1(table, regime, presets, matcher):
    return float(np.mean([table.result(regime, p).f1(matcher) for p in presets]))


def group_mean_improvement(table, regime, presets, matcher):
    return float(np.mean(
        [table.result(regime, p).improvement_over()[matcher] for p in presets]
    ))


def test_table5_auxiliary_information(benchmark, save_artifact):
    table = run_once(benchmark, table5_auxiliary_information)
    save_artifact("table5", format_table(table.rows, title=table.title))

    # (1) NR- fuses names and structure and beats N- alone.
    for presets in (DBP15K_PRESETS, TABLE5_SRPRS):
        n_f1 = group_mean_f1(table, "N", presets, "DInf")
        nr_f1 = group_mean_f1(table, "NR", presets, "DInf")
        assert nr_f1 > n_f1
        assert n_f1 > 0.6  # names alone are already accurate

    # (2) Gains over DInf stay modest (paper: +2.4% to +10.4%).
    for regime, presets in (("N", DBP15K_PRESETS), ("NR", DBP15K_PRESETS)):
        for matcher in ("CSLS", "RInf", "Sink.", "Hun.", "SMat", "RL"):
            gain = group_mean_improvement(table, regime, presets, matcher)
            assert -0.02 <= gain <= 0.25, (regime, matcher, gain)

    # (3) Pattern 1: discriminative scores favour the global-constraint
    # methods relative to the rescalers.
    smat_gain = group_mean_improvement(table, "N", DBP15K_PRESETS, "SMat")
    csls_gain = group_mean_improvement(table, "N", DBP15K_PRESETS, "CSLS")
    assert smat_gain >= csls_gain - 0.03
    # Hun. is the best performer on the fused inputs.
    hun = group_mean_f1(table, "NR", DBP15K_PRESETS, "Hun.")
    for matcher in ("DInf", "CSLS", "RInf", "RL"):
        assert hun >= group_mean_f1(table, "NR", DBP15K_PRESETS, matcher) - 0.01


def test_table5_beats_structure_only(benchmark, save_artifact):
    """Auxiliary info lifts every matcher far above the structural runs."""
    t5 = run_once(benchmark, lambda: table5_auxiliary_information())
    t4 = table4_structure_only(matchers=("DInf",))
    for preset in DBP15K_PRESETS:
        structural = t4.result("R", preset).f1("DInf")
        fused = t5.result("NR", preset).f1("DInf")
        assert fused > structural
