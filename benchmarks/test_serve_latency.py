"""Serving latency/throughput benchmark for the online alignment daemon.

Measures the two numbers a serving deployment is sized by and records
them into ``benchmarks/results/BENCH_serve.json`` for the bench-check
regression gate:

* single-query latency through ``ServingState.query`` (the in-process
  path the HTTP handler sits on), reported as p50/p95 over a fixed
  query stream against a store with a populated delta layer — the
  worst realistic read path: IVF probe + brute-force delta scan +
  merge;
* coalesced throughput through the ``MicroBatcher`` with concurrent
  submitters, reported as ``queries_per_second``.

Absolute numbers are hardware-bound; the committed baseline is gated
with the wide ``*per_second*`` / ``*seconds*`` tolerance bands in
``check_regression.py``.  The assertions here are sanity floors only
(the service answers, batching actually coalesces), not perf targets.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.serve.batching import MicroBatcher
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

from conftest import RESULTS_DIR

pytestmark = pytest.mark.serve

N_BASE, DIM, N_CLUSTERS = 4000, 64, 16
N_DELTA = 48  # live delta depth during the measurement (worst read path)
NPROBE = 4
K = 10
LATENCY_QUERIES = 400
THROUGHPUT_QUERIES = 800
SUBMIT_THREADS = 8


def _merge_results(key, entry):
    """Merge one benchmark section into BENCH_serve.json (tests may run solo)."""
    path = RESULTS_DIR / "BENCH_serve.json"
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        document = {}
    document[key] = entry
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def served_state(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-bench")
    rng = np.random.default_rng(20240808)
    base = rng.normal(size=(N_BASE, DIM)).astype(np.float64)
    store = EmbeddingStore.create(
        tmp / "emb.store", base.shape, "float64", capacity=N_BASE + N_DELTA
    )
    store[:] = base
    store.update_checksum()
    store.close()
    IVFIndex(n_clusters=N_CLUSTERS).train(base).add(base).save(tmp / "ivf.json")
    state = ServingState.load(
        tmp / "emb.store", tmp / "ivf.json",
        nprobe=NPROBE, max_delta=N_DELTA + 1,  # keep the delta un-compacted
    )
    for vector in rng.normal(size=(N_DELTA, DIM)):
        state.insert(vector)
    assert state.stats()["delta_depth"] == N_DELTA
    return state


def test_single_query_latency(served_state):
    rng = np.random.default_rng(7)
    queries = rng.normal(size=(LATENCY_QUERIES, DIM))

    served_state.query(queries[0], K)  # warm caches / code paths
    samples = np.empty(LATENCY_QUERIES)
    for row, query in enumerate(queries):
        start = time.perf_counter()
        served_state.query(query, K)
        samples[row] = time.perf_counter() - start

    p50, p95 = (float(np.percentile(samples, q)) for q in (50, 95))
    _merge_results("single_query", {
        "n_base": N_BASE, "dim": DIM, "nprobe": NPROBE, "k": K,
        "delta_depth": N_DELTA, "queries": LATENCY_QUERIES,
        "p50_seconds": p50, "p95_seconds": p95,
    })
    print(f"\nserve single-query: p50={p50 * 1e3:.3f}ms p95={p95 * 1e3:.3f}ms")
    assert p95 < 1.0  # sanity floor, not a perf target


def test_batched_throughput(served_state):
    rng = np.random.default_rng(11)
    vectors = rng.normal(size=(THROUGHPUT_QUERIES, DIM))

    def handle(batch, ks):
        return [
            type(result)(
                entity_ids=result.entity_ids[:k],
                scores=result.scores[:k],
                version=result.version,
            )
            for result, k in zip(served_state.query(batch, max(ks)), ks)
        ]

    start_barrier = threading.Barrier(SUBMIT_THREADS + 1)
    failures: list = []

    with MicroBatcher(handle, max_batch=32, max_wait=0.002) as batcher:

        def worker(worker_index: int) -> None:
            try:
                start_barrier.wait()
                for row in range(worker_index, THROUGHPUT_QUERIES, SUBMIT_THREADS):
                    batcher.submit(vectors[row], K)
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(SUBMIT_THREADS)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = batcher.stats()

    assert not failures, failures
    assert stats["queries"] == THROUGHPUT_QUERIES
    assert stats["largest_batch"] > 1  # coalescing actually happened

    qps = THROUGHPUT_QUERIES / elapsed
    _merge_results("batched", {
        "n_base": N_BASE, "dim": DIM, "nprobe": NPROBE, "k": K,
        "threads": SUBMIT_THREADS, "queries": THROUGHPUT_QUERIES,
        "largest_batch": stats["largest_batch"],
        "mean_batch": stats["mean_batch"],
        "total_seconds": elapsed,
        "queries_per_second": qps,
    })
    print(f"\nserve batched: {qps:.0f} qps "
          f"(mean batch {stats['mean_batch']:.1f}, largest {stats['largest_batch']})")
    assert qps > 20.0  # sanity floor, not a perf target
