"""Benchmark: regenerate Figure 4 (STD of top-5 pairwise scores).

Shape expectation (paper Pattern 1's evidence): structure-only settings
produce crowded top scores (low STD); the name-informed settings produce
discriminative ones (high STD).
"""

from repro.experiments import figure4_top5_std

from conftest import run_once


def test_figure4_top5_std(benchmark, save_artifact):
    figure = run_once(benchmark, figure4_top5_std)
    points = dict(figure.series["top5_std"])
    lines = [figure.title] + [
        f"  {label:8s} {value:.4f}" for label, value in points.items()
    ]
    save_artifact("figure4", "\n".join(lines))

    structural = [points["R-DBP"], points["R-SRP"], points["G-DBP"], points["G-SRP"]]
    name_based = [points["N-DBP"], points["NR-DBP"]]
    # Every name-informed setting is more discriminative than every
    # structure-only setting.
    assert min(name_based) > max(structural)
    # All statistics are positive and finite.
    assert all(v > 0 for v in points.values())
