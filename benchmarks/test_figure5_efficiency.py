"""Benchmark: regenerate Figure 5 (time and memory efficiency).

Shape expectations from the paper:

1. DInf is the cheapest method in both time and memory; CSLS follows
   closely.
2. Sink. is among the slowest (it sweeps the matrix l times); RL's
   sequential decoding is also expensive.
3. SMat has the largest memory footprint (full preference lists); RInf
   is the most memory-hungry of the score-transform methods.
"""

import numpy as np

from repro.experiments import figure5_efficiency

from conftest import run_once

MATCHERS = ("DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat", "RL")


def test_figure5_efficiency(benchmark, save_artifact):
    figure = run_once(benchmark, figure5_efficiency)

    def mean_over_settings(series):
        return float(np.mean(figure.ys(series)))

    times = {m: mean_over_settings(f"time:{m}") for m in MATCHERS}
    memories = {m: mean_over_settings(f"memory:{m}") for m in MATCHERS}

    lines = [figure.title, "  matcher   time(s)   mem(MiB)"]
    for m in MATCHERS:
        lines.append(f"  {m:8s} {times[m]:8.4f} {memories[m]:9.2f}")
    save_artifact("figure5", "\n".join(lines))

    # (1) DInf cheapest on both axes.
    assert times["DInf"] == min(times.values())
    assert memories["DInf"] == min(memories.values())
    assert times["CSLS"] <= 10 * times["DInf"] + 0.05

    # (2) Sink. among the slowest; RL costly too.
    slowest_two = sorted(times, key=times.get)[-2:]
    assert "Sink." in slowest_two
    assert times["RL"] > times["CSLS"]

    # (3) Memory: SMat the hungriest; RInf well above CSLS and in the
    # same band as Sink./Hun. (paper: "close to RInf and Hun.").
    assert memories["SMat"] == max(memories.values())
    assert memories["RInf"] > memories["CSLS"]
    assert memories["RInf"] > 0.5 * memories["Sink."]
