"""Ablation: k in CSLS and RInf under non-1-to-1 alignment (Appendix C).

Figure 6 shows k=1 is the right choice under the 1-to-1 setting, but the
paper's Appendix C reveals the flip side: with non-1-to-1 gold links,
penalising by only the single best neighbour punishes duplicate targets
(whose top-1 competitor is their own sibling), so a larger k performs
better.  "Setting k to 1 is only useful in the 1-to-1 alignment setting."
The sweep covers both algorithms that carry the k normaliser: CSLS
(Equation 1) and RInf (the Equation 2 top-k generalisation).
"""

from repro.experiments import ExperimentConfig, run_experiment

from conftest import run_once

KS = (1, 2, 5, 10)


def run_ablation():
    out = {}
    for preset, label in (("fb_dbp_mul", "non-1-to-1"), ("dbp15k/zh_en", "1-to-1")):
        for matcher in ("CSLS", "RInf"):
            curve = {}
            for k in KS:
                config = ExperimentConfig(
                    preset=preset, input_regime="R", matchers=(matcher,),
                    matcher_options={matcher: {"k": k}},
                )
                curve[k] = run_experiment(config).f1(matcher)
            out[f"{label}/{matcher}"] = curve
    return out


def test_ablation_csls_k_non_one_to_one(benchmark, save_artifact):
    out = run_once(benchmark, run_ablation)

    lines = ["Ablation: k in CSLS and RInf across alignment settings (R-regime)"]
    for label, curve in out.items():
        lines.append(
            f"  {label:18s} " + "  ".join(f"k={k}:{f1:.3f}" for k, f1 in curve.items())
        )
    save_artifact("ablation_csls_k", "\n".join(lines))

    for matcher in ("CSLS", "RInf"):
        non = out[f"non-1-to-1/{matcher}"]
        one = out[f"1-to-1/{matcher}"]
        # Appendix C: under non-1-to-1 links, k=1 is NOT the best choice.
        assert max(non[k] for k in KS if k > 1) >= non[1], matcher
        # While under 1-to-1, k=1 holds its own against large k (Figure 6).
        assert one[1] >= one[10] - 0.02, matcher
