"""Scalability sweep: empirical running time vs problem size.

Table 2 of the paper states each algorithm's asymptotic class.  This
benchmark measures wall-clock time over a geometric size sweep and fits
log-log slopes, checking the empirical growth honours the asymptotics:
DInf/CSLS near-quadratic, Hungarian super-quadratic and the steepest,
and the cheap RInf variants growing no faster than full RInf.
"""

import numpy as np

from repro.core import create_matcher
from repro.experiments import format_table

from conftest import run_once

SIZES = (100, 200, 400, 800)
MATCHERS = ("DInf", "CSLS", "RInf", "RInf-wr", "Sink.", "Hun.", "SMat")


def run_sweep():
    rng = np.random.default_rng(0)
    times: dict[str, list[float]] = {name: [] for name in MATCHERS}
    for size in SIZES:
        latent = rng.normal(size=(size, 32))
        source = latent + 0.3 * rng.normal(size=latent.shape)
        target = latent + 0.3 * rng.normal(size=latent.shape)
        for name in MATCHERS:
            matcher = create_matcher(name)
            # Median of 3 runs tames scheduler noise at small sizes.
            samples = []
            for _ in range(3):
                samples.append(matcher.match(source, target).seconds)
            times[name].append(float(np.median(samples)))
    return times


def fitted_slope(sizes, seconds):
    log_n = np.log(np.asarray(sizes, dtype=float))
    log_t = np.log(np.maximum(np.asarray(seconds), 1e-7))
    slope, _ = np.polyfit(log_n, log_t, 1)
    return float(slope)


def test_scalability_sweep(benchmark, save_artifact):
    times = run_once(benchmark, run_sweep)

    rows = []
    slopes = {}
    for name in MATCHERS:
        slopes[name] = fitted_slope(SIZES, times[name])
        row = {"matcher": name}
        for size, seconds in zip(SIZES, times[name]):
            row[f"n={size}"] = round(seconds, 4)
        row["log-log slope"] = round(slopes[name], 2)
        rows.append(row)
    save_artifact(
        "scalability",
        format_table(rows, title="Scalability: time vs n (random crowded embeddings)"),
    )

    # DInf stays the cheapest at the largest size; Sink. (100 sweeps of
    # the matrix) is the most expensive, as in the paper's Table 6.
    largest = {name: times[name][-1] for name in MATCHERS}
    assert largest["DInf"] == min(largest.values())
    assert largest["Sink."] == max(largest.values())

    # The O(n^2)-class methods grow near-quadratically.
    for name in ("CSLS", "RInf", "SMat"):
        assert 1.4 <= slopes[name] <= 2.8, (name, slopes[name])

    # Hungarian grows with n (its empirical exponent depends on score
    # accuracy — the paper notes it "tends to run slower on datasets with
    # less accurate pairwise scores"; on this easy workload augmenting
    # paths are short, so it sits well under its O(n^3) worst case).
    assert slopes["Hun."] > 1.0

    # The cheap RInf variant grows no faster than full RInf.
    assert largest["RInf-wr"] <= largest["RInf"]
