"""Robustness: the headline orderings hold across seeds, with significance.

Single-seed tables can flatter noise.  This benchmark (1) repeats the
main comparison across embedding seeds and checks the paper's orderings
by win-rate, and (2) runs a paired bootstrap test showing the
Hungarian-over-DInf gap is statistically significant on a single run's
shared query set.
"""

from repro.core import DInf, Hungarian
from repro.datasets import load_preset
from repro.eval.significance import paired_bootstrap_test, per_query_outcomes
from repro.experiments import (
    ExperimentConfig,
    build_embeddings,
    format_table,
    run_repeated,
)
from repro.experiments.runner import _gold_local_pairs

from conftest import run_once

SEEDS = (0, 1, 2, 3, 4)


def run_robustness():
    config = ExperimentConfig(
        preset="dbp15k/zh_en", input_regime="R",
        matchers=("DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat"),
    )
    repeated = run_repeated(config, seeds=SEEDS)

    # Significance on one run's shared query set.
    task = load_preset("dbp15k/zh_en")
    emb = build_embeddings(task, "R", seed=0, preset_name="dbp15k/zh_en")
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = emb.source[queries], emb.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)
    n = len(queries)
    hun = per_query_outcomes(Hungarian().match(src, tgt).pairs, gold, n)
    dinf = per_query_outcomes(DInf().match(src, tgt).pairs, gold, n)
    comparison = paired_bootstrap_test(hun, dinf, seed=0)
    return repeated, comparison


def test_ordering_robust_across_seeds(benchmark, save_artifact):
    repeated, comparison = run_once(benchmark, run_robustness)

    text = format_table(
        repeated.as_rows(),
        title=f"Robustness: R-D-Z across seeds {SEEDS}",
    )
    text += (
        f"\n\nPaired bootstrap Hun. vs DInf (seed 0): "
        f"diff={comparison.mean_difference:+.3f} "
        f"CI=[{comparison.interval.lower:+.3f}, {comparison.interval.upper:+.3f}] "
        f"p={comparison.p_value:.4f}"
    )
    save_artifact("robustness", text)

    # The paper's orderings hold in (almost) every seed.
    assert repeated.consistent_order("Hun.", "DInf", min_rate=1.0)
    assert repeated.consistent_order("Sink.", "DInf", min_rate=1.0)
    assert repeated.consistent_order("CSLS", "DInf", min_rate=0.8)
    assert repeated.consistent_order("RInf", "CSLS", min_rate=0.6)
    assert repeated.consistent_order("Hun.", "SMat", min_rate=0.8)

    # Mean gaps exceed the cross-seed noise.
    hun_stat = repeated.stat("Hun.")
    dinf_stat = repeated.stat("DInf")
    assert hun_stat.mean - dinf_stat.mean > 2 * max(hun_stat.std, dinf_stat.std, 0.005)

    # And the single-run paired comparison is significant.
    assert comparison.significant
    assert comparison.p_value < 0.05
