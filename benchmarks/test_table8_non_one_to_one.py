"""Benchmark: regenerate Table 8 (non-1-to-1 alignment, FB_DBP_MUL).

Shape expectations from the paper:

1. Results collapse relative to the 1-to-1 setting: recall is capped by
   single-answer decoding against multi-target gold links.
2. The score-rescaling methods (CSLS/RInf) hold up best; the hard
   1-to-1 matchers (Hun., SMat) fall *below* the simple DInf baseline;
   RL's exclusiveness constraint also stops paying off.
3. Precision exceeds recall for every method.
"""

from repro.experiments import format_table, table8_non_one_to_one

from conftest import run_once


def test_table8_non_one_to_one(benchmark, save_artifact):
    table = run_once(benchmark, table8_non_one_to_one)
    save_artifact("table8", format_table(table.rows, title=table.title))

    rows = {row["matcher"]: row for row in table.rows}

    for regime in ("G", "R"):
        f1 = {m: rows[m][f"{regime}:F1"] for m in rows}
        # (2) Rescalers on top; constrained matchers collapse below DInf.
        top = max(f1["CSLS"], f1["RInf"])
        assert top >= f1["Hun."] + 0.01, regime
        assert top >= f1["SMat"] + 0.01, regime
        assert f1["Hun."] < f1["DInf"], regime
        assert f1["SMat"] < f1["DInf"], regime
        # RL no longer beats the baseline meaningfully.
        assert f1["RL"] <= f1["DInf"] + 0.03, regime

        # (3) Precision > recall everywhere (multi-target gold links).
        for matcher in rows:
            assert rows[matcher][f"{regime}:P"] > rows[matcher][f"{regime}:R"], (
                regime, matcher,
            )

    # (1) Strong encoder still helps, but the ceiling stays low compared
    # with the same regime's 1-to-1 result (R-DBP DInf ~0.6 vs here).
    assert rows["DInf"]["R:F1"] > rows["DInf"]["G:F1"]
    assert rows["DInf"]["R:R"] < 0.75
