"""CandidateSet: construction invariants, queries, and the densify hatch."""

import numpy as np
import pytest

from repro.eval.analysis import top_k_std
from repro.eval.metrics import ranking_diagnostics
from repro.index import CandidateSet
from repro.obs.metrics import get_metrics
from repro.similarity.topk import top_k_indices


def full_candidate_set(scores):
    """Every cell of a dense matrix as a (sorted) candidate set."""
    n_targets = scores.shape[1]
    indices = top_k_indices(scores, n_targets)
    values = np.take_along_axis(scores, indices, axis=1)
    return CandidateSet.from_topk(indices, values, n_targets)


class TestConstruction:
    def test_from_topk_layout(self):
        indices = np.array([[2, 0], [1, 3]])
        scores = np.array([[0.9, 0.5], [0.8, 0.1]])
        cands = CandidateSet.from_topk(indices, scores, n_targets=4)
        assert cands.n_sources == 2
        assert cands.n_targets == 4
        assert cands.nnz == 4
        assert cands.k_max == 2
        ids, row_scores = cands.row(0)
        np.testing.assert_array_equal(ids, [2, 0])
        np.testing.assert_array_equal(row_scores, [0.9, 0.5])

    def test_from_rows_sorts_best_first_and_allows_ragged(self):
        rows = [
            (np.array([3, 1]), np.array([0.1, 0.7])),   # unsorted on purpose
            (np.array([], dtype=np.int64), np.array([])),
            (np.array([0, 2, 4]), np.array([0.5, 0.9, 0.2])),
        ]
        cands = CandidateSet.from_rows(rows, n_targets=5)
        np.testing.assert_array_equal(cands.row_counts, [2, 0, 3])
        ids, scores = cands.row(0)
        np.testing.assert_array_equal(ids, [1, 3])
        ids, scores = cands.row(2)
        np.testing.assert_array_equal(ids, [2, 0, 4])
        assert scores[0] == 0.9

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError, match="outside"):
            CandidateSet(np.array([0, 1]), np.array([5]), np.array([1.0]), n_targets=3)

    def test_rejects_inconsistent_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CandidateSet(np.array([0, 2]), np.array([1]), np.array([1.0]), n_targets=3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="disagree"):
            CandidateSet(
                np.array([0, 2]), np.array([0, 1]), np.array([1.0]), n_targets=3
            )


class TestQueries:
    def test_best_per_row_skips_empty_rows(self):
        rows = [
            (np.array([2]), np.array([0.4])),
            (np.array([], dtype=np.int64), np.array([])),
            (np.array([1, 0]), np.array([0.9, 0.3])),
        ]
        cands = CandidateSet.from_rows(rows, n_targets=3)
        picked_rows, cols, scores = cands.best_per_row()
        np.testing.assert_array_equal(picked_rows, [0, 2])
        np.testing.assert_array_equal(cols, [2, 1])
        np.testing.assert_array_equal(scores, [0.4, 0.9])

    def test_row_of_entry_expands_csr(self):
        cands = CandidateSet.from_topk(
            np.array([[0, 1], [2, 0]]), np.array([[0.5, 0.4], [0.9, 0.1]]), 3
        )
        np.testing.assert_array_equal(cands.row_of_entry(), [0, 0, 1, 1])

    def test_contains_and_recall(self):
        cands = CandidateSet.from_topk(
            np.array([[0, 1], [2, 0]]), np.array([[0.5, 0.4], [0.9, 0.1]]), 3
        )
        hits = cands.contains([(0, 1), (0, 2), (1, 2)])
        np.testing.assert_array_equal(hits, [True, False, True])
        assert cands.recall([(0, 1), (0, 2)]) == 0.5
        assert cands.recall([]) == 0.0

    def test_ranking_diagnostics_match_dense(self, rng):
        scores = rng.random((12, 9))
        gold = [(i, int(scores[i].argmax())) for i in range(0, 12, 3)]
        gold += [(1, 0), (2, 8)]
        sparse = full_candidate_set(scores).ranking_diagnostics(gold)
        dense = ranking_diagnostics(scores, gold)
        assert sparse == pytest.approx(dense)

    def test_ranking_diagnostics_missing_gold_is_unranked(self):
        cands = CandidateSet.from_topk(np.array([[1]]), np.array([[0.9]]), 3)
        diagnostics = cands.ranking_diagnostics([(0, 2)])
        assert diagnostics["hits@10"] == 0.0
        assert diagnostics["mrr"] == 0.0

    def test_top5_std_matches_dense_statistic(self, rng):
        scores = rng.random((10, 8))
        assert full_candidate_set(scores).top5_std() == pytest.approx(
            top_k_std(scores, k=5)
        )


class TestDensify:
    def test_round_trips_stored_entries_and_counts(self, rng):
        scores = rng.random((6, 5))
        cands = full_candidate_set(scores)
        registry = get_metrics()
        before = registry.counter("sparse.densify")
        dense = cands.densify()
        assert registry.counter("sparse.densify") == before + 1
        np.testing.assert_allclose(dense, scores)

    def test_fill_never_beats_a_candidate(self):
        cands = CandidateSet.from_topk(np.array([[2]]), np.array([[-5.0]]), 4)
        dense = cands.densify()
        assert dense[0, 2] == -5.0
        assert dense.argmax() == 2  # the only candidate still wins

    def test_explicit_fill(self):
        cands = CandidateSet.from_topk(np.array([[0]]), np.array([[1.0]]), 2)
        dense = cands.densify(fill=-9.0)
        assert dense[0, 1] == -9.0
