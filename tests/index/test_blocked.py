"""Blocked (coarse-to-fine) candidate generation and CandidateSet.vstack."""

import numpy as np
import pytest

from repro.index import CandidateSet, blocked_candidates, default_clusters, default_nprobe
from repro.index.ivf import IVFIndex
from repro.obs import events as obs_events
from repro.similarity.chunked import chunked_top_k


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def problem(rng):
    latent = rng.normal(size=(80, 12))
    source = latent + 0.05 * rng.normal(size=(80, 12))
    target = latent + 0.05 * rng.normal(size=(80, 12))
    return source, target


class TestVstack:
    def test_vstack_equals_unsplit_set(self, rng):
        scores = rng.random((20, 15))
        from repro.similarity.topk import top_k_indices

        indices = top_k_indices(scores, 4)
        values = np.take_along_axis(scores, indices, axis=1)
        whole = CandidateSet.from_topk(indices, values, 15)
        parts = [
            CandidateSet.from_topk(indices[a:b], values[a:b], 15)
            for a, b in [(0, 7), (7, 13), (13, 20)]
        ]
        stacked = CandidateSet.vstack(parts)
        np.testing.assert_array_equal(stacked.indptr, whole.indptr)
        np.testing.assert_array_equal(stacked.indices, whole.indices)
        np.testing.assert_array_equal(stacked.scores, whole.scores)

    def test_single_part_is_identity(self, rng):
        scores = rng.random((5, 5))
        from repro.similarity.topk import top_k_indices

        indices = top_k_indices(scores, 2)
        values = np.take_along_axis(scores, indices, axis=1)
        part = CandidateSet.from_topk(indices, values, 5)
        assert CandidateSet.vstack([part]) is part

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            CandidateSet.vstack([])

    def test_mismatched_targets_rejected(self, rng):
        from repro.similarity.topk import top_k_indices

        scores = rng.random((4, 6))
        indices = top_k_indices(scores, 2)
        values = np.take_along_axis(scores, indices, axis=1)
        a = CandidateSet.from_topk(indices, values, 6)
        b = CandidateSet.from_topk(indices, values, 7)
        with pytest.raises(ValueError, match="n_targets"):
            CandidateSet.vstack([a, b])


class TestBlockedCandidates:
    def test_batching_never_changes_candidate_identity(self, problem):
        source, target = problem
        one_shot = blocked_candidates(source, target, 5, n_clusters=6, nprobe=6)
        # A budget this small forces many row batches.
        batched = blocked_candidates(
            source, target, 5, n_clusters=6, nprobe=6, memory_budget=2048
        )
        np.testing.assert_array_equal(batched.indptr, one_shot.indptr)
        np.testing.assert_array_equal(batched.indices, one_shot.indices)
        # BLAS may reduce in a different order per batch shape: identity
        # is exact, scores agree to roundoff.
        np.testing.assert_allclose(
            batched.scores, one_shot.scores, rtol=0, atol=1e-12
        )

    def test_equal_budgets_are_bitwise_reproducible(self, problem):
        source, target = problem
        first = blocked_candidates(
            source, target, 5, n_clusters=6, nprobe=6, memory_budget=2048
        )
        second = blocked_candidates(
            source, target, 5, n_clusters=6, nprobe=6, memory_budget=2048
        )
        np.testing.assert_array_equal(first.indices, second.indices)
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_full_probe_recovers_exact_top_k(self, problem):
        source, target = problem
        candidates = blocked_candidates(
            source, target, 3, n_clusters=4, nprobe=4
        )
        ids, _ = chunked_top_k(source, target, 3)
        for row in range(source.shape[0]):
            got, _ = candidates.row(row)
            assert set(got.tolist()) == set(ids[row].tolist())

    def test_default_sizing_helpers(self):
        assert default_clusters(0) == 1
        assert default_clusters(100) == 10
        assert default_clusters(10**9) == 4096
        assert default_nprobe(1) == 1
        assert default_nprobe(64) == 8

    def test_empty_problem_returns_empty_set(self):
        empty = np.empty((0, 4))
        candidates = blocked_candidates(empty, np.zeros((5, 4)), 2)
        assert candidates.nnz == 0

    def test_k_validated(self, problem):
        source, target = problem
        with pytest.raises(ValueError, match="k"):
            blocked_candidates(source, target, 0)

    def test_accepts_embedding_stores(self, tmp_path, problem):
        from repro.storage import EmbeddingStore

        source, target = problem
        source_store = EmbeddingStore.write(tmp_path / "s.bin", source)
        target_store = EmbeddingStore.write(tmp_path / "t.bin", target)
        from_store = blocked_candidates(
            source_store, target_store, 4, n_clusters=4, nprobe=4
        )
        from_arrays = blocked_candidates(source, target, 4, n_clusters=4, nprobe=4)
        np.testing.assert_array_equal(from_store.indices, from_arrays.indices)
        source_store.close()
        target_store.close()

    def test_recall_is_usable_at_default_sizing(self, problem):
        source, target = problem
        candidates = blocked_candidates(source, target, 5)
        gold = np.column_stack([np.arange(80), np.arange(80)])
        assert candidates.recall(gold) >= 0.9


class TestBuildProgressEvents:
    def test_train_and_fill_emit_progress(self, problem):
        _, target = problem
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            IVFIndex(n_clusters=4, train_iterations=3).train(target).add(target)
        names = [event.name for event in sink.events]
        assert names.count("index.train.start") == 1
        assert names.count("index.train.round") == 3
        assert names.count("index.train.finish") == 1
        assert names.count("index.lists_filled") == 1
        rounds = [e for e in sink.events if e.name == "index.train.round"]
        assert [e.attrs["round"] for e in rounds] == [1, 2, 3]
        assert all(e.attrs["of"] == 3 for e in rounds)
        fill = next(e for e in sink.events if e.name == "index.lists_filled")
        assert fill.attrs["n"] == 80
        assert fill.attrs["lists"] == 4

    def test_blocked_batches_emit_progress(self, problem):
        source, target = problem
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            blocked_candidates(
                source, target, 3, n_clusters=4, nprobe=4, memory_budget=2048
            )
        batches = [e for e in sink.events if e.name == "index.blocked.batch"]
        assert len(batches) > 1
        assert batches[0].attrs["start"] == 0
        assert batches[-1].attrs["stop"] == 80
        assert all(e.attrs["of"] == 80 for e in batches)

    def test_no_sink_means_no_event_cost(self, problem):
        # The quiet path: builds run exactly as before with no sink.
        _, target = problem
        index = IVFIndex(n_clusters=4, train_iterations=2).train(target).add(target)
        assert index.ntotal == 80
