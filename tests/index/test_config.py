"""IndexConfig + build_candidates: the one-argument sparse-path handle."""

import numpy as np
import pytest

from repro.index import IndexConfig, build_candidates
from repro.similarity.chunked import chunked_top_k
from repro.similarity.engine import SimilarityEngine


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            IndexConfig(kind="annoy")

    @pytest.mark.parametrize("field", ["k", "nprobe", "n_clusters"])
    def test_positive_knobs(self, field):
        with pytest.raises(ValueError, match=field):
            IndexConfig(**{field: 0})


class TestBuildCandidates:
    def test_exact_matches_chunked_top_k(self, rng):
        source = rng.normal(size=(40, 8))
        target = rng.normal(size=(30, 8))
        cands = build_candidates(source, target, IndexConfig(kind="exact", k=5))
        ids, scores = chunked_top_k(source, target, 5)
        np.testing.assert_array_equal(cands.indices.reshape(40, 5), ids)
        np.testing.assert_allclose(cands.scores.reshape(40, 5), scores)

    def test_exact_through_engine_counts_cache_hit(self, rng):
        source = rng.normal(size=(20, 8))
        target = rng.normal(size=(15, 8))
        with SimilarityEngine() as engine:
            dense = engine.similarity(source, target)
            cands = build_candidates(
                source, target, IndexConfig(kind="exact", k=4), engine=engine
            )
            assert engine.stats.hits == 1
        best = cands.best_per_row()
        np.testing.assert_array_equal(best[1], dense.argmax(axis=1))

    def test_ivf_clamps_clusters_and_respects_k(self, rng):
        source = rng.normal(size=(25, 8))
        target = rng.normal(size=(10, 8))
        cands = build_candidates(
            source, target, IndexConfig(kind="ivf", k=4, nprobe=64, n_clusters=64)
        )
        assert cands.n_sources == 25
        assert cands.n_targets == 10
        assert cands.k_max <= 4

    def test_metric_override_wins(self, rng):
        source = rng.normal(size=(12, 6))
        target = rng.normal(size=(12, 6))
        config = IndexConfig(kind="exact", k=3, metric="euclidean")
        cands = build_candidates(source, target, config, metric="cosine")
        ids, scores = chunked_top_k(source, target, 3, metric="euclidean")
        np.testing.assert_allclose(cands.scores.reshape(12, 3), scores)
