"""Incremental IVF primitives: append, tombstone, clone, stable search.

Also the ``repro index stats`` regression pass: ``stats()`` must report
defensively on every degenerate geometry (identical vectors, empty
lists, everything tombstoned, untrained) — never a ZeroDivisionError.
"""

import numpy as np
import pytest

from repro.index import IVFIndex


@pytest.fixture
def rng():
    return np.random.default_rng(123)


@pytest.fixture
def built(rng):
    vectors = rng.normal(size=(40, 6))
    return IVFIndex(n_clusters=4).train(vectors).add(vectors), vectors


class TestAppendAndTombstone:
    def test_append_assigns_like_add(self, built, rng):
        index, vectors = built
        extra = rng.normal(size=(5, 6))
        positions = [index.append_to_list(vector) for vector in extra]
        assert positions == [40, 41, 42, 43, 44]
        assert index.ntotal == 45 and index.n_alive == 45
        # The grown index equals an index built over all 45 at once.
        rebuilt = IVFIndex(n_clusters=4)
        rebuilt._centroids = index._centroids
        rebuilt._center = index._center
        rebuilt.add(np.concatenate([vectors, extra]))
        for grown, cold in zip(index._lists, rebuilt._lists):
            np.testing.assert_array_equal(np.sort(grown), np.sort(cold))

    def test_tombstoned_positions_are_never_returned(self, built, rng):
        index, vectors = built
        queries = rng.normal(size=(6, 6))
        victims = [0, 7, 13, 39]
        for victim in victims:
            index.tombstone(victim)
        assert index.n_tombstoned == 4
        found = index.search(queries, k=index.ntotal, nprobe=index.n_clusters)
        assert not np.isin(victims, found.indices).any()

    def test_tombstone_is_idempotent_and_bounded(self, built):
        index, _ = built
        index.tombstone(3)
        index.tombstone(3)
        assert index.n_tombstoned == 1
        with pytest.raises(ValueError, match="out of range"):
            index.tombstone(40)
        with pytest.raises(ValueError, match="out of range"):
            index.tombstone(-1)

    def test_append_validates_dim_and_lifecycle(self, built):
        index, _ = built
        with pytest.raises(ValueError, match="dim"):
            index.append_to_list(np.ones(3))
        fresh = IVFIndex()
        with pytest.raises(RuntimeError):
            fresh.append_to_list(np.ones(3))
        with pytest.raises(RuntimeError):
            fresh.tombstone(0)

    def test_exclude_mask_filters_search(self, built, rng):
        index, _ = built
        queries = rng.normal(size=(3, 6))
        exclude = np.zeros(index.ntotal, dtype=bool)
        exclude[:20] = True
        found = index.search(
            queries, k=index.ntotal, nprobe=index.n_clusters, exclude=exclude
        )
        assert not np.isin(np.arange(20), found.indices).any()
        with pytest.raises(ValueError, match="exclude mask"):
            index.search(queries, k=2, exclude=np.zeros(3, dtype=bool))


class TestClone:
    def test_clone_is_copy_on_write(self, built, rng):
        index, _ = built
        clone = index.clone()
        clone.append_to_list(rng.normal(size=6))
        clone.tombstone(0)
        assert clone.ntotal == 41 and clone.n_alive == 40
        assert index.ntotal == 40 and index.n_alive == 40

    def test_original_mutations_do_not_leak_into_clone(self, built, rng):
        index, _ = built
        clone = index.clone()
        index.append_to_list(rng.normal(size=6))
        index.tombstone(5)
        assert clone.ntotal == 40 and clone.n_alive == 40


class TestStableSearch:
    def test_stable_matches_unstable_candidate_set(self, built, rng):
        index, _ = built
        queries = rng.normal(size=(4, 6))
        stable = index.search(queries, k=7, nprobe=index.n_clusters, stable=True)
        default = index.search(queries, k=7, nprobe=index.n_clusters)
        for row in range(4):
            s_ids, s_scores = stable.row(row)
            d_ids, _ = default.row(row)
            assert set(s_ids) == set(d_ids)
            assert list(s_scores) == sorted(s_scores, reverse=True)

    def test_stable_is_batch_invariant(self, built, rng):
        index, _ = built
        queries = rng.normal(size=(5, 6))
        batched = index.search(queries, k=5, nprobe=index.n_clusters, stable=True)
        for row in range(5):
            single = index.search(
                queries[row : row + 1], k=5, nprobe=index.n_clusters, stable=True
            )
            np.testing.assert_array_equal(single.row(0)[0], batched.row(row)[0])
            np.testing.assert_array_equal(single.row(0)[1], batched.row(row)[1])

    def test_stable_ties_break_by_ascending_position(self):
        # Four identical vectors: every score ties; order must be 0,1,2.
        vectors = np.ones((4, 3))
        index = IVFIndex(n_clusters=1).train(vectors).add(vectors)
        found = index.search(np.ones((1, 3)), k=3, nprobe=1, stable=True)
        np.testing.assert_array_equal(found.row(0)[0], [0, 1, 2])


class TestTombstonePersistence:
    def test_round_trip_preserves_tombstones(self, built, tmp_path, rng):
        index, _ = built
        index.append_to_list(rng.normal(size=6))
        index.tombstone(2)
        index.tombstone(40)
        path = tmp_path / "ivf.json"
        index.save(path)
        loaded = IVFIndex.load(path)
        assert loaded.ntotal == 41
        assert loaded.n_tombstoned == 2
        np.testing.assert_array_equal(loaded.alive_mask, index.alive_mask)

    def test_clean_index_document_has_no_tombstone_key(self, built, tmp_path):
        import json

        index, _ = built
        payload = json.loads(index.save(tmp_path / "ivf.json").read_text())
        assert "tombstones" not in payload


class TestStatsDefensive:
    """The `repro index stats` ZeroDivisionError regression pass."""

    def test_degenerate_identical_vectors(self):
        # 10 identical vectors, 4 requested clusters: 3 lists are empty.
        vectors = np.ones((10, 3))
        index = IVFIndex(n_clusters=4).train(vectors).add(vectors)
        stats = index.stats()
        assert stats["empty_lists"] == 3
        assert stats["list_min"] == 0
        assert stats["imbalance"] == 1.0

    def test_everything_tombstoned_reports_zeros(self):
        vectors = np.ones((6, 2))
        index = IVFIndex(n_clusters=2).train(vectors).add(vectors)
        for position in range(6):
            index.tombstone(position)
        stats = index.stats()
        assert stats["alive"] == 0
        assert stats["tombstones"] == 6
        assert stats["list_max"] == 0
        assert stats["imbalance"] == 0.0
        assert stats["empty_lists"] == index.n_clusters

    def test_untrained_index_reports_cleanly(self):
        stats = IVFIndex(n_clusters=4).stats()
        assert stats["trained"] is False
        assert stats["ntotal"] == 0
        assert stats["list_mean"] == 0.0
        assert stats["imbalance"] == 0.0

    def test_sizes_are_alive_aware(self):
        vectors = np.concatenate([np.zeros((4, 2)), np.ones((4, 2)) * 9])
        index = IVFIndex(n_clusters=2).train(vectors).add(vectors)
        before = index.stats()
        assert before["list_max"] == 4
        index.tombstone(0)
        after = index.stats()
        assert after["alive"] == 7
        assert sorted([after["list_min"], after["list_max"]]) == [3, 4]

    def test_cli_index_stats_on_degenerate_index(self, tmp_path, capsys):
        from repro.cli import main

        vectors = np.ones((10, 3))
        index = IVFIndex(n_clusters=4).train(vectors).add(vectors)
        path = tmp_path / "degenerate.ivf.json"
        index.save(path)
        assert main(["index", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "imbalance=1.000" in out
        assert "empty_lists=3" in out
