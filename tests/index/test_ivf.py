"""IVFIndex: lifecycle, exactness at full probe width, recall, persistence."""

import json

import numpy as np
import pytest

from repro.index import IVF_FORMAT, IVF_VERSION, IVFIndex
from repro.obs.metrics import get_metrics
from repro.similarity.chunked import chunked_top_k


def clustered_embeddings(rng, size=300, dim=32, noise=0.3):
    """The scalability benchmark's synthetic geometry: shared latents."""
    latent = rng.normal(size=(size, dim))
    source = latent + noise * rng.normal(size=(size, dim))
    target = latent + noise * rng.normal(size=(size, dim))
    return source, target


class TestLifecycle:
    def test_add_before_train_raises(self, rng):
        with pytest.raises(RuntimeError, match="train"):
            IVFIndex().add(rng.normal(size=(5, 4)))

    def test_search_before_add_raises(self, rng):
        index = IVFIndex(n_clusters=2).train(rng.normal(size=(10, 4)))
        with pytest.raises(RuntimeError, match="add"):
            index.search(rng.normal(size=(3, 4)), k=2)

    def test_dim_mismatch_raises(self, rng):
        index = IVFIndex(n_clusters=2).train(rng.normal(size=(10, 4)))
        with pytest.raises(ValueError, match="dim"):
            index.add(rng.normal(size=(10, 5)))

    def test_clusters_clamped_to_population(self, rng):
        vectors = rng.normal(size=(3, 4))
        index = IVFIndex(n_clusters=16).train(vectors).add(vectors)
        assert index.n_clusters == 3
        assert index.ntotal == 3

    def test_invalid_knobs_raise(self, rng):
        with pytest.raises(ValueError, match="n_clusters"):
            IVFIndex(n_clusters=0)
        vectors = rng.normal(size=(10, 4))
        index = IVFIndex(n_clusters=2).train(vectors).add(vectors)
        with pytest.raises(ValueError, match="k must be"):
            index.search(vectors, k=0)
        with pytest.raises(ValueError, match="nprobe"):
            index.search(vectors, k=1, nprobe=0)

    def test_stats_shape(self, rng):
        vectors = rng.normal(size=(40, 8))
        stats = IVFIndex(n_clusters=4).train(vectors).add(vectors).stats()
        assert stats["ntotal"] == 40
        assert stats["n_clusters"] == 4
        assert stats["list_min"] <= stats["list_mean"] <= stats["list_max"]
        assert stats["trained"] is True


class TestSearchQuality:
    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_full_probe_equals_brute_force(self, rng, metric):
        # nprobe == n_clusters scans every list with exact rescoring, so
        # the result must be *identical* to brute-force top-k.
        source, target = clustered_embeddings(rng, size=150, dim=16)
        index = IVFIndex(n_clusters=6, metric=metric).train(target).add(target)
        found = index.search(source, k=10, nprobe=6)
        exact_ids, exact_scores = chunked_top_k(source, target, 10, metric=metric)
        np.testing.assert_array_equal(
            found.indices.reshape(len(source), 10), exact_ids
        )
        np.testing.assert_allclose(
            found.scores.reshape(len(source), 10), exact_scores
        )

    def test_recall_at_10_on_synthetic_gold(self, rng):
        # The seeded acceptance gate: >= 0.95 gold-pair recall@10 at a
        # quarter of the lists probed.
        source, target = clustered_embeddings(rng, size=300, dim=32)
        gold = [(i, i) for i in range(300)]
        index = IVFIndex(n_clusters=8).train(target).add(target)
        found = index.search(source, k=10, nprobe=2)
        assert found.recall(gold) >= 0.95

    def test_more_probes_never_hurt_recall(self, rng):
        source, target = clustered_embeddings(rng, size=200, dim=16)
        gold = [(i, i) for i in range(200)]
        index = IVFIndex(n_clusters=8).train(target).add(target)
        recalls = [
            index.search(source, k=10, nprobe=nprobe).recall(gold)
            for nprobe in (1, 4, 8)
        ]
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0  # full probe contains every true top-10

    def test_shortfall_rows_keep_what_was_found(self, rng):
        vectors = rng.normal(size=(12, 4))
        index = IVFIndex(n_clusters=4).train(vectors).add(vectors)
        found = index.search(vectors, k=10, nprobe=1)
        # One probed list holds < 10 vectors, so rows come up short but
        # are still valid, sorted candidate lists.
        assert found.k_max <= 10
        assert found.n_sources == 12
        counts = found.row_counts
        assert (counts > 0).all()

    def test_search_counters(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = IVFIndex(n_clusters=3).train(vectors).add(vectors)
        registry = get_metrics()
        before = registry.counter("index.search.queries")
        index.search(vectors[:7], k=3, nprobe=1)
        assert registry.counter("index.search.queries") == before + 7


class TestPersistence:
    def test_round_trip_preserves_search(self, rng, tmp_path):
        source, target = clustered_embeddings(rng, size=80, dim=8)
        index = IVFIndex(n_clusters=4).train(target).add(target)
        path = index.save(tmp_path / "index.json")
        reloaded = IVFIndex.load(path)
        original = index.search(source, k=5, nprobe=2)
        restored = reloaded.search(source, k=5, nprobe=2)
        np.testing.assert_array_equal(original.indices, restored.indices)
        np.testing.assert_allclose(original.scores, restored.scores)
        assert reloaded.stats() == index.stats()

    def test_save_before_add_raises(self, rng, tmp_path):
        index = IVFIndex(n_clusters=2).train(rng.normal(size=(10, 4)))
        with pytest.raises(RuntimeError, match="add"):
            index.save(tmp_path / "index.json")

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "not-an-index"}), encoding="utf-8")
        with pytest.raises(ValueError, match=IVF_FORMAT):
            IVFIndex.load(path)

    def test_load_rejects_future_version(self, rng, tmp_path):
        index = IVFIndex(n_clusters=2)
        vectors = rng.normal(size=(10, 4))
        path = index.train(vectors).add(vectors).save(tmp_path / "index.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        document["version"] = IVF_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            IVFIndex.load(path)
