"""Tests for the deterministic fault-injection harness."""

import signal

import numpy as np
import pytest

from repro.core.greedy import DInf
from repro.core.sinkhorn import Sinkhorn
from repro.errors import ConvergenceError, DataIntegrityError, WorkerCrashedError
from repro.testing.faults import (
    AllocationFailure,
    EmbeddingCorruptor,
    ForcedConvergenceFailure,
    KernelStall,
    KilledWorkerInjector,
    TornWriteInjector,
    corrupt_embeddings,
    default_injectors,
    faulty_factory,
    kill_current_worker,
)


def _embeddings(n=5, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.normal(size=(n, d))


class TestCorruptEmbeddings:
    def test_deterministic_under_seed(self):
        array = np.ones((10, 8))
        a = corrupt_embeddings(array, fraction=0.1, seed=3)
        b = corrupt_embeddings(array, fraction=0.1, seed=3)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).sum() == 8  # round(0.1 * 80)

    def test_different_seed_different_positions(self):
        array = np.ones((10, 8))
        a = corrupt_embeddings(array, fraction=0.1, seed=3)
        b = corrupt_embeddings(array, fraction=0.1, seed=4)
        assert not np.array_equal(np.isnan(a), np.isnan(b))

    def test_original_untouched(self):
        array = np.ones((4, 4))
        corrupt_embeddings(array, fraction=0.5, seed=0)
        assert np.isfinite(array).all()

    def test_at_least_one_entry_on_tiny_inputs(self):
        corrupted = corrupt_embeddings(np.ones((2, 2)), fraction=0.001, seed=0)
        assert np.isnan(corrupted).sum() == 1

    def test_fraction_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            corrupt_embeddings(np.ones((2, 2)), fraction=1.5)


class TestInjectors:
    def test_corruptor_triggers_integrity_error(self):
        source, target = _embeddings()
        matcher = EmbeddingCorruptor(fraction=0.1, seed=0).install(DInf())
        with pytest.raises(DataIntegrityError, match="non-finite"):
            matcher.match(source, target)

    def test_stall_delays_then_succeeds(self):
        import time

        source, target = _embeddings()
        matcher = KernelStall(seconds=0.05).install(DInf())
        start = time.perf_counter()
        result = matcher.match(source, target)
        assert time.perf_counter() - start >= 0.05
        assert len(result.pairs) == len(source)

    def test_forced_convergence_counts_calls(self):
        source, target = _embeddings()
        matcher = ForcedConvergenceFailure(failures=2).install(DInf())
        for _ in range(2):
            with pytest.raises(ConvergenceError, match="injected"):
                matcher.match(source, target)
        assert len(matcher.match(source, target).pairs) == len(source)

    def test_forced_convergence_clears_at_min_temperature(self):
        source, target = _embeddings()
        matcher = Sinkhorn(iterations=3, temperature=0.01)
        ForcedConvergenceFailure(min_temperature=0.05).install(matcher)
        with pytest.raises(ConvergenceError):
            matcher.match(source, target)
        matcher.temperature = 0.1  # what the supervisor's softening does
        assert len(matcher.match(source, target).pairs) == len(source)

    def test_allocation_failure_raises_memoryerror(self):
        source, target = _embeddings()
        matcher = AllocationFailure(nbytes=123).install(DInf())
        with pytest.raises(MemoryError, match="123"):
            matcher.match(source, target)

    def test_per_install_state_is_independent(self):
        # One injector instance drives two matchers without cross-talk.
        source, target = _embeddings()
        injector = ForcedConvergenceFailure(failures=1)
        first, second = injector.install(DInf()), injector.install(DInf())
        with pytest.raises(ConvergenceError):
            first.match(source, target)
        with pytest.raises(ConvergenceError):
            second.match(source, target)
        assert len(first.match(source, target).pairs) == len(source)

    def test_default_injectors_cover_all_modes(self):
        names = {type(i).__name__ for i in default_injectors()}
        assert names == {
            "EmbeddingCorruptor",
            "KernelStall",
            "ForcedConvergenceFailure",
            "AllocationFailure",
        }


class TestFaultyFactory:
    def test_only_listed_matchers_are_sabotaged(self):
        source, target = _embeddings()
        factory = faulty_factory({"Hun.": AllocationFailure()})
        with pytest.raises(MemoryError):
            factory("Hun.").match(source, target)
        clean = factory("DInf", metric="cosine")
        assert len(clean.match(source, target).pairs) == len(source)

    def test_multiple_injectors_compose(self):
        source, target = _embeddings()
        factory = faulty_factory(
            {"DInf": (ForcedConvergenceFailure(failures=1), KernelStall(seconds=0.01))}
        )
        matcher = factory("DInf")
        with pytest.raises(ConvergenceError):
            matcher.match(source, target)
        assert len(matcher.match(source, target).pairs) == len(source)

    def test_kwargs_forwarded_to_base_factory(self):
        factory = faulty_factory({})
        sink = factory("Sink.", iterations=7)
        assert sink.iterations == 7

    def test_engine_attachment_survives_injection(self):
        # run_experiment sets matcher.engine after factory creation; the
        # injected wrapper must not break that path.
        from repro.similarity.engine import SimilarityEngine

        source, target = _embeddings()
        factory = faulty_factory({"DInf": KernelStall(seconds=0.01)})
        matcher = factory("DInf")
        with SimilarityEngine() as engine:
            matcher.engine = engine
            result = matcher.match(source, target)
            assert len(result.pairs) == len(source)
            assert engine.stats.misses == 1  # S went through the engine


class TestKilledWorkerInjector:
    def test_raises_typed_crash_then_delegates(self):
        source, target = _embeddings()
        matcher = KilledWorkerInjector(failures=2).install(DInf())
        for call in (1, 2):
            with pytest.raises(WorkerCrashedError) as excinfo:
                matcher.match(source, target)
            assert excinfo.value.backend == "process"
            assert excinfo.value.exitcodes == (-signal.SIGKILL,)
        result = matcher.match(source, target)  # third call is clean
        assert len(result.pairs) == len(source)

    def test_custom_exitcode_carried(self):
        source, target = _embeddings()
        matcher = KilledWorkerInjector(failures=1, exitcode=-6).install(DInf())
        with pytest.raises(WorkerCrashedError) as excinfo:
            matcher.match(source, target)
        assert excinfo.value.exitcodes == (-6,)

    def test_failures_validated(self):
        with pytest.raises(ValueError, match="failures"):
            KilledWorkerInjector(failures=0)


class TestTornWriteInjector:
    def test_same_seed_same_tear_offsets(self):
        a = [TornWriteInjector(seed=5).tear_offset(n) for n in (10, 100, 1000)]
        b = [TornWriteInjector(seed=5).tear_offset(n) for n in (10, 100, 1000)]
        assert a == b
        assert all(1 <= offset <= n for offset, n in zip(a, (10, 100, 1000)))

    def test_fraction_and_offset_overrides(self):
        assert TornWriteInjector(fraction=0.5).tear_offset(100) == 50
        assert TornWriteInjector(offset=7).tear_offset(100) == 7
        assert TornWriteInjector(offset=7).tear_offset(3) == 3  # clamped

    def test_zero_byte_write_tears_nowhere(self):
        assert TornWriteInjector(seed=0).tear_offset(0) == 0

    def test_torn_write_leaves_only_the_prefix(self, tmp_path):
        path = tmp_path / "artifact.bin"
        payload = bytes(range(100))
        offset = TornWriteInjector(fraction=0.25).torn_write(path, payload)
        assert offset == 25
        assert path.read_bytes() == payload[:25]

    def test_tear_file_truncates_in_place(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(bytes(range(80)))
        size = TornWriteInjector(fraction=0.5).tear_file(path)
        assert size == 40
        assert path.read_bytes() == bytes(range(40))

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            TornWriteInjector(fraction=1.5)
        with pytest.raises(ValueError, match="offset"):
            TornWriteInjector(offset=-1)

    def test_kill_current_worker_is_importable_by_spawn_workers(self):
        # The payload must be a module-level function (a lambda cannot
        # cross a spawn pickle boundary); calling it here would, well,
        # kill the test process.
        from repro.testing import faults

        assert faults.kill_current_worker is kill_current_worker
        assert kill_current_worker.__module__ == "repro.testing.faults"
