"""Shared fixtures: small deterministic tasks, embeddings, and score matrices."""

import numpy as np
import pytest

from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
from repro.embedding.oracle import OracleConfig, OracleEncoder


@pytest.fixture(scope="session")
def small_task():
    """A tiny 1-to-1 alignment task (60 entities/side), session-cached."""
    config = KGPairConfig(
        num_entities=60, num_relations=5, average_degree=4.0,
        heterogeneity=0.1, name_edit_rate=0.1, name="tiny", seed=42,
    )
    return generate_aligned_pair(config)


@pytest.fixture(scope="session")
def medium_task():
    """A 200-entity 1-to-1 task for matcher-quality tests."""
    config = KGPairConfig(
        num_entities=200, num_relations=10, average_degree=4.0,
        heterogeneity=0.12, name_edit_rate=0.15, name="medium", seed=7,
    )
    return generate_aligned_pair(config)


@pytest.fixture(scope="session")
def oracle_embeddings(medium_task):
    """Good-quality oracle embeddings for ``medium_task``."""
    return OracleEncoder(OracleConfig(noise=0.3, seed=5)).encode(medium_task)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)


@pytest.fixture()
def random_scores(rng):
    """A 20x20 random score matrix in [0, 1)."""
    return rng.random((20, 20))


@pytest.fixture()
def identity_scores():
    """A score matrix whose diagonal is clearly the best match."""
    n = 15
    scores = np.full((n, n), 0.1)
    np.fill_diagonal(scores, 0.9)
    return scores
