"""Tests for the partial-sort top-k helpers."""

import numpy as np
import pytest

from repro.similarity.topk import top_k_indices, top_k_mean, top_k_values


class TestTopKValues:
    def test_sorted_descending(self, random_scores):
        top = top_k_values(random_scores, 5)
        assert np.all(np.diff(top, axis=1) <= 0)

    def test_matches_full_sort(self, random_scores):
        top = top_k_values(random_scores, 4)
        expected = np.sort(random_scores, axis=1)[:, ::-1][:, :4]
        np.testing.assert_allclose(top, expected)

    def test_axis_zero(self, random_scores):
        top = top_k_values(random_scores, 3, axis=0)
        expected = np.sort(random_scores.T, axis=1)[:, ::-1][:, :3]
        np.testing.assert_allclose(top, expected)

    def test_k_larger_than_axis_clamps(self, random_scores):
        top = top_k_values(random_scores, 100)
        assert top.shape == (20, 20)

    def test_k_one(self, random_scores):
        top = top_k_values(random_scores, 1)
        np.testing.assert_allclose(top[:, 0], random_scores.max(axis=1))

    def test_invalid_k_raises(self, random_scores):
        with pytest.raises(ValueError, match="k must be"):
            top_k_values(random_scores, 0)

    def test_invalid_axis_raises(self, random_scores):
        with pytest.raises(ValueError, match="axis"):
            top_k_values(random_scores, 2, axis=2)


class TestTopKIndices:
    def test_best_first(self, random_scores):
        idx = top_k_indices(random_scores, 3)
        np.testing.assert_array_equal(idx[:, 0], random_scores.argmax(axis=1))

    def test_indices_retrieve_values(self, random_scores):
        idx = top_k_indices(random_scores, 5)
        values = np.take_along_axis(random_scores, idx, axis=1)
        np.testing.assert_allclose(values, top_k_values(random_scores, 5))

    def test_axis_zero(self, random_scores):
        idx = top_k_indices(random_scores, 2, axis=0)
        np.testing.assert_array_equal(idx[:, 0], random_scores.argmax(axis=0))

    def test_indices_unique_per_row(self, random_scores):
        idx = top_k_indices(random_scores, 8)
        for row in idx:
            assert len(set(row.tolist())) == 8


class TestTopKMean:
    def test_matches_manual_mean(self, random_scores):
        got = top_k_mean(random_scores, 4)
        expected = np.sort(random_scores, axis=1)[:, -4:].mean(axis=1)
        np.testing.assert_allclose(got, expected)

    def test_k1_equals_max(self, random_scores):
        np.testing.assert_allclose(top_k_mean(random_scores, 1), random_scores.max(axis=1))

    def test_monotone_in_k(self, random_scores):
        # The mean of a larger top-k set can only decrease.
        means = [top_k_mean(random_scores, k) for k in (1, 3, 5, 10)]
        for smaller, larger in zip(means, means[1:]):
            assert np.all(larger <= smaller + 1e-12)
