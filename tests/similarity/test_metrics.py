"""Tests for the similarity metrics."""

import numpy as np
import pytest

from repro.similarity.metrics import (
    SIMILARITY_METRICS,
    cosine_similarity,
    euclidean_similarity,
    manhattan_similarity,
    similarity_matrix,
)


class TestCosine:
    def test_identical_vectors_score_one(self, rng):
        x = rng.normal(size=(5, 8))
        sim = cosine_similarity(x, x)
        np.testing.assert_allclose(np.diag(sim), 1.0, atol=1e-12)

    def test_orthogonal_vectors_score_zero(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(0.0)

    def test_opposite_vectors_score_minus_one(self):
        a = np.array([[1.0, 2.0]])
        assert cosine_similarity(a, -a)[0, 0] == pytest.approx(-1.0)

    def test_range_bounded(self, rng):
        sim = cosine_similarity(rng.normal(size=(10, 6)), rng.normal(size=(12, 6)))
        assert sim.min() >= -1.0 - 1e-12
        assert sim.max() <= 1.0 + 1e-12

    def test_scale_invariance(self, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(6, 5))
        np.testing.assert_allclose(
            cosine_similarity(a, b), cosine_similarity(3.0 * a, 0.5 * b), atol=1e-12
        )

    def test_zero_vector_yields_zero_similarity(self):
        a = np.zeros((1, 3))
        b = np.array([[1.0, 0.0, 0.0]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(0.0)

    def test_shape(self, rng):
        sim = cosine_similarity(rng.normal(size=(3, 4)), rng.normal(size=(7, 4)))
        assert sim.shape == (3, 7)

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="embedding dimension"):
            cosine_similarity(rng.normal(size=(3, 4)), rng.normal(size=(3, 5)))


class TestEuclidean:
    def test_self_distance_zero(self, rng):
        x = rng.normal(size=(6, 4))
        np.testing.assert_allclose(np.diag(euclidean_similarity(x, x)), 0.0, atol=1e-6)

    def test_matches_direct_computation(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        expected = -np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        np.testing.assert_allclose(euclidean_similarity(a, b), expected, atol=1e-9)

    def test_higher_means_closer(self):
        query = np.array([[0.0, 0.0]])
        targets = np.array([[1.0, 0.0], [5.0, 0.0]])
        sim = euclidean_similarity(query, targets)
        assert sim[0, 0] > sim[0, 1]

    def test_never_positive(self, rng):
        sim = euclidean_similarity(rng.normal(size=(4, 3)), rng.normal(size=(4, 3)))
        assert sim.max() <= 0.0


class TestManhattan:
    def test_matches_direct_computation(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(6, 3))
        expected = -np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(manhattan_similarity(a, b), expected, atol=1e-12)

    def test_chunking_consistent(self, rng):
        # Large enough to trigger the chunked path.
        a = rng.normal(size=(300, 64))
        b = rng.normal(size=(200, 64))
        expected = -np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(manhattan_similarity(a, b), expected, atol=1e-9)

    def test_self_distance_zero(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(np.diag(manhattan_similarity(x, x)), 0.0, atol=1e-12)


class TestSimilarityMatrix:
    def test_registry_contains_all_metrics(self):
        assert set(SIMILARITY_METRICS) == {"cosine", "euclidean", "manhattan"}

    @pytest.mark.parametrize("metric", ["cosine", "euclidean", "manhattan"])
    def test_dispatch(self, metric, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(5, 3))
        expected = SIMILARITY_METRICS[metric](a, b)
        np.testing.assert_array_equal(similarity_matrix(a, b, metric=metric), expected)

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(ValueError, match="unknown similarity metric"):
            similarity_matrix(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), "chebyshev")

    def test_all_metrics_rank_gold_first_on_clean_data(self, rng):
        # All three metrics agree when targets are noisy copies of sources.
        source = rng.normal(size=(10, 16))
        target = source + 0.01 * rng.normal(size=(10, 16))
        for metric in SIMILARITY_METRICS:
            sim = similarity_matrix(source, target, metric=metric)
            np.testing.assert_array_equal(sim.argmax(axis=1), np.arange(10))
