"""Pair-stability of the rowwise scorer — the serving determinism base.

``rowwise_scores`` must give every (query, target) pair a value that is
a pure function of that pair: invariant to batching, to which other
targets share the call, and bitwise-consistent with what the serving
merge recomputes.  The full-matrix BLAS kernels explicitly do NOT have
this property; these tests pin that the rowwise path does.
"""

import numpy as np
import pytest

from repro.similarity.engine import SimilarityEngine
from repro.similarity.metrics import rowwise_scores, similarity_matrix

METRICS = ("cosine", "euclidean", "manhattan")


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


class TestRowwiseScores:
    @pytest.mark.parametrize("metric", METRICS)
    def test_target_subset_invariance(self, metric, rng):
        query = rng.normal(size=8)
        targets = rng.normal(size=(30, 8))
        full = rowwise_scores(metric, query, targets)
        subset = rng.choice(30, size=11, replace=False)
        np.testing.assert_array_equal(
            rowwise_scores(metric, query, targets[subset]), full[subset]
        )

    @pytest.mark.parametrize("metric", METRICS)
    def test_close_to_full_matrix_kernels(self, metric, rng):
        queries = rng.normal(size=(5, 8))
        targets = rng.normal(size=(12, 8))
        rowwise = np.stack(
            [rowwise_scores(metric, query, targets) for query in queries]
        )
        np.testing.assert_allclose(
            rowwise, similarity_matrix(queries, targets, metric=metric),
            atol=1e-9,
        )

    def test_zero_vectors_do_not_raise(self):
        scores = rowwise_scores("cosine", np.zeros(4), np.zeros((3, 4)))
        assert np.all(np.isfinite(scores))

    def test_input_validation(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            rowwise_scores("cosine", np.ones((2, 3)), np.ones((4, 3)))
        with pytest.raises(ValueError, match="targets"):
            rowwise_scores("cosine", np.ones(3), np.ones((4, 5)))
        with pytest.raises(ValueError, match="unknown similarity metric"):
            rowwise_scores("hamming", np.ones(3), np.ones((4, 3)))


class TestEngineRowwiseTopK:
    def test_batched_equals_single_rows_bitwise(self, rng):
        queries = rng.normal(size=(6, 8))
        targets = rng.normal(size=(40, 8))
        with SimilarityEngine() as engine:
            batched = engine.rowwise_top_k(queries, targets, k=5)
            for row in range(6):
                single = engine.rowwise_top_k(queries[row : row + 1], targets, k=5)
                np.testing.assert_array_equal(single[0][0], batched[row][0])
                np.testing.assert_array_equal(single[0][1], batched[row][1])

    def test_ties_break_by_ascending_target(self):
        queries = np.ones((1, 3))
        targets = np.ones((4, 3))  # all scores identical
        with SimilarityEngine() as engine:
            ids, scores = engine.rowwise_top_k(queries, targets, k=3)[0]
        np.testing.assert_array_equal(ids, [0, 1, 2])
        assert len(set(scores)) == 1

    def test_k_is_clamped_and_validated(self, rng):
        queries = rng.normal(size=(2, 4))
        targets = rng.normal(size=(3, 4))
        with SimilarityEngine() as engine:
            rows = engine.rowwise_top_k(queries, targets, k=10)
            assert all(len(ids) == 3 for ids, _ in rows)
            with pytest.raises(ValueError, match="k must be"):
                engine.rowwise_top_k(queries, targets, k=0)
