"""Sharded similarity: planner partitioning and backend determinism.

The contract under test is the one the whole out-of-core path leans on:
the shard grid is a pure function of the problem shape and the policy
(never the worker count), every shard owns a disjoint output tile, and
the thread and process backends produce *bitwise-identical* score
matrices at every worker count.
"""

import numpy as np
import pytest

from repro.core.greedy import Greedy
from repro.similarity.engine import SimilarityEngine
from repro.similarity.sharded import score_shard
from repro.utils.parallel import SHARD_BUDGET_FACTOR, Shard, plan_shards


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPlanShards:
    def test_grid_tiles_the_matrix_exactly_once(self):
        plan = plan_shards(23, 17, chunk_rows=5, chunk_cols=4)
        hits = np.zeros((23, 17), dtype=int)
        for shard in plan:
            hits[shard.rows, shard.cols] += 1
        assert (hits == 1).all()

    def test_memory_budget_bounds_shard_elems(self):
        budget = 4096
        plan = plan_shards(100, 100, memory_budget=budget, itemsize=8)
        limit = budget // (SHARD_BUDGET_FACTOR * 8)
        assert len(plan) > 1
        for shard in plan:
            assert shard.elems <= limit

    def test_grid_is_shape_and_policy_only(self):
        # Same shape + same policy => same grid, computed twice.
        first = plan_shards(50, 30, memory_budget=10_000)
        second = plan_shards(50, 30, memory_budget=10_000)
        assert first == second

    def test_empty_problems_plan_nothing(self):
        assert plan_shards(0, 10) == []
        assert plan_shards(10, 0) == []

    def test_negative_shapes_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 5)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(5, 5, memory_budget=0)

    def test_score_shard_matches_dense_tile(self, rng):
        source = rng.normal(size=(12, 6))
        target = rng.normal(size=(9, 6))
        from repro.similarity.metrics import similarity_matrix

        dense = similarity_matrix(source, target)
        shard = Shard(slice(3, 9), slice(2, 7))
        np.testing.assert_array_equal(
            score_shard(source, target, "cosine", shard), dense[3:9, 2:7]
        )


class TestBackendDeterminism:
    """thread vs process x 1/2/4 workers: one canonical score matrix."""

    SIZE = 60

    @pytest.fixture
    def problem(self, rng):
        source = rng.normal(size=(self.SIZE, 8))
        target = rng.normal(size=(self.SIZE, 8))
        return source, target

    def _scores(self, problem, backend, workers):
        source, target = problem
        with SimilarityEngine(
            workers=workers,
            backend=backend,
            memory_budget=SHARD_BUDGET_FACTOR * 8 * 500,  # ~500-elem shards
            process_threshold=1,
            cache=False,
        ) as engine:
            scores = engine.similarity(source, target)
            info = engine.resource_info()
        return scores, info

    def test_bitwise_identical_across_backends_and_workers(self, problem):
        reference, reference_info = self._scores(problem, "thread", 1)
        assert reference_info["shards"] > 1  # the budget forced a real grid
        for backend in ("thread", "process"):
            for workers in (1, 2, 4):
                scores, info = self._scores(problem, backend, workers)
                assert np.array_equal(scores, reference), (backend, workers)
                assert info["shards"] == reference_info["shards"]

    def test_match_results_identical_across_backends(self, problem):
        source, target = problem
        results = []
        for backend in ("thread", "process"):
            with SimilarityEngine(
                workers=2,
                backend=backend,
                memory_budget=SHARD_BUDGET_FACTOR * 8 * 500,
                process_threshold=1,
                cache=False,
            ) as engine:
                scores = engine.similarity(source, target)
            results.append(Greedy().match_scores(scores))
        np.testing.assert_array_equal(results[0].pairs, results[1].pairs)
        np.testing.assert_array_equal(results[0].scores, results[1].scores)

    def test_sharded_path_equals_legacy_dense_path(self, problem):
        source, target = problem
        with SimilarityEngine(workers=1, cache=False) as engine:
            legacy = engine.similarity(source, target)
        sharded, _ = self._scores(problem, "thread", 2)
        np.testing.assert_array_equal(sharded, legacy)

    def test_process_backend_reports_executed_backend(self, problem):
        _, info = self._scores(problem, "process", 2)
        assert info["backend"] == "process"
        assert info["workers"] == 2

    def test_small_problems_stay_on_threads(self, rng):
        # Below process_threshold the process backend quietly runs the
        # thread path — the executed backend is what the ledger records.
        source = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 4))
        with SimilarityEngine(
            workers=2, backend="process", memory_budget=10**6, cache=False
        ) as engine:
            engine.similarity(source, target)
            assert engine.resource_info()["backend"] == "thread"


class TestResourceInfo:
    def test_defaults_before_any_compute(self):
        with SimilarityEngine(workers=3) as engine:
            assert engine.resource_info() == {
                "backend": "thread",
                "workers": 3,
                "shards": 0,
            }

    def test_legacy_path_counts_row_chunks(self, rng):
        with SimilarityEngine(workers=1, chunk_rows=10, cache=False) as engine:
            engine.similarity(rng.normal(size=(25, 4)), rng.normal(size=(8, 4)))
            info = engine.resource_info()
        assert info["backend"] == "thread"
        assert info["shards"] == 3
