"""Tests for the parallel similarity engine and its score-matrix cache."""

import numpy as np
import pytest

from repro.core.registry import PAPER_MATCHERS, create_matcher
from repro.similarity.engine import SimilarityEngine, fingerprint
from repro.similarity.metrics import similarity_matrix


@pytest.fixture()
def embeddings(rng):
    return rng.normal(size=(64, 16)), rng.normal(size=(48, 16))


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, rng):
        a = rng.normal(size=(5, 3))
        assert fingerprint(a) == fingerprint(a.copy())
        b = a.copy()
        b[0, 0] += 1.0
        assert fingerprint(a) != fingerprint(b)

    def test_shape_sensitive(self):
        flat = np.arange(12.0)
        assert fingerprint(flat.reshape(3, 4)) != fingerprint(flat.reshape(4, 3))

    def test_noncontiguous_input(self, rng):
        a = rng.normal(size=(8, 6))
        assert fingerprint(a[:, ::2]) == fingerprint(np.ascontiguousarray(a[:, ::2]))


class TestEngineResults:
    @pytest.mark.parametrize("metric", ["cosine", "euclidean", "manhattan"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_default_policy_bitwise_equals_serial(self, embeddings, metric, workers):
        # With the default chunk policy this problem is a single chunk, so
        # the engine result is bitwise-identical to similarity_matrix.
        source, target = embeddings
        with SimilarityEngine(workers=workers) as engine:
            scores = engine.similarity(source, target, metric=metric)
        np.testing.assert_array_equal(
            scores, similarity_matrix(source, target, metric=metric)
        )

    @pytest.mark.parametrize("metric", ["cosine", "euclidean", "manhattan"])
    @pytest.mark.parametrize("chunk_rows", [1, 7, 13])
    def test_worker_count_invisible_on_fixed_grid(self, embeddings, metric, chunk_rows):
        source, target = embeddings
        results = []
        for workers in (1, 2, 4):
            with SimilarityEngine(workers=workers, chunk_rows=chunk_rows) as engine:
                results.append(engine.similarity(source, target, metric=metric))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])
        np.testing.assert_allclose(
            results[0], similarity_matrix(source, target, metric=metric), atol=1e-12
        )

    def test_float32_mode(self, embeddings):
        source, target = embeddings
        with SimilarityEngine(dtype="float32", workers=2) as engine:
            scores = engine.similarity(source, target)
        assert scores.dtype == np.float32
        np.testing.assert_allclose(
            scores, similarity_matrix(source, target), atol=1e-5
        )

    def test_invalid_settings(self):
        with pytest.raises(ValueError, match="dtype"):
            SimilarityEngine(dtype=np.int32)
        with pytest.raises(ValueError, match="cache_size"):
            SimilarityEngine(cache_size=0)
        with pytest.raises(ValueError, match="chunk_rows"):
            SimilarityEngine(chunk_rows=0)
        with pytest.raises(ValueError, match="workers"):
            SimilarityEngine(workers=-1)

    def test_unknown_metric(self, embeddings):
        source, target = embeddings
        with SimilarityEngine() as engine:
            with pytest.raises(ValueError, match="unknown similarity metric"):
                engine.similarity(source, target, metric="chebyshev")


class TestEngineCache:
    def test_hit_and_miss_counters(self, embeddings):
        source, target = embeddings
        with SimilarityEngine() as engine:
            first = engine.similarity(source, target)
            second = engine.similarity(source, target)
            assert second is first
            assert engine.stats.hits == 1
            assert engine.stats.misses == 1
            assert engine.stats.computations == 1

    def test_key_includes_metric_and_inputs(self, embeddings, rng):
        source, target = embeddings
        with SimilarityEngine() as engine:
            engine.similarity(source, target, metric="cosine")
            engine.similarity(source, target, metric="euclidean")
            engine.similarity(rng.normal(size=source.shape), target)
            assert engine.stats.computations == 3
            assert engine.stats.hits == 0

    def test_cached_matrix_is_readonly(self, embeddings):
        source, target = embeddings
        with SimilarityEngine() as engine:
            scores = engine.similarity(source, target)
            with pytest.raises((ValueError, RuntimeError)):
                scores[0, 0] = 42.0

    def test_lru_eviction(self, embeddings, rng):
        source, target = embeddings
        with SimilarityEngine(cache_size=1) as engine:
            engine.similarity(source, target)
            engine.similarity(rng.normal(size=source.shape), target)
            assert engine.stats.evictions == 1
            engine.similarity(source, target)  # evicted -> recompute
            assert engine.stats.computations == 3

    def test_cache_disabled(self, embeddings):
        source, target = embeddings
        with SimilarityEngine(cache=False) as engine:
            first = engine.similarity(source, target)
            second = engine.similarity(source, target)
            assert first is not second
            assert engine.stats.hits == 0
            assert engine.stats.computations == 2
            assert engine.cache_info()["entries"] == 0
            # Uncached results stay writable: the caller owns them.
            first[0, 0] = 0.0

    def test_clear_cache(self, embeddings):
        source, target = embeddings
        with SimilarityEngine() as engine:
            engine.similarity(source, target)
            engine.clear_cache()
            assert engine.cache_info()["entries"] == 0
            engine.similarity(source, target)
            assert engine.stats.computations == 2


class TestEngineChunkedEntryPoints:
    def test_top_k_matches_dense(self, embeddings):
        from repro.similarity.topk import top_k_values

        source, target = embeddings
        with SimilarityEngine(workers=2) as engine:
            _, scores = engine.top_k(source, target, k=5, chunk_size=7)
        dense = similarity_matrix(source, target)
        np.testing.assert_allclose(scores, top_k_values(dense, 5), atol=1e-12)

    def test_csls_top_k_matches_dense(self, embeddings):
        from repro.core.csls import csls_scores
        from repro.similarity.topk import top_k_values

        source, target = embeddings
        with SimilarityEngine(workers=2) as engine:
            _, scores = engine.csls_top_k(source, target, k=3, csls_k=2, chunk_size=11)
        dense = csls_scores(similarity_matrix(source, target), k=2)
        np.testing.assert_allclose(scores, top_k_values(dense, 3), atol=1e-9)

    def test_top_k_candidates_matches_streamed_kernel(self, embeddings):
        from repro.similarity.chunked import chunked_top_k

        source, target = embeddings
        with SimilarityEngine(cache=False) as engine:
            cands = engine.top_k_candidates(source, target, k=5)
        ids, scores = chunked_top_k(source, target, 5)
        np.testing.assert_array_equal(cands.indices.reshape(64, 5), ids)
        np.testing.assert_allclose(cands.scores.reshape(64, 5), scores)
        assert engine.stats.hits == 0

    def test_top_k_candidates_served_from_cache(self, embeddings):
        source, target = embeddings
        with SimilarityEngine() as engine:
            dense = engine.similarity(source, target)
            cands = engine.top_k_candidates(source, target, k=5)
            assert engine.stats.hits == 1
        from repro.similarity.topk import top_k_values

        np.testing.assert_allclose(
            cands.scores.reshape(64, 5), top_k_values(dense, 5)
        )

    def test_top_k_candidates_clamps_k(self, embeddings):
        source, target = embeddings
        with SimilarityEngine(cache=False) as engine:
            cands = engine.top_k_candidates(source, target, k=10_000)
        assert cands.k_max == target.shape[0]
        with SimilarityEngine(cache=False) as engine, pytest.raises(
            ValueError, match="k must be"
        ):
            engine.top_k_candidates(source, target, k=0)


class TestSharedEngineSweep:
    """Tier-1-safe benchmark smoke: the cross-matcher cache contract.

    Small n, no timing assertions — regressions in the engine's sharing
    behaviour are caught structurally, without wall-clock flakiness.
    """

    def test_seven_matcher_sweep_computes_similarity_once(self, rng):
        source = rng.normal(size=(40, 12))
        target = rng.normal(size=(40, 12))
        baseline = {
            name: create_matcher(name).match(source, target).as_set()
            for name in PAPER_MATCHERS
        }
        with SimilarityEngine(workers=2) as engine:
            for name in PAPER_MATCHERS:
                matcher = create_matcher(name)
                matcher.engine = engine
                result = matcher.match(source, target)
                # Sharing one S must not change any matcher's decisions.
                assert result.as_set() == baseline[name], name
            # The base similarity matrix was computed exactly once; every
            # other matcher was served from the cache.
            assert engine.stats.computations == 1
            assert engine.stats.misses == 1
            assert engine.stats.hits == len(PAPER_MATCHERS) - 1

    @pytest.mark.parametrize("workers", [1, 4])
    def test_parallel_sweep_matches_serial_exactly(self, rng, workers):
        source = rng.normal(size=(33, 8))
        target = rng.normal(size=(29, 8))
        with SimilarityEngine(workers=workers, chunk_rows=5) as engine:
            parallel = engine.similarity(source, target)
        with SimilarityEngine(workers=1, chunk_rows=5) as engine:
            serial = engine.similarity(source, target)
        np.testing.assert_array_equal(parallel, serial)


class TestRunnerIntegration:
    def test_run_experiment_shares_engine_across_matchers(self, rng):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            preset="dbp15k/zh_en",
            matchers=("DInf", "CSLS", "Sink."),
            scale=0.02,
        )
        with SimilarityEngine(workers=2) as engine:
            result = run_experiment(config, engine=engine)
            # One computation serves the diagnostics pass plus every matcher.
            assert engine.stats.computations == 1
            assert engine.stats.hits == len(config.matchers)
        assert set(result.runs) == set(config.matchers)
