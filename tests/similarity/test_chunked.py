"""Tests for chunked similarity computation."""

import numpy as np
import pytest

from repro.core.csls import csls_scores
from repro.similarity.chunked import chunked_argmax, chunked_csls_top_k, chunked_top_k
from repro.similarity.metrics import similarity_matrix
from repro.similarity.topk import top_k_indices, top_k_values


@pytest.fixture()
def embeddings(rng):
    return rng.normal(size=(57, 12)), rng.normal(size=(41, 12))


class TestChunkedTopK:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1024])
    def test_matches_dense_computation(self, embeddings, chunk_size):
        source, target = embeddings
        indices, scores = chunked_top_k(source, target, k=5, chunk_size=chunk_size)
        dense = similarity_matrix(source, target)
        np.testing.assert_allclose(scores, top_k_values(dense, 5), atol=1e-12)
        np.testing.assert_allclose(
            np.take_along_axis(dense, indices, axis=1), top_k_values(dense, 5),
            atol=1e-12,
        )

    def test_k_clamped_to_targets(self, embeddings):
        source, target = embeddings
        indices, _ = chunked_top_k(source, target, k=100)
        assert indices.shape == (57, 41)

    def test_best_first(self, embeddings):
        source, target = embeddings
        _, scores = chunked_top_k(source, target, k=4, chunk_size=13)
        assert np.all(np.diff(scores, axis=1) <= 1e-12)

    def test_invalid_params(self, embeddings):
        source, target = embeddings
        with pytest.raises(ValueError, match="k must be"):
            chunked_top_k(source, target, k=0)
        with pytest.raises(ValueError, match="chunk_size"):
            chunked_top_k(source, target, k=1, chunk_size=0)

    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_metric_forwarded(self, embeddings, metric):
        source, target = embeddings
        indices, _ = chunked_top_k(source, target, k=1, metric=metric)
        dense = similarity_matrix(source, target, metric=metric)
        np.testing.assert_array_equal(indices[:, 0], dense.argmax(axis=1))


class TestChunkedArgmax:
    def test_equals_dense_argmax(self, embeddings):
        source, target = embeddings
        indices, scores = chunked_argmax(source, target, chunk_size=10)
        dense = similarity_matrix(source, target)
        np.testing.assert_array_equal(indices, dense.argmax(axis=1))
        np.testing.assert_allclose(scores, dense.max(axis=1), atol=1e-12)


class TestChunkedCsls:
    @pytest.mark.parametrize("chunk_size", [5, 19, 1024])
    @pytest.mark.parametrize("csls_k", [1, 3])
    def test_matches_dense_csls(self, embeddings, chunk_size, csls_k):
        source, target = embeddings
        indices, scores = chunked_csls_top_k(
            source, target, k=4, csls_k=csls_k, chunk_size=chunk_size
        )
        dense = csls_scores(similarity_matrix(source, target), k=csls_k)
        np.testing.assert_allclose(scores, top_k_values(dense, 4), atol=1e-9)
        np.testing.assert_array_equal(
            indices[:, 0], top_k_indices(dense, 1)[:, 0]
        )

    def test_greedy_decisions_match_csls_matcher(self, embeddings):
        from repro.core.csls import CSLS

        source, target = embeddings
        indices, _ = chunked_csls_top_k(source, target, k=1, csls_k=1, chunk_size=8)
        result = CSLS(k=1).match(source, target)
        np.testing.assert_array_equal(indices[:, 0], result.pairs[:, 1])

    def test_invalid_params(self, embeddings):
        source, target = embeddings
        with pytest.raises(ValueError, match="k and csls_k"):
            chunked_csls_top_k(source, target, k=0)
