"""Prometheus exposition: rendering rules plus the byte-stable golden.

The golden pins the full document for a deterministically seeded
registry — every section type, name mangling, float formatting, and the
cumulative bucket scheme.  Regenerate after an intentional format
change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_exposition.py
"""

import os
from pathlib import Path

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    format_value,
    metric_name,
    parse_histograms,
    render,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "goldens" / "registry.prom"


def seeded_registry() -> MetricsRegistry:
    """One registry with every metric type, seeded deterministically."""
    registry = MetricsRegistry()
    registry.inc("engine.cache.hits", 42)
    registry.inc("serve.queries", 1000)
    registry.inc("events.sink_dropped")
    registry.gauge("serve.version", 7)
    registry.gauge("serve.slo.burn_rate.300s", 0.25)
    registry.add_time("engine.similarity", 1.5, count=3)
    hist = registry.histogram("serve.request.seconds")
    for value, repeats in ((0.00015, 5), (0.0009, 20), (0.0031, 60),
                           (0.012, 10), (0.9, 4), (200.0, 1)):
        for _ in range(repeats):
            hist.observe(value)
    registry.histogram("serve.batch.size", bounds=[1.0, 2.0, 4.0]).observe(3.0)
    return registry


class TestNamesAndValues:
    def test_dotted_names_are_mangled_and_prefixed(self):
        assert metric_name("serve.request.seconds") == (
            "repro_serve_request_seconds"
        )
        assert metric_name("a-b/c d") == "repro_a_b_c_d"

    def test_format_value_is_canonical(self):
        assert format_value(1.0) == "1"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_content_type_is_the_prometheus_text_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestRender:
    def test_identical_state_renders_byte_identical_documents(self):
        assert render(seeded_registry()) == render(seeded_registry())

    def test_insertion_order_does_not_leak_into_the_document(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.inc("a")
        forward.inc("b")
        backward.inc("b")
        backward.inc("a")
        assert render(forward) == render(backward)

    def test_histogram_buckets_are_cumulative_and_end_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=[1.0, 2.0])
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        text = render(registry)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_count 3" in text

    def test_matches_the_committed_golden(self):
        payload = render(seeded_registry()).encode("utf-8")
        if os.environ.get("REPRO_UPDATE_GOLDENS"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_bytes(payload)
            return
        assert GOLDEN.exists(), (
            f"missing golden {GOLDEN}; run with REPRO_UPDATE_GOLDENS=1"
        )
        assert payload == GOLDEN.read_bytes()


class TestParseHistograms:
    def test_round_trips_our_own_rendering(self):
        registry = seeded_registry()
        parsed = parse_histograms(render(registry))
        series = parsed["repro_serve_request_seconds"]
        snap = registry.snapshot()["histograms"]["serve.request.seconds"]
        assert series["count"] == snap["count"]
        assert series["sum"] == pytest.approx(snap["sum"])
        assert series["buckets"][-1] == (float("inf"), snap["count"])
        # Cumulative counts are non-decreasing.
        counts = [count for _, count in series["buckets"]]
        assert counts == sorted(counts)

    def test_ignores_non_histogram_series(self):
        parsed = parse_histograms(render(seeded_registry()))
        assert "repro_engine_cache_hits_total" not in parsed
        assert "repro_serve_version" not in parsed
