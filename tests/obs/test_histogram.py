"""Unit tests for the streaming log-bucketed histogram."""

import math
import threading

import pytest

from repro.obs.histogram import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    bucket_width_at,
    quantile_from_counts,
    quantile_from_cumulative,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


class TestBounds:
    def test_default_bounds_double_from_a_tenth_of_a_millisecond(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == 1e-4
        assert len(DEFAULT_LATENCY_BOUNDS) == 21
        for lower, upper in zip(DEFAULT_LATENCY_BOUNDS,
                                DEFAULT_LATENCY_BOUNDS[1:]):
            assert upper == 2.0 * lower

    def test_invalid_bounds_are_rejected(self):
        for bad in ([], [0.0], [-1.0], [1.0, 1.0], [2.0, 1.0],
                    [float("nan")], [float("inf")]):
            with pytest.raises(ValueError):
                Histogram(bad)

    def test_non_finite_observations_are_rejected(self):
        hist = Histogram()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                hist.observe(bad)


class TestObserve:
    def test_le_semantics_a_bound_value_lands_in_its_own_bucket(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(1.0)   # le="1.0" bucket
        hist.observe(1.5)   # le="2.0" bucket
        hist.observe(9.0)   # overflow
        assert hist.snapshot()["counts"] == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(11.5)

    def test_bucket_bounds_bracket_the_value(self):
        hist = Histogram()
        for value in (1e-5, 3e-4, 0.01, 7.0, 500.0):
            lower, upper = hist.bucket_bounds(value)
            assert lower < value <= upper or (lower == 0.0 and value <= upper)

    def test_zero_and_negative_values_count_in_the_first_bucket(self):
        hist = Histogram([1.0])
        hist.observe(0.0)
        hist.observe(-3.0)
        assert hist.snapshot()["counts"] == [2, 0]


class TestMerge:
    def test_merge_adds_counts_and_sums(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.snapshot()["counts"] == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(7.0)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram([1.0]).merge(Histogram([2.0]))

    def test_copy_is_independent(self):
        hist = Histogram([1.0])
        hist.observe(0.5)
        clone = hist.copy()
        clone.observe(0.5)
        assert hist.count == 1
        assert clone.count == 2


class TestQuantiles:
    def test_empty_histogram_reports_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_quantile_lands_inside_the_populated_bucket(self):
        hist = Histogram()
        for _ in range(100):
            hist.observe(0.003)
        lower, upper = hist.bucket_bounds(0.003)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert lower <= hist.quantile(q) <= upper

    def test_quantile_is_monotone_in_q(self):
        hist = Histogram()
        for value in (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0):
            for _ in range(5):
                hist.observe(value)
        estimates = [hist.quantile(q / 100.0) for q in range(0, 101, 5)]
        assert estimates == sorted(estimates)

    def test_overflow_reports_the_last_finite_bound(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_out_of_range_q_is_rejected(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_cumulative_form_matches_per_bucket_form(self):
        bounds = [1.0, 2.0, 4.0]
        counts = [3, 5, 0, 2]
        cumulative, running = [], 0
        for bound, count in zip(bounds, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), running + counts[-1]))
        for q in (0.1, 0.5, 0.9, 0.99):
            assert quantile_from_cumulative(cumulative, q) == pytest.approx(
                quantile_from_counts(bounds, counts, sum(counts), q)
            )

    def test_bucket_width_doubles_with_the_buckets(self):
        assert bucket_width_at(DEFAULT_LATENCY_BOUNDS, 5e-5) == 1e-4
        assert bucket_width_at([1.0, 2.0, 4.0], 3.0) == 2.0
        # Past the last bound: the last finite bucket's width.
        assert bucket_width_at([1.0, 2.0, 4.0], 99.0) == 2.0


class TestThreadSafety:
    def test_concurrent_observes_conserve_count_and_sum(self):
        hist = Histogram()

        def hammer():
            for _ in range(1000):
                hist.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4000
        assert math.isclose(hist.sum, 4.0)


class TestRegistryIntegration:
    def test_histogram_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.histogram("h")
        assert registry.histogram("h") is first

    def test_bounds_mismatch_on_existing_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=[1.0])
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("h", bounds=[2.0])

    def test_observe_reaches_the_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.003)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.003)
        assert snap["bounds"] == list(DEFAULT_LATENCY_BOUNDS)
