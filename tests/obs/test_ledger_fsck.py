"""Ledger WAL durability: torn-tail recovery, fsck, durable appends.

An interrupted append can tear at most the final line, so the tolerant
reader recovers every complete record and reports the tail; a bad line
*followed by* valid records was never an interrupted append, so it is
mid-file corruption and always raises.  ``fsck --repair`` truncates a
torn tail into a ``.bak`` sidecar and never touches anything else.
"""

import json

import pytest

from repro.obs.ledger import RunLedger, build_record, cell_key
from repro.testing.faults import TornWriteInjector

pytestmark = pytest.mark.obs


def _record(**overrides):
    defaults = dict(
        fingerprint="abc123",
        preset="dbp15k/zh_en",
        regime="R",
        task="dbp15k/zh_en",
        matcher="CSLS",
        seed=0,
        scale=1.0,
        metric="cosine",
        status="ok",
        metrics={"precision": 0.7, "recall": 0.7, "f1": 0.7},
        ranking={"hits@1": 0.6, "mrr": 0.65},
    )
    defaults.update(overrides)
    return build_record(**defaults)


def _seeded_ledger(tmp_path, matchers=("DInf", "CSLS"), durable=False):
    ledger = RunLedger(tmp_path / "runs.jsonl", durable=durable)
    for matcher in matchers:
        ledger.append(_record(matcher=matcher))
    return ledger


def _tear_tail(ledger, keep_bytes=20):
    """Append a torn (truncated mid-record) final line; return its bytes."""
    torn = json.dumps(_record(matcher="Hun.")).encode()[:keep_bytes]
    with ledger.path.open("ab") as handle:
        handle.write(torn)
    return torn


class TestDurableAppend:
    def test_durable_default_and_per_append_override(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl", durable=True)
        ledger.append(_record(matcher="DInf"))
        ledger.append(_record(matcher="CSLS"), durable=False)
        assert [r["matcher"] for r in ledger.records()] == ["DInf", "CSLS"]

    def test_durable_append_creates_parent_directories(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "runs.jsonl", durable=True)
        ledger.append(_record())
        assert len(ledger.records()) == 1


class TestTornTail:
    def test_scan_recovers_complete_records_and_reports_tail(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        torn = _tear_tail(ledger)
        scan = ledger.scan()
        assert [r["matcher"] for r in scan.records] == ["DInf", "CSLS"]
        assert scan.torn is not None
        assert scan.torn.lineno == 3
        assert scan.torn.nbytes == len(torn)
        assert "torn final line" in scan.torn.reason
        raw = ledger.path.read_bytes()
        assert raw[scan.torn.byte_offset :] == torn

    def test_strict_read_raises_with_recoverable_count_and_hint(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        _tear_tail(ledger)
        with pytest.raises(ValueError) as excinfo:
            ledger.records()
        message = str(excinfo.value)
        assert f"{ledger.path}:3" in message
        assert "2 complete records recoverable" in message
        assert "repro runs fsck --repair" in message

    def test_tolerant_read_returns_complete_records(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        _tear_tail(ledger)
        assert len(ledger.records(strict=False)) == 2
        cells = ledger.latest_cells(strict=False)
        assert {key[2] for key in cells} == {"DInf", "CSLS"}

    def test_blank_padded_tail_is_reported_as_torn(self, tmp_path):
        ledger = _seeded_ledger(tmp_path, matchers=("DInf",))
        with ledger.path.open("ab") as handle:
            handle.write(b" \x00\x00   ")
        scan = ledger.scan()
        assert len(scan.records) == 1
        assert scan.torn is not None
        assert "blank-padded" in scan.torn.reason

    def test_unterminated_but_valid_final_line_is_complete(self, tmp_path):
        ledger = _seeded_ledger(tmp_path, matchers=("DInf",))
        record = _record(matcher="CSLS")
        with ledger.path.open("ab") as handle:
            handle.write(json.dumps(record).encode())  # no trailing newline
        scan = ledger.scan()
        assert [r["matcher"] for r in scan.records] == ["DInf", "CSLS"]
        assert scan.torn is None

    def test_valid_json_failing_validation_counts_as_torn(self, tmp_path):
        ledger = _seeded_ledger(tmp_path, matchers=("DInf",))
        with ledger.path.open("ab") as handle:
            handle.write(b'{"schema": "wrong.schema"}\n')
        scan = ledger.scan()
        assert len(scan.records) == 1
        assert scan.torn is not None and "schema" in scan.torn.reason

    def test_injected_torn_write_is_recoverable(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        clean_size = ledger.path.stat().st_size
        line = json.dumps(_record(matcher="Hun.")).encode() + b"\n"
        # Deterministic power-cut: only a prefix of the appended line
        # reaches the file, exactly what a crash mid-append leaves.
        offset = TornWriteInjector(seed=3).tear_offset(len(line))
        with ledger.path.open("ab") as handle:
            handle.write(line[:offset])
        if offset == len(line):  # the append happened to complete
            assert len(ledger.records()) == 3
        else:
            assert len(ledger.records(strict=False)) == 2
            assert ledger.scan().torn.byte_offset == clean_size


class TestAppendHealsTail:
    """append() never concatenates onto a newline-less tail.

    Resuming after a crash appends to the very ledger the crash tore;
    without healing, the new record would merge into the torn bytes —
    silently lost, and promoted to mid-file corruption by the next
    append.
    """

    def test_append_after_torn_tail_repairs_into_bak(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        torn = _tear_tail(ledger)
        ledger.append(_record(matcher="Hun."))
        records = ledger.records()  # strict: the ledger is fully valid
        assert [r["matcher"] for r in records] == ["DInf", "CSLS", "Hun."]
        backup = ledger.path.with_name("runs.jsonl.bak")
        assert backup.read_bytes() == torn

    def test_append_completes_valid_record_missing_newline(self, tmp_path):
        ledger = _seeded_ledger(tmp_path, matchers=("DInf",))
        with ledger.path.open("ab") as handle:
            handle.write(json.dumps(_record(matcher="CSLS")).encode())  # no \n
        ledger.append(_record(matcher="Hun."))
        records = ledger.records()
        # The unterminated-but-complete record survives, nothing merged.
        assert [r["matcher"] for r in records] == ["DInf", "CSLS", "Hun."]
        assert not ledger.path.with_name("runs.jsonl.bak").exists()

    def test_append_after_blank_padded_tail_repairs(self, tmp_path):
        ledger = _seeded_ledger(tmp_path, matchers=("DInf",))
        with ledger.path.open("ab") as handle:
            handle.write(b" \x00\x00 ")
        ledger.append(_record(matcher="Hun."))
        assert [r["matcher"] for r in ledger.records()] == ["DInf", "Hun."]

    def test_append_refuses_mid_file_corruption(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        lines = ledger.path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"garbage\n")
        # No trailing newline: the tail check kicks in and the scan
        # finds the mid-file damage before any byte is appended.
        ledger.path.write_bytes(b"".join(lines) + b'{"torn": tru')
        raw_before = ledger.path.read_bytes()
        with pytest.raises(ValueError, match="mid-file corruption"):
            ledger.append(_record(matcher="Hun."))
        assert ledger.path.read_bytes() == raw_before

    def test_durable_resume_round_trip_after_torn_append(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl", durable=True)
        ledger.append(_record(matcher="DInf"))
        _tear_tail(ledger)
        ledger.append(_record(matcher="CSLS"))
        ledger.append(_record(matcher="Hun."))
        assert [r["matcher"] for r in ledger.records()] == [
            "DInf", "CSLS", "Hun.",
        ]
        assert ledger.fsck().clean


class TestMidFileCorruption:
    def _corrupt_middle(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        lines = ledger.path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b'{"torn": "then more records followed"}\n')
        ledger.path.write_bytes(b"".join(lines))
        return ledger

    def test_raises_in_both_modes(self, tmp_path):
        ledger = self._corrupt_middle(tmp_path)
        for read in (lambda: ledger.records(), lambda: ledger.records(strict=False)):
            with pytest.raises(ValueError, match="mid-file corruption"):
                read()

    def test_error_names_path_and_line(self, tmp_path):
        ledger = self._corrupt_middle(tmp_path)
        with pytest.raises(ValueError, match=rf"{ledger.path}:2"):
            ledger.scan()

    def test_legacy_blank_separator_lines_still_tolerated(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        lines = ledger.path.read_bytes().splitlines(keepends=True)
        ledger.path.write_bytes(lines[0] + b"\n" + lines[1])
        assert len(ledger.records()) == 2


class TestFsck:
    def test_clean_ledger_reports_record_count(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        report = ledger.fsck()
        assert report.clean and report.n_records == 2
        assert report.torn is None and not report.repaired

    def test_missing_ledger_is_clean_and_empty(self, tmp_path):
        report = RunLedger(tmp_path / "absent.jsonl").fsck()
        assert report.clean and report.n_records == 0

    def test_torn_tail_reported_without_repair(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        _tear_tail(ledger)
        size_before = ledger.path.stat().st_size
        report = ledger.fsck()
        assert not report.clean and report.torn is not None
        assert not report.repaired and report.backup is None
        assert ledger.path.stat().st_size == size_before  # untouched

    def test_repair_truncates_tail_into_bak_sidecar(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        torn = _tear_tail(ledger)
        report = ledger.fsck(repair=True)
        assert report.clean and report.repaired
        assert report.n_records == 2
        assert report.backup == ledger.path.with_name("runs.jsonl.bak")
        assert report.backup.read_bytes() == torn
        # The repaired ledger is fully valid again, records preserved.
        records = ledger.records()
        assert [r["matcher"] for r in records] == ["DInf", "CSLS"]
        assert ledger.fsck().clean
        # And appending continues from the clean tail.
        ledger.append(_record(matcher="Hun."))
        assert len(ledger.records()) == 3
        assert cell_key(ledger.records()[-1])[2] == "Hun."

    def test_second_repair_does_not_clobber_first_backup(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        first_torn = _tear_tail(ledger, keep_bytes=20)
        first = ledger.fsck(repair=True)
        second_torn = _tear_tail(ledger, keep_bytes=30)
        second = ledger.fsck(repair=True)
        assert second.backup != first.backup
        assert second.backup == ledger.path.with_name("runs.jsonl.bak.1")
        assert first.backup.read_bytes() == first_torn  # still preserved
        assert second.backup.read_bytes() == second_torn
        assert ledger.fsck().clean

    def test_repair_refuses_mid_file_corruption(self, tmp_path):
        ledger = _seeded_ledger(tmp_path)
        lines = ledger.path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"garbage\n")
        ledger.path.write_bytes(b"".join(lines))
        raw_before = ledger.path.read_bytes()
        report = ledger.fsck(repair=True)
        assert report.error is not None and not report.clean
        assert "mid-file corruption" in report.error
        assert not report.repaired
        assert ledger.path.read_bytes() == raw_before  # nothing truncated
