"""Tests for the tracing layer: span trees, null recorder, threading."""

import threading

import pytest

from repro.obs import trace

pytestmark = pytest.mark.obs


class TestDisabledByDefault:
    def test_null_recorder_installed_by_default(self):
        assert not trace.tracing_enabled()
        assert isinstance(trace.get_recorder(), trace.NullRecorder)

    def test_disabled_span_is_shared_noop(self):
        with trace.span("anything", key="value") as sp:
            sp.count("n", 3)
            sp.annotate(extra=1)
        assert sp is trace.NULL_SPAN
        # A second call hands out the very same object: no allocation.
        assert trace.span("other") is trace.get_recorder().span("other")

    def test_disabled_event_is_noop(self):
        trace.event("ignored", a=1)  # must not raise or record anywhere


class TestRecording:
    def test_recording_installs_and_restores(self):
        with trace.recording() as recorder:
            assert trace.tracing_enabled()
            assert trace.get_recorder() is recorder
        assert not trace.tracing_enabled()

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with trace.recording():
                raise RuntimeError("boom")
        assert not trace.tracing_enabled()

    def test_recording_is_reentrant(self):
        with trace.recording() as outer:
            with trace.span("outer-span"):
                pass
            with trace.recording() as inner:
                with trace.span("inner-span"):
                    pass
            # Back to the outer recorder after the inner run.
            assert trace.get_recorder() is outer
            with trace.span("outer-again"):
                pass
        assert [s.name for s in outer.roots] == ["outer-span", "outer-again"]
        assert [s.name for s in inner.roots] == ["inner-span"]


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        with trace.recording() as recorder:
            with trace.span("parent", level=1):
                with trace.span("child"):
                    with trace.span("grandchild"):
                        pass
                with trace.span("sibling"):
                    pass
        (root,) = recorder.roots
        assert root.name == "parent"
        assert root.attrs == {"level": 1}
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]

    def test_timings_and_counters_recorded(self):
        with trace.recording() as recorder:
            with trace.span("work") as sp:
                sum(range(1000))
                sp.count("items", 5)
                sp.count("items", 2)
                sp.annotate(note="done")
        (root,) = recorder.roots
        assert root.wall_seconds > 0
        assert root.cpu_seconds >= 0
        assert root.rss_delta_bytes >= 0
        assert root.counters == {"items": 7}
        assert root.attrs["note"] == "done"

    def test_explicit_parent_attaches_across_threads(self):
        with trace.recording() as recorder:
            with trace.span("scheduler") as parent:
                def worker(i):
                    with trace.span("chunk", parent=parent, index=i):
                        pass
                threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        (root,) = recorder.roots
        assert sorted(c.attrs["index"] for c in root.children) == [0, 1, 2, 3]
        assert all(c.name == "chunk" for c in root.children)

    def test_parentless_span_on_worker_thread_becomes_root(self):
        with trace.recording() as recorder:
            with trace.span("main-root"):
                def run():
                    with trace.span("orphan"):
                        pass
                t = threading.Thread(target=run)
                t.start()
                t.join()
        names = sorted(s.name for s in recorder.roots)
        assert names == ["main-root", "orphan"]

    def test_find_and_walk(self):
        with trace.recording() as recorder:
            with trace.span("a"):
                with trace.span("b"):
                    pass
                with trace.span("b"):
                    pass
        assert len(recorder.find("b")) == 2
        assert [s.name for s in recorder.walk()] == ["a", "b", "b"]

    def test_events_ordered_with_offsets(self):
        with trace.recording() as recorder:
            trace.event("first", k=1)
            trace.event("second")
        assert [e["name"] for e in recorder.events] == ["first", "second"]
        assert recorder.events[0]["attrs"] == {"k": 1}
        assert recorder.events[0]["seconds"] <= recorder.events[1]["seconds"]

    def test_as_dict_round_trips_shape(self):
        with trace.recording() as recorder:
            with trace.span("root", tag="x") as sp:
                sp.count("n", 1)
                with trace.span("leaf"):
                    pass
        doc = recorder.roots[0].as_dict()
        assert doc["name"] == "root"
        assert doc["attrs"] == {"tag": "x"}
        assert doc["counters"] == {"n": 1}
        assert doc["children"][0]["name"] == "leaf"
        assert doc["children"][0]["children"] == []
