"""End-to-end observability: spans and metrics through the real stack."""

import pytest

from repro.cli import main
from repro.core.registry import create_matcher
from repro.embedding.oracle import OracleConfig, OracleEncoder
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.profile import load_profile, validate_profile
from repro.pipeline import AlignmentPipeline
from repro.runtime.supervisor import RunSupervisor, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine

pytestmark = pytest.mark.obs


class TestEngineInstrumentation:
    def test_similarity_span_has_chunk_children(self, rng):
        source = rng.standard_normal((50, 8))
        target = rng.standard_normal((40, 8))
        with SimilarityEngine(workers=2, chunk_rows=16) as engine:
            with trace.recording() as recorder:
                engine.similarity(source, target, metric="cosine")
        (root,) = recorder.find("engine.similarity")
        assert root.attrs["metric"] == "cosine"
        assert root.attrs["rows"] == 50
        chunks = [c for c in root.children if c.name == "engine.chunk"]
        assert len(chunks) == root.counters["chunks"] == 4
        covered = sorted((c.attrs["start"], c.attrs["stop"]) for c in chunks)
        assert covered[0][0] == 0 and covered[-1][1] == 50

    def test_cache_hits_surface_as_events_and_counters(self, rng):
        source = rng.standard_normal((20, 4))
        target = rng.standard_normal((20, 4))
        with SimilarityEngine() as engine:
            with trace.recording() as recorder, obs_metrics.scoped() as registry:
                engine.similarity(source, target)
                engine.similarity(source, target)
        assert registry.counter("engine.cache.misses") == 1
        assert registry.counter("engine.cache.hits") == 1
        assert registry.counter("engine.computations") == 1
        assert [e["name"] for e in recorder.events] == [
            "engine.cache.miss", "engine.cache.hit",
        ]


class TestMatcherInstrumentation:
    def test_match_has_phase_spans(self, rng):
        source = rng.standard_normal((30, 8))
        target = rng.standard_normal((30, 8))
        matcher = create_matcher("CSLS")
        with SimilarityEngine() as engine:
            matcher.engine = engine
            with trace.recording() as recorder:
                matcher.match(source, target)
        (root,) = recorder.find("matcher.match")
        assert root.attrs["matcher"] == "CSLS"
        phases = [c.name for c in root.children]
        assert phases == ["matcher.score", "matcher.rescale", "matcher.assign"]
        # The engine span nests inside the score phase.
        assert recorder.find("engine.similarity")[0] in root.children[0].walk()

    def test_sinkhorn_iterations_counted(self, rng):
        source = rng.standard_normal((20, 6))
        target = rng.standard_normal((20, 6))
        matcher = create_matcher("Sink.", iterations=7)
        with trace.recording() as recorder, obs_metrics.scoped() as registry:
            matcher.match(source, target)
        assert len(recorder.find("sinkhorn.iter")) == 7
        assert registry.counter("sinkhorn.iterations") == 7


class TestRunnerProfiles:
    def test_run_experiment_attaches_schema_valid_profiles(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("DInf", "CSLS"), scale=0.2, seed=0,
        )
        result = run_experiment(config, profile=True)
        assert set(result.profiles) == {"DInf", "CSLS"}
        for name, document in result.profiles.items():
            validate_profile(document)
            assert document["meta"]["matcher"] == name
            names = {s["name"] for s in _flatten(document["spans"])}
            assert "matcher.match" in names
            assert "matcher.assign" in names

    def test_profiles_isolated_per_cell(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("Sink.", "DInf"),
            matcher_options={"Sink.": {"iterations": 3}},
            scale=0.2, seed=0,
        )
        result = run_experiment(config, profile=True)
        sink = result.profiles["Sink."]["metrics"]["counters"]
        dinf = result.profiles["DInf"]["metrics"]["counters"]
        assert sink["sinkhorn.iterations"] == 3
        assert "sinkhorn.iterations" not in dinf

    def test_supervised_profile_records_supervisor_counts(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R", matchers=("CSLS",),
            scale=0.2, seed=0,
        )
        supervisor = RunSupervisor(SupervisorPolicy(on_error="skip"))
        result = run_experiment(config, supervisor=supervisor, profile=True)
        counters = result.profiles["CSLS"]["metrics"]["counters"]
        assert counters["supervisor.attempts"] == 1
        assert counters["supervisor.runs"] == 1

    def test_no_profiles_by_default(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R", matchers=("DInf",), scale=0.2,
        )
        assert run_experiment(config).profiles == {}


class TestPipelineProfiles:
    def test_align_profile_attached_and_valid(self, medium_task):
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=5)), create_matcher("CSLS")
        )
        prediction = pipeline.align(medium_task, profile=True)
        validate_profile(prediction.profile)
        assert prediction.profile["meta"] == {
            "task": medium_task.name, "matcher": "CSLS",
        }
        names = {s["name"] for s in _flatten(prediction.profile["spans"])}
        assert {"matcher.match", "matcher.score", "matcher.assign"} <= names

    def test_align_without_profile_leaves_none(self, medium_task):
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=5)), create_matcher("DInf")
        )
        assert pipeline.align(medium_task).profile is None


class TestCLIProfile:
    def test_match_profile_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        assert main([
            "match", "dbp15k/zh_en", "--matcher", "CSLS", "--scale", "0.2",
            "--workers", "2", "--profile", str(out),
        ]) == 0
        assert "profile written to" in capsys.readouterr().out
        document = load_profile(out)
        assert document["meta"]["matcher"] == "CSLS"
        names = {s["name"] for s in _flatten(document["spans"])}
        assert "matcher.match" in names
        assert "engine.similarity" in names
        assert document["metrics"]["counters"]["supervisor.runs"] == 1

    def test_profile_summarize_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        main([
            "match", "dbp15k/zh_en", "--matcher", "Sink.", "--scale", "0.2",
            "--profile", str(out),
        ])
        capsys.readouterr()
        assert main(["profile", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "matcher.match" in text
        assert "sinkhorn.iter" in text
        assert "supervisor.runs" in text

    def test_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}', encoding="utf-8")
        assert main(["profile", "summarize", str(bad)]) == 1
        assert "cannot summarize" in capsys.readouterr().err

    def test_tracing_disabled_after_profiled_run(self, tmp_path):
        main([
            "match", "dbp15k/zh_en", "--matcher", "DInf", "--scale", "0.2",
            "--profile", str(tmp_path / "p.json"),
        ])
        assert not trace.tracing_enabled()


def _flatten(spans):
    out = []
    stack = list(spans)
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(span["children"])
    return out
