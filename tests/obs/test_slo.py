"""SLO burn-rate tracker: deterministic clocks, windows, breach logic."""

import pytest

from repro.obs.slo import DEFAULT_BURN_THRESHOLD, DEFAULT_WINDOWS, SLOTracker

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(**kwargs) -> tuple[SLOTracker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("objective", 0.99)
    kwargs.setdefault("windows", (10.0, 60.0))
    return SLOTracker(clock=clock, **kwargs), clock


class TestValidation:
    def test_objective_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                SLOTracker(objective=bad)

    def test_windows_must_be_ascending_and_positive(self):
        for bad in ((), (0.0,), (-5.0,), (60.0, 60.0), (60.0, 5.0)):
            with pytest.raises(ValueError):
                SLOTracker(windows=bad)

    def test_default_windows_are_the_sre_pairing(self):
        assert DEFAULT_WINDOWS == (300.0, 3600.0)


class TestBurnRate:
    def test_idle_window_burns_nothing(self):
        tracker, _ = make_tracker()
        assert tracker.burn_rate(10.0) == 0.0
        assert not tracker.breaching()

    def test_all_good_burns_nothing(self):
        tracker, _ = make_tracker()
        for _ in range(100):
            tracker.record(True)
        assert tracker.burn_rate(10.0) == 0.0

    def test_bad_fraction_at_the_budget_burns_at_one(self):
        tracker, _ = make_tracker(objective=0.99)
        for i in range(100):
            tracker.record(i != 0)  # exactly 1% bad
        assert tracker.burn_rate(10.0) == pytest.approx(1.0)

    def test_all_bad_burns_at_the_budget_reciprocal(self):
        tracker, _ = make_tracker(objective=0.99)
        for _ in range(10):
            tracker.record(False)
        assert tracker.burn_rate(10.0) == pytest.approx(100.0)

    def test_slow_requests_spend_budget_when_thresholded(self):
        tracker, _ = make_tracker(latency_threshold=0.1)
        assert tracker.record(True, latency=0.5) is True
        assert tracker.record(True, latency=0.05) is False
        assert tracker.record(False) is True
        assert tracker.burn_rate(10.0) == pytest.approx((2 / 3) / 0.01)

    def test_latency_is_ignored_without_a_threshold(self):
        tracker, _ = make_tracker()
        assert tracker.record(True, latency=99.0) is False


class TestRollingWindows:
    def test_events_expire_out_of_the_fast_window(self):
        tracker, clock = make_tracker()
        for _ in range(10):
            tracker.record(False)
        assert tracker.burn_rate(10.0) > 0.0
        clock.advance(11.0)
        assert tracker.burn_rate(10.0) == 0.0
        # ...but the slow window still sees them.
        assert tracker.burn_rate(60.0) > 0.0

    def test_ring_slots_are_recycled_after_a_full_cycle(self):
        tracker, clock = make_tracker(windows=(5.0, 10.0))
        tracker.record(False)
        clock.advance(10.0)  # one full ring cycle: the slot is stale
        tracker.record(True)
        requests, bad = tracker._window_counts(10.0)
        assert (requests, bad) == (1, 0)

    def test_multi_window_breach_requires_both_windows(self):
        tracker, clock = make_tracker(objective=0.99, windows=(10.0, 60.0))
        # A short, fully-bad burst: the fast window burns hard...
        for _ in range(20):
            tracker.record(False)
        assert tracker.burn_rate(10.0) >= DEFAULT_BURN_THRESHOLD
        assert tracker.breaching()  # burst is also 100% of the slow window
        # Once good traffic dilutes the slow window below the threshold,
        # the page clears even while the fast window still remembers.
        clock.advance(5.0)
        for _ in range(200):
            tracker.record(True)
        assert tracker.burn_rate(10.0) > 0.0
        assert tracker.burn_rate(60.0) < DEFAULT_BURN_THRESHOLD
        assert not tracker.breaching()


class TestSnapshot:
    def test_snapshot_is_json_plain_and_keyed_by_window(self):
        import json

        tracker, _ = make_tracker(objective=0.99, windows=(10.0, 60.0))
        tracker.record(False)
        tracker.record(True)
        snap = tracker.snapshot()
        json.dumps(snap)
        assert set(snap) == {
            "objective", "latency_threshold_seconds", "breaching", "windows",
        }
        assert set(snap["windows"]) == {"10s", "60s"}
        window = snap["windows"]["10s"]
        assert window["requests"] == 2
        assert window["bad"] == 1
        assert window["bad_ratio"] == pytest.approx(0.5)
        assert window["burn_rate"] == pytest.approx(50.0)
        assert window["budget_left"] == 0.0
