"""Tests for profile documents: schema, validation, round trip, summary."""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PROFILE_VERSION,
    build_profile,
    load_profile,
    summarize,
    validate_profile,
    write_profile,
)

pytestmark = pytest.mark.obs


def _recorded_run():
    registry = obs_metrics.MetricsRegistry()
    with trace.recording() as recorder, obs_metrics.scoped(registry):
        with trace.span("matcher.match", matcher="CSLS") as sp:
            with trace.span("matcher.score"):
                pass
            for i in range(3):
                with trace.span("sinkhorn.iter", k=i):
                    pass
            sp.count("chunks", 2)
        trace.event("engine.cache.hit", metric="cosine")
        obs_metrics.get_metrics().inc("engine.cache.hits")
    return recorder, registry


class TestBuildAndValidate:
    def test_document_shape(self):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry, meta={"preset": "x"})
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["version"] == PROFILE_VERSION
        assert doc["meta"] == {"preset": "x"}
        assert len(doc["spans"]) == 1
        assert doc["events"][0]["name"] == "engine.cache.hit"
        assert doc["metrics"]["counters"]["engine.cache.hits"] == 1
        validate_profile(doc)

    def test_document_is_json_serialisable(self):
        recorder, registry = _recorded_run()
        json.dumps(build_profile(recorder, registry))

    def test_build_defaults_to_active_registry(self):
        with obs_metrics.scoped() as registry:
            registry.inc("only.here")
            doc = build_profile(trace.TraceRecorder())
        assert doc["metrics"]["counters"]["only.here"] == 1

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="other"), "schema"),
            (lambda d: d.update(version=999), "version"),
            (lambda d: d.update(spans={}), "spans"),
            (lambda d: d.pop("metrics"), "metrics"),
            (lambda d: d["spans"][0].pop("wall_seconds"), "wall_seconds"),
            (lambda d: d["spans"][0]["children"][0].pop("name"), "name"),
            (lambda d: d["metrics"].pop("counters"), "counters"),
            (lambda d: d["events"].append({"no-name": True}), "event"),
        ],
    )
    def test_validation_rejects_malformed(self, mutate, message):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry)
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_profile(doc)

    def test_validation_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_profile([1, 2, 3])


class TestProvenance:
    def test_document_carries_provenance_stamp(self):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry)
        assert doc["version"] == 2
        assert doc["provenance"]["python"]
        assert doc["provenance"]["numpy"]

    def test_version1_documents_still_validate_and_load(self, tmp_path):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry)
        doc["version"] = 1
        del doc["provenance"]  # a v1 writer never produced the block
        validate_profile(doc)
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert load_profile(path)["version"] == 1
        summarize(doc)  # renders without a provenance line

    def test_version2_requires_provenance(self):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry)
        del doc["provenance"]
        with pytest.raises(ValueError, match="provenance"):
            validate_profile(doc)

    def test_summary_includes_provenance_line(self):
        recorder, registry = _recorded_run()
        text = summarize(build_profile(recorder, registry))
        assert "python=" in text
        assert "numpy=" in text


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry, meta={"matcher": "CSLS"})
        path = write_profile(tmp_path / "sub" / "prof.json", doc)
        assert path.exists()
        loaded = load_profile(path)
        assert loaded == doc

    def test_write_rejects_malformed(self, tmp_path):
        with pytest.raises(ValueError):
            write_profile(tmp_path / "bad.json", {"schema": "nope"})
        assert not (tmp_path / "bad.json").exists()


class TestSummarize:
    def test_summary_mentions_spans_events_counters(self):
        recorder, registry = _recorded_run()
        doc = build_profile(recorder, registry, meta={"preset": "zoo"})
        text = summarize(doc)
        assert "matcher.match" in text
        assert "matcher.score" in text
        assert "preset=zoo" in text
        assert "engine.cache.hit" in text
        assert "engine.cache.hits" in text

    def test_summary_merges_same_named_siblings(self):
        recorder, registry = _recorded_run()
        text = summarize(build_profile(recorder, registry))
        # 100%-per-iteration noise collapses into one aggregate line.
        assert text.count("sinkhorn.iter") == 1
        assert "x3" in text

    def test_summary_of_empty_profile(self):
        doc = build_profile(trace.TraceRecorder(), obs_metrics.MetricsRegistry())
        assert "profile" in summarize(doc)
