"""Tests for the metrics registry: counters, gauges, timers, scoping."""

import threading

import pytest

from repro.obs import metrics

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_counters_accumulate(self):
        registry = metrics.MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2.5)
        assert registry.counter("a") == 3.5
        assert registry.counter("never") == 0

    def test_gauge_keeps_latest(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("temp", 0.02)
        registry.gauge("temp", 0.2)
        assert registry.snapshot()["gauges"]["temp"] == 0.2

    def test_timer_accumulates_seconds_and_count(self):
        registry = metrics.MetricsRegistry()
        with registry.timer("t"):
            pass
        with registry.timer("t"):
            pass
        entry = registry.snapshot()["timers"]["t"]
        assert entry["count"] == 2
        assert entry["seconds"] >= 0

    def test_snapshot_is_a_copy(self):
        registry = metrics.MetricsRegistry()
        registry.inc("a")
        snap = registry.snapshot()
        snap["counters"]["a"] = 999
        assert registry.counter("a") == 1

    def test_reset_zeroes_everything(self):
        registry = metrics.MetricsRegistry()
        registry.inc("a")
        registry.gauge("g", 1)
        with registry.timer("t"):
            pass
        registry.observe("h", 0.5)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }

    def test_thread_safe_increments(self):
        registry = metrics.MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n") == 4000


class TestScoping:
    def test_scoped_isolates_counts(self):
        outer = metrics.get_metrics()
        before = outer.counter("scoped.test")
        with metrics.scoped() as registry:
            assert metrics.get_metrics() is registry
            metrics.get_metrics().inc("scoped.test")
            assert registry.counter("scoped.test") == 1
        assert metrics.get_metrics() is outer
        assert outer.counter("scoped.test") == before

    def test_scoped_restores_on_error(self):
        outer = metrics.get_metrics()
        with pytest.raises(RuntimeError):
            with metrics.scoped():
                raise RuntimeError("boom")
        assert metrics.get_metrics() is outer

    def test_scoped_accepts_existing_registry(self):
        mine = metrics.MetricsRegistry()
        with metrics.scoped(mine) as registry:
            assert registry is mine
