"""Tests for the drift gate: reference building, band checks, CLI exit."""

import json

import pytest

from repro.cli import main
from repro.obs.drift import (
    DEFAULT_ORDERINGS,
    build_reference,
    check_drift,
    load_reference,
    reference_configs,
    validate_reference,
    write_reference,
)
from repro.obs.ledger import build_record

pytestmark = pytest.mark.obs


def _record(matcher="CSLS", regime="R", f1=0.7, hits1=0.6, **overrides):
    defaults = dict(
        fingerprint="abc",
        preset="dbp15k/zh_en",
        regime=regime,
        task="dbp15k/zh_en",
        matcher=matcher,
        seed=0,
        scale=0.5,
        metric="cosine",
        status="ok",
        metrics={"precision": f1, "recall": f1, "f1": f1},
        ranking={"hits@1": hits1, "mrr": hits1},
    )
    defaults.update(overrides)
    return build_record(**defaults)


def _reference(records, **kwargs):
    kwargs.setdefault("orderings", ())
    return build_reference(records, **kwargs)


class TestBuildReference:
    def test_cells_carry_metrics_and_tolerances(self):
        reference = _reference([_record()])
        validate_reference(reference)
        cell = reference["cells"]["dbp15k/zh_en|R|CSLS"]
        assert cell["metrics"] == {"f1": 0.7, "hits@1": 0.6}
        assert cell["tolerance"]["f1"] == 0.05

    def test_latest_record_per_cell_wins(self):
        reference = _reference([_record(f1=0.1), _record(f1=0.9)])
        assert reference["cells"]["dbp15k/zh_en|R|CSLS"]["metrics"]["f1"] == 0.9

    def test_failed_records_contribute_nothing(self):
        failed = _record(
            matcher="Hun.", status="failed", metrics=None,
            error={"type": "DeadlineExceeded", "message": ""},
        )
        reference = _reference([_record(), failed])
        assert "dbp15k/zh_en|R|Hun." not in reference["cells"]

    def test_zero_successful_records_is_an_error(self):
        with pytest.raises(ValueError, match="zero successful"):
            _reference([])

    def test_ordering_must_reference_recorded_cells(self):
        with pytest.raises(ValueError, match="unrecorded cell"):
            build_reference([_record()], orderings=DEFAULT_ORDERINGS)

    def test_round_trip_through_disk(self, tmp_path):
        reference = _reference([_record()])
        path = write_reference(tmp_path / "ref.json", reference)
        assert load_reference(path) == reference


class TestCheckDrift:
    def test_matching_ledger_is_clean(self):
        records = [_record(), _record(matcher="DInf", f1=0.5, hits1=0.4)]
        report = check_drift(records, _reference(records))
        assert report.ok
        assert report.cells_checked == 2
        assert "within reference bands" in report.describe()

    def test_in_band_wobble_passes(self):
        reference = _reference([_record(f1=0.7)])
        report = check_drift([_record(f1=0.66, hits1=0.64)], reference)
        assert report.ok

    def test_band_violation_names_cell_metric_and_band(self):
        reference = _reference([_record(f1=0.7)])
        report = check_drift([_record(f1=0.4, hits1=0.6)], reference)
        assert not report.ok
        violation = report.violations[0]
        assert (violation.kind, violation.metric) == ("band", "f1")
        text = report.describe()
        assert "dbp15k/zh_en/R/CSLS" in text
        assert "f1=0.4000" in text
        assert "[0.6500, 0.7500]" in text

    def test_improvement_beyond_band_is_also_drift(self):
        # A jump outside the band in either direction means the committed
        # reference no longer describes reality — rebaseline explicitly.
        reference = _reference([_record(f1=0.5, hits1=0.5)])
        report = check_drift([_record(f1=0.9, hits1=0.5)], reference)
        assert not report.ok

    def test_missing_cell_is_a_violation(self):
        reference = _reference([_record(), _record(matcher="DInf")])
        report = check_drift([_record()], reference)
        assert [v.kind for v in report.violations] == ["missing"]
        assert report.violations[0].matcher == "DInf"

    def test_failed_cell_is_a_violation(self):
        reference = _reference([_record()])
        failed = _record(
            status="failed", metrics=None,
            error={"type": "DeadlineExceeded", "message": "slow"},
        )
        report = check_drift([failed], reference)
        assert [v.kind for v in report.violations] == ["failed"]
        assert "DeadlineExceeded" in report.describe()

    def test_ordering_flip_is_a_violation(self):
        records = [
            _record(matcher="Sink.", f1=0.8),
            _record(matcher="DInf", f1=0.5),
        ]
        orderings = [{
            "preset": "dbp15k/zh_en", "regime": "R",
            "higher": "Sink.", "lower": "DInf", "metric": "f1", "margin": 0.0,
        }]
        reference = build_reference(records, orderings=orderings)
        assert check_drift(records, reference).ok
        flipped = [
            _record(matcher="Sink.", f1=0.45),
            _record(matcher="DInf", f1=0.5),
        ]
        # Widen the check to the ordering alone: keep bands satisfied.
        reference["cells"]["dbp15k/zh_en|R|Sink."]["metrics"] = {"f1": 0.45}
        reference["cells"]["dbp15k/zh_en|R|DInf"]["metrics"] = {"f1": 0.5}
        report = check_drift(flipped, reference)
        assert [v.kind for v in report.violations] == ["ordering"]
        assert "Sink." in report.describe() and "DInf" in report.describe()

    def test_degraded_runs_are_compared_like_clean_ones(self):
        degraded = _record(
            status="degraded", fallback="Greedy",
            error={"type": "DeadlineExceeded", "message": ""},
        )
        assert check_drift([degraded], _reference([_record()])).ok


class TestReferenceConfigs:
    def test_canonical_sweep_is_seeded_and_subunit_scale(self):
        configs = reference_configs()
        assert len(configs) >= 3
        assert all(c.seed == 0 for c in configs)
        assert all(0 < c.scale <= 1.0 for c in configs)
        regimes = {(c.preset, c.input_regime) for c in configs}
        assert ("dbp15k/zh_en", "R") in regimes
        assert ("dbp15k/zh_en", "G") in regimes


class TestDriftCli:
    """`repro runs drift` against the *committed* reference artifacts."""

    def test_committed_seed0_ledger_is_clean(self, capsys):
        assert main(["runs", "drift"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero_naming_the_cell(
        self, tmp_path, capsys
    ):
        source = load_reference("benchmarks/results/REFERENCE_accuracy.json")
        regressed = tmp_path / "regressed.jsonl"
        with open("benchmarks/results/ledger_seed0.jsonl", encoding="utf-8") as f:
            lines = [json.loads(line) for line in f]
        for record in lines:
            if (
                record["matcher"] == "Sink."
                and record["regime"] == "R"
                and record["preset"] == "dbp15k/zh_en"
            ):
                record["metrics"]["f1"] -= 0.2
                record["ranking"]["hits@1"] -= 0.2
        regressed.write_text(
            "".join(json.dumps(r) + "\n" for r in lines), encoding="utf-8"
        )
        assert main(["runs", "drift", "--ledger", str(regressed)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "dbp15k/zh_en/R/Sink." in out  # the offending cell...
        assert "f1=" in out and "outside [" in out  # ...metric and band
        assert source["cells"]["dbp15k/zh_en|R|Sink."]["metrics"]["f1"] > 0

    def test_missing_ledger_fails_with_message(self, tmp_path, capsys):
        assert main(["runs", "drift", "--ledger", str(tmp_path / "no.jsonl")]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_corrupt_reference_fails_with_message(self, tmp_path, capsys):
        bad = tmp_path / "ref.json"
        bad.write_text('{"schema": "wrong"}', encoding="utf-8")
        assert main(["runs", "drift", "--reference", str(bad)]) == 1
        assert "cannot load reference" in capsys.readouterr().err
