"""Tests for the run ledger: schema, round trip, runner integration."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    RunLedger,
    as_ledger,
    build_record,
    cell_key,
    config_fingerprint,
    validate_record,
)
from repro.runtime.supervisor import SupervisorPolicy
from repro.testing.faults import AllocationFailure, KernelStall, faulty_factory

pytestmark = pytest.mark.obs

SCALE = 0.2


def _config(**overrides):
    defaults = dict(
        preset="dbp15k/zh_en", input_regime="R",
        matchers=("DInf", "CSLS", "Hun."), scale=SCALE, seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _record(**overrides):
    defaults = dict(
        fingerprint="abc123",
        preset="dbp15k/zh_en",
        regime="R",
        task="dbp15k/zh_en",
        matcher="CSLS",
        seed=0,
        scale=1.0,
        metric="cosine",
        status="ok",
        metrics={"precision": 0.7, "recall": 0.7, "f1": 0.7},
        ranking={"hits@1": 0.6, "mrr": 0.65},
    )
    defaults.update(overrides)
    return build_record(**defaults)


class TestRecordSchema:
    def test_build_record_carries_schema_and_provenance(self):
        record = _record()
        assert record["schema"] == LEDGER_SCHEMA
        assert record["version"] == LEDGER_VERSION
        assert len(record["run_id"]) == 32
        assert record["provenance"]["python"]
        assert record["provenance"]["numpy"]
        assert record["created_at"].endswith("+00:00")
        assert cell_key(record) == ("dbp15k/zh_en", "R", "CSLS")

    def test_record_is_json_serialisable(self):
        json.dumps(_record())

    def test_failed_record_carries_error_not_metrics(self):
        record = _record(
            status="failed", metrics=None,
            error={"type": "DeadlineExceeded", "message": "too slow"},
        )
        assert record["metrics"] is None
        assert record["error"]["type"] == "DeadlineExceeded"

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.update(schema="other"), "schema"),
            (lambda r: r.update(version=999), "version"),
            (lambda r: r.pop("fingerprint"), "fingerprint"),
            (lambda r: r.update(seed="zero"), "seed"),
            (lambda r: r.update(status="mystery"), "status"),
            (lambda r: r.update(status="failed"), "failed"),
            (lambda r: r.update(metrics=None), "metrics"),
            (lambda r: r.update(error={"message": "no type"}), "type"),
        ],
    )
    def test_validation_rejects_malformed(self, mutate, message):
        record = _record()
        mutate(record)
        with pytest.raises(ValueError, match=message):
            validate_record(record)

    def test_validation_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_record([1, 2])

    def test_config_fingerprint_tracks_identity_fields(self):
        base = _config()
        assert config_fingerprint(base) == config_fingerprint(_config())
        assert config_fingerprint(base) != config_fingerprint(_config(seed=1))
        assert config_fingerprint(base) != config_fingerprint(_config(scale=0.4))


class TestSchemaV2Resources:
    """The v1 -> v2 bump: required ``resources`` block, v1 stays readable."""

    def test_v2_record_carries_measured_resources(self):
        record = _record()
        assert record["version"] == 2
        resources = record["resources"]
        assert resources["backend"] == "thread"
        assert resources["workers"] == 1
        assert resources["shards"] == 0
        assert isinstance(resources["peak_rss_bytes"], int)
        assert resources["peak_rss_bytes"] >= 0

    def test_engine_resources_merge_over_defaults(self):
        record = _record(resources={"backend": "process", "workers": 4, "shards": 9})
        resources = record["resources"]
        assert resources["backend"] == "process"
        assert resources["workers"] == 4
        assert resources["shards"] == 9
        assert "peak_rss_bytes" in resources  # measured default survives

    def test_v1_record_without_resources_still_validates(self):
        record = _record()
        record.pop("resources")
        record["version"] = 1
        validate_record(record)  # must not raise

    def test_v2_record_missing_resources_rejected(self):
        record = _record()
        record.pop("resources")
        with pytest.raises(ValueError, match="resources"):
            validate_record(record)

    def test_unknown_version_still_rejected(self):
        record = _record()
        record["version"] = 3
        with pytest.raises(ValueError, match="version"):
            validate_record(record)

    def test_committed_reference_ledger_stays_readable(self):
        # The drift gate's committed ledger predates the bump; reading it
        # is the live proof of v1 back-compat.
        from repro.obs.drift import DEFAULT_LEDGER_PATH

        records = RunLedger(DEFAULT_LEDGER_PATH).records()
        assert records
        assert all(record["version"] == 1 for record in records)

    def test_match_cli_record_reports_engine_resources(self, tmp_path):
        from repro.cli import main

        ledger_path = tmp_path / "runs.jsonl"
        code = main([
            "match", "dbp15k/zh_en", "--matcher", "DInf", "--scale", "0.2",
            "--workers", "2", "--ledger", str(ledger_path),
        ])
        assert code == 0
        (record,) = RunLedger(ledger_path).records()
        assert record["resources"]["workers"] == 2
        assert record["resources"]["backend"] == "thread"
        assert record["resources"]["peak_rss_bytes"] > 0


class TestRunLedger:
    def test_append_then_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "sub" / "runs.jsonl")
        first = ledger.append(_record(matcher="DInf"))
        second = ledger.append(_record(matcher="CSLS"))
        assert ledger.records() == [first, second]
        assert [r["matcher"] for r in ledger] == ["DInf", "CSLS"]

    def test_construction_does_not_touch_filesystem(self, tmp_path):
        ledger = RunLedger(tmp_path / "never.jsonl")
        assert ledger.records() == []
        assert not ledger.path.exists()

    def test_append_rejects_invalid_record(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError):
            ledger.append({"schema": "nope"})
        assert not ledger.path.exists()

    def test_corrupt_line_reports_path_and_lineno(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record())
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": "wrong"}\n')
        with pytest.raises(ValueError, match=r"runs\.jsonl:2"):
            ledger.records()

    def test_latest_cells_keeps_last_record_per_cell(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record(matcher="CSLS", metrics={"f1": 0.1}))
        newer = ledger.append(_record(matcher="CSLS", metrics={"f1": 0.9}))
        ledger.append(_record(matcher="DInf"))
        cells = ledger.latest_cells()
        assert len(cells) == 2
        assert cells[("dbp15k/zh_en", "R", "CSLS")] == newer

    def test_as_ledger_coerces_paths_and_none(self, tmp_path):
        assert as_ledger(None) is None
        ledger = RunLedger(tmp_path / "runs.jsonl")
        assert as_ledger(ledger) is ledger
        assert as_ledger(str(tmp_path / "x.jsonl")).path.name == "x.jsonl"


class TestRunnerIntegration:
    def test_sweep_appends_one_validated_record_per_matcher(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        result = run_experiment(_config(), ledger=path)
        records = RunLedger(path).records()
        assert [r["matcher"] for r in records] == list(_config().matchers)
        fingerprint = config_fingerprint(_config())
        for record in records:
            assert record["status"] == "ok"
            assert record["fingerprint"] == fingerprint
            assert record["metrics"]["f1"] == pytest.approx(
                result.runs[record["matcher"]].f1
            )
            assert record["ranking"]["hits@1"] == pytest.approx(
                result.ranking["hits@1"]
            )
            assert record["cpu_seconds"] is not None
            assert record["engine"] is not None and "hits" in record["engine"]

    def test_cpu_seconds_lands_on_matcher_run_too(self, tmp_path):
        result = run_experiment(_config(), ledger=tmp_path / "runs.jsonl")
        assert all(
            run.cpu_seconds is not None and run.cpu_seconds >= 0.0
            for run in result.runs.values()
        )

    def test_no_ledger_means_no_file_and_no_cpu_timing(self, tmp_path):
        result = run_experiment(_config())
        assert list(tmp_path.iterdir()) == []
        assert all(run.cpu_seconds is None for run in result.runs.values())

    def test_failed_run_is_a_first_class_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_experiment(
            _config(),
            policy=SupervisorPolicy(on_error="skip"),
            matcher_factory=faulty_factory({"CSLS": AllocationFailure()}),
            ledger=path,
        )
        by_matcher = {r["matcher"]: r for r in RunLedger(path).records()}
        assert by_matcher["CSLS"]["status"] == "failed"
        assert by_matcher["CSLS"]["metrics"] is None
        assert by_matcher["CSLS"]["error"]["type"] == "ResourceBudgetExceeded"
        assert by_matcher["DInf"]["status"] == "ok"

    def test_degraded_run_records_fallback_and_chain(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_experiment(
            _config(),
            policy=SupervisorPolicy(timeout=0.1, on_error="fallback"),
            matcher_factory=faulty_factory({"Hun.": KernelStall(seconds=0.6)}),
            ledger=path,
        )
        by_matcher = {r["matcher"]: r for r in RunLedger(path).records()}
        record = by_matcher["Hun."]
        assert record["status"] == "degraded"
        assert record["fallback"] == "Greedy"
        assert record["chain"] == ["Hun.", "Greedy"]
        assert record["error"]["type"] == "DeadlineExceeded"
        assert record["metrics"]["f1"] == pytest.approx(
            by_matcher["DInf"]["metrics"]["f1"]
        )

    def test_ledger_accumulates_across_sweeps(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_experiment(_config(matchers=("DInf",)), ledger=path)
        run_experiment(_config(matchers=("DInf",), seed=1), ledger=path)
        records = RunLedger(path).records()
        assert len(records) == 2
        assert [r["seed"] for r in records] == [0, 1]
        assert records[0]["fingerprint"] != records[1]["fingerprint"]
