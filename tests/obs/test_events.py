"""Tests for the live event stream: ordering, scoping, sink behaviour."""

import io
import json

import pytest

from repro.obs import events


pytestmark = pytest.mark.obs


class FailingSink(events.EventSink):
    def __init__(self):
        self.closed = False

    def handle(self, event):
        raise RuntimeError("boom")

    def close(self):
        self.closed = True


class TestEmit:
    def test_disabled_by_default(self):
        assert not events.enabled()
        events.emit("nobody.listening", x=1)  # must be a silent no-op

    def test_emitting_scopes_the_sink(self):
        with events.emitting() as sink:
            assert events.enabled()
            events.emit("inside", value=1)
        assert not events.enabled()
        events.emit("outside")
        assert sink.names() == ["inside"]

    def test_events_are_ordered_and_contiguous(self):
        with events.emitting() as sink:
            for i in range(5):
                events.emit("tick", i=i)
        seqs = [event.seq for event in sink.events]
        assert seqs == sorted(seqs)
        assert seqs == list(range(seqs[0], seqs[0] + 5))
        assert [event.attrs["i"] for event in sink.events] == list(range(5))

    def test_every_sink_sees_every_event(self):
        first, second = events.MemorySink(), events.MemorySink()
        with events.emitting(first, second):
            events.emit("shared", k="v")
        assert first.names() == second.names() == ["shared"]
        assert first.events[0].seq == second.events[0].seq

    def test_failing_sink_is_dropped_not_fatal(self, capsys):
        bad = FailingSink()
        good = events.MemorySink()
        with events.emitting(bad, good):
            events.emit("first")
            events.emit("second")
        assert good.names() == ["first", "second"]
        assert "FailingSink" in capsys.readouterr().err
        assert bad.closed

    def test_event_as_dict_round_trips_json(self):
        with events.emitting() as sink:
            events.emit("serialise", f1=0.5, matcher="Hun.")
        payload = json.loads(json.dumps(sink.events[0].as_dict()))
        assert payload["name"] == "serialise"
        assert payload["attrs"] == {"f1": 0.5, "matcher": "Hun."}


class TestSinks:
    def test_human_sink_renders_one_line(self):
        stream = io.StringIO()
        sink = events.HumanSink(stream)
        with events.emitting(sink):
            events.emit("matcher.finish", matcher="Hun.", f1=0.88642)
        line = stream.getvalue()
        assert line.endswith("\n") and line.count("\n") == 1
        assert "matcher.finish" in line
        assert "matcher=Hun." in line
        assert "f1=0.886" in line  # floats render at 3 decimals

    def test_jsonl_sink_appends_valid_lines(self, tmp_path):
        path = tmp_path / "nested" / "events.jsonl"
        with events.emitting(events.JsonlSink(path)):
            events.emit("a", n=1)
            events.emit("b", n=2)
        lines = path.read_text(encoding="utf-8").splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [entry["name"] for entry in parsed] == ["a", "b"]
        assert parsed[0]["seq"] < parsed[1]["seq"]

    def test_jsonl_sink_lazy_file_creation(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with events.emitting(events.JsonlSink(path)):
            pass  # no events emitted
        assert not path.exists()

    def test_remove_sink_is_idempotent(self):
        sink = events.MemorySink()
        events.add_sink(sink)
        events.remove_sink(sink)
        events.remove_sink(sink)  # absent: no-op
        assert not events.enabled()


class TestDeterminism:
    def test_names_and_attrs_repeat_across_runs(self):
        """The deterministic contract: same emits, same stream (minus
        seq offsets and elapsed wall offsets)."""

        def run():
            with events.emitting() as sink:
                events.emit("start", preset="p")
                events.emit("finish", ok=3, failed=0)
            return [(e.name, dict(e.attrs)) for e in sink.events]

        assert run() == run()


class TestRunnerStream:
    def _sweep(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("DInf", "CSLS"), scale=0.2, seed=0,
        )
        with events.emitting() as sink:
            run_experiment(config)
        return sink

    def test_sweep_emits_canonical_sequence(self):
        names = self._sweep().names()
        assert names[0] == "experiment.start"
        assert names[-1] == "experiment.finish"
        assert "engine.scores_ready" in names
        assert "experiment.scores_ready" in names
        assert names.count("matcher.start") == 2
        assert names.count("matcher.finish") == 2
        # Every matcher.start precedes its matcher.finish.
        assert names.index("matcher.start") < names.index("matcher.finish")

    def test_sweep_events_carry_useful_attrs(self):
        sink = self._sweep()
        by_name = {}
        for event in sink.events:
            by_name.setdefault(event.name, event)
        assert by_name["experiment.start"].attrs["preset"] == "dbp15k/zh_en"
        finish = [e for e in sink.events if e.name == "matcher.finish"]
        assert all(e.attrs["status"] == "ok" for e in finish)
        assert all(0.0 <= e.attrs["f1"] <= 1.0 for e in finish)
        tallies = by_name["experiment.finish"].attrs
        assert (tallies["ok"], tallies["degraded"], tallies["failed"]) == (2, 0, 0)

    def test_sweep_stream_is_deterministic(self):
        def names_and_statuses(sink):
            return [
                (e.name, e.attrs.get("status"), e.attrs.get("matcher"))
                for e in sink.events
            ]

        assert names_and_statuses(self._sweep()) == names_and_statuses(self._sweep())

    def test_degradation_signal_reaches_the_stream(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment
        from repro.runtime.supervisor import SupervisorPolicy
        from repro.testing.faults import KernelStall, faulty_factory

        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("Hun.",), scale=0.2, seed=0,
        )
        with events.emitting() as sink:
            run_experiment(
                config,
                policy=SupervisorPolicy(timeout=0.1, on_error="fallback"),
                matcher_factory=faulty_factory({"Hun.": KernelStall(seconds=0.6)}),
            )
        names = sink.names()
        assert "supervisor.degrade" in names
        finish = [e for e in sink.events if e.name == "matcher.finish"][-1]
        assert finish.attrs["status"] == "degraded"
        assert finish.attrs["fallback"] == "Greedy"
