"""End-to-end integration tests across the whole pipeline.

Each test exercises a full path a user of the library would take:
generate data -> build embeddings -> match -> evaluate.
"""

import pytest

from repro.core import PAPER_MATCHERS, create_matcher
from repro.datasets import load_preset
from repro.eval import evaluate_pairs
from repro.experiments import build_embeddings
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _gold_local_pairs, run_experiment


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline_state(self):
        task = load_preset("dbp15k/zh_en", scale=0.4)
        embeddings = build_embeddings(task, "R", preset_name="dbp15k/zh_en")
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        gold = _gold_local_pairs(task, queries, candidates)
        return task, embeddings, queries, candidates, gold

    @pytest.mark.parametrize("matcher_name", PAPER_MATCHERS)
    def test_every_matcher_beats_chance(self, pipeline_state, matcher_name):
        task, emb, queries, candidates, gold = pipeline_state
        matcher = create_matcher(matcher_name)
        result = matcher.match(emb.source[queries], emb.target[candidates])
        metrics = evaluate_pairs(result.pairs, gold)
        chance = 1.0 / len(candidates)
        assert metrics.f1 > 10 * chance

    def test_advanced_matchers_beat_dinf(self, pipeline_state):
        task, emb, queries, candidates, gold = pipeline_state
        src, tgt = emb.source[queries], emb.target[candidates]

        def f1(name):
            return evaluate_pairs(create_matcher(name).match(src, tgt).pairs, gold).f1

        dinf = f1("DInf")
        assert f1("Hun.") > dinf
        assert f1("Sink.") > dinf
        assert f1("CSLS") >= dinf

    def test_trained_encoder_pipeline(self):
        # The real (non-oracle) encoders drive the same pipeline.
        task = load_preset("dbp15k/zh_en", scale=0.4)
        emb = build_embeddings(task, "rrea", preset_name="dbp15k/zh_en")
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        gold = _gold_local_pairs(task, queries, candidates)
        result = create_matcher("CSLS").match(emb.source[queries], emb.target[candidates])
        metrics = evaluate_pairs(result.pairs, gold)
        assert metrics.f1 > 0.1

    def test_name_fusion_improves_over_structure(self):
        task = load_preset("srprs/dbp_yg", scale=0.4)
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        gold = _gold_local_pairs(task, queries, candidates)

        def f1(regime):
            emb = build_embeddings(task, regime, preset_name="srprs/dbp_yg")
            result = create_matcher("DInf").match(
                emb.source[queries], emb.target[candidates]
            )
            return evaluate_pairs(result.pairs, gold).f1

        assert f1("NR") > f1("R")


class TestSettingsIntegration:
    def test_unmatchable_setting_full_run(self):
        config = ExperimentConfig(
            preset="dbp15k_plus/ja_en", input_regime="R",
            matchers=("DInf", "Hun.", "SMat"), scale=0.4,
        )
        result = run_experiment(config)
        # Constrained matchers abstain on surplus sources: fewer
        # predictions, better precision than greedy.
        assert result.runs["Hun."].metrics.num_predicted <= (
            result.runs["DInf"].metrics.num_predicted
        )
        assert result.runs["Hun."].metrics.precision > result.runs["DInf"].metrics.precision

    def test_non_one_to_one_setting_full_run(self):
        config = ExperimentConfig(
            preset="fb_dbp_mul", input_regime="R",
            matchers=("DInf", "Hun."), scale=0.6,
        )
        result = run_experiment(config)
        # Recall is structurally capped: one answer per source, several
        # gold targets per source.
        assert result.runs["DInf"].metrics.recall < result.runs["DInf"].metrics.precision

    def test_matcher_timing_accumulates_phases(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R", matchers=("Sink.",), scale=0.3,
        )
        result = run_experiment(config)
        assert result.runs["Sink."].seconds > 0.0


class TestReproducibility:
    def test_same_config_same_results(self):
        config = ExperimentConfig(
            preset="srprs/en_de", input_regime="G", matchers=("DInf", "RInf"),
            scale=0.3, seed=3,
        )
        a = run_experiment(config)
        b = run_experiment(config)
        for name in ("DInf", "RInf"):
            assert a.f1(name) == pytest.approx(b.f1(name))

    def test_different_seed_different_embeddings(self):
        base = dict(preset="srprs/en_de", input_regime="G",
                    matchers=("DInf",), scale=0.3)
        a = run_experiment(ExperimentConfig(**base, seed=1))
        b = run_experiment(ExperimentConfig(**base, seed=2))
        # Same dataset, different embedding noise: F1 may coincide but
        # the top-5 std fingerprint of the score matrix will differ.
        assert a.top5_std != b.top5_std
