"""The paper's Figure 1 / Example 1 as executable evidence.

Three cases of EA:

(a) identical KGs + ideal representation learning — even the simple
    DInf algorithm attains perfect results;
(b) structurally heterogeneous KGs — an ideal encoder still embeds
    equivalent entities apart, DInf produces false pairs;
(c) irregular embedding distributions (weak encoder on heterogeneous
    KGs) — DInf falls well short, and the collective 1-to-1 matcher
    restores a large share of the correct matches.
"""


from repro.core import DInf, Hungarian
from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
from repro.embedding.oracle import OracleConfig, OracleEncoder
from repro.eval import evaluate_pairs
from repro.experiments.runner import _gold_local_pairs


def run_case(heterogeneity, oracle):
    task = generate_aligned_pair(
        KGPairConfig(
            num_entities=150, num_relations=10, average_degree=4.0,
            heterogeneity=heterogeneity, seed=77,
            name=f"fig1-{heterogeneity}",
        )
    )
    embeddings = OracleEncoder(oracle).encode(task)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    src, tgt = embeddings.source[queries], embeddings.target[candidates]
    gold = _gold_local_pairs(task, queries, candidates)
    return {
        "DInf": evaluate_pairs(DInf().match(src, tgt).pairs, gold).f1,
        "Hun.": evaluate_pairs(Hungarian().match(src, tgt).pairs, gold).f1,
    }


class TestFigure1:
    def test_case_a_identical_kgs_ideal_encoder(self):
        """Identical structures + ideal encoder: DInf is already perfect."""
        scores = run_case(
            heterogeneity=0.0,
            oracle=OracleConfig(noise=0.0, duplicate_jitter=0.0, seed=1),
        )
        assert scores["DInf"] == 1.0

    def test_case_b_heterogeneous_kgs(self):
        """Heterogeneity: equivalent entities embed apart, DInf errs,
        and the 1-to-1 constraint already recovers part of the loss."""
        scores = run_case(
            heterogeneity=0.3,
            oracle=OracleConfig(noise=0.45, cluster_size=8,
                                cluster_spread=0.25, seed=1),
        )
        assert scores["DInf"] < 1.0
        assert scores["Hun."] >= scores["DInf"]

    def test_case_c_irregular_embeddings(self):
        """Weak encoder on heterogeneous KGs: DInf falls hard; the
        collective matcher restores many correct matches (the paper's
        (u3, v3)/(u5, v5) restoration argument)."""
        scores = run_case(
            heterogeneity=0.3,
            oracle=OracleConfig(noise=0.42, cluster_size=5, cluster_spread=0.2,
                                smoothing=0.7, noise_dispersion=0.4, seed=1),
        )
        assert scores["DInf"] < 0.7
        assert scores["Hun."] > scores["DInf"]

    def test_cases_order_by_difficulty(self):
        """F1 degrades monotonically from case (a) to case (c)."""
        case_a = run_case(0.0, OracleConfig(noise=0.0, duplicate_jitter=0.0, seed=1))
        case_b = run_case(
            0.3, OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25, seed=1)
        )
        case_c = run_case(
            0.3, OracleConfig(noise=0.42, cluster_size=5, cluster_spread=0.2,
                              smoothing=0.7, noise_dispersion=0.4, seed=1),
        )
        assert case_a["DInf"] > case_b["DInf"] > case_c["DInf"]
