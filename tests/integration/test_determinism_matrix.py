"""Determinism matrix: every registered matcher, bitwise-repeatable.

The library's contract (utils/rng.py, similarity/engine.py) is that the
same seed yields byte-identical predictions — regardless of whether the
engine cache serves the score matrix and of how many worker threads
carve it into chunks.  Each cell of the matrix below runs a matcher
twice under one configuration and compares raw prediction bytes.
"""

import numpy as np
import pytest

from repro.core.registry import available_matchers, create_matcher
from repro.similarity.engine import SimilarityEngine
from repro.utils.rng import ensure_rng

SEED = 1234
N_SOURCE, N_TARGET, DIM = 40, 44, 16


def _embeddings():
    rng = ensure_rng(SEED)
    source = rng.standard_normal((N_SOURCE, DIM))
    target = np.vstack([
        source[: min(N_SOURCE, N_TARGET)] + 0.05 * rng.standard_normal((min(N_SOURCE, N_TARGET), DIM)),
        rng.standard_normal((max(0, N_TARGET - N_SOURCE), DIM)),
    ])
    seed_pairs = np.stack([np.arange(10), np.arange(10)], axis=1)
    return source, target, seed_pairs


def _run_once(name, engine):
    source, target, seed_pairs = _embeddings()
    matcher = create_matcher(name)
    matcher.engine = engine
    fit = getattr(matcher, "fit", None)
    if fit is not None:
        fit(source, target, seed_pairs)
    result = matcher.match(source, target)
    return result.pairs.tobytes(), result.scores.tobytes()


def _run_twice(name, **engine_kwargs):
    with SimilarityEngine(**engine_kwargs) as engine:
        first = _run_once(name, engine)
        second = _run_once(name, engine)
    return first, second


@pytest.mark.parametrize("name", available_matchers())
class TestDeterminismMatrix:
    def test_repeat_run_byte_identical(self, name):
        first, second = _run_twice(name)
        assert first == second

    def test_cache_does_not_change_bytes(self, name):
        # Cached vs recomputed score matrices must be the same array;
        # with the cache on, the second run inside each pair is a hit.
        cached, cached2 = _run_twice(name, cache=True)
        uncached, uncached2 = _run_twice(name, cache=False)
        assert cached == cached2 == uncached == uncached2

    def test_workers_do_not_change_bytes(self, name):
        # The engine's chunk grid depends on shape and policy, never on
        # the worker count, so parallel runs are bitwise-identical.
        serial, serial2 = _run_twice(name, workers=1, chunk_rows=8)
        parallel, parallel2 = _run_twice(name, workers=4, chunk_rows=8)
        assert serial == serial2 == parallel == parallel2
