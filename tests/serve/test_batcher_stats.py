"""MicroBatcher observability: the /stats key contract and distributions.

Soak reports correlate response-tail spikes with straggler-window
flushes through these numbers, so the key set is a stability contract:
renaming or dropping a key silently breaks dashboards and the soak
analysis — this suite pins it, for the batcher's own ``stats()`` and
for the daemon's full ``/stats`` document.
"""

import threading

import numpy as np
import pytest

from repro.serve.batching import MicroBatcher

pytestmark = pytest.mark.serve

#: The contract: exactly these keys, exactly these distribution points.
TOP_KEYS = {"batches", "queries", "largest_batch", "mean_batch",
            "batch_size", "wait_ms"}
DIST_KEYS = {"p50", "p95", "p99", "max"}

#: The daemon-level /stats contract: index geometry + serving state +
#: process context + live SLO.  Dashboards and the soak harness key off
#: these names.
STATS_KEYS = {
    # index.stats()
    "metric", "n_clusters", "ntotal", "alive", "tombstones", "dim",
    "trained", "list_min", "list_mean", "list_max", "empty_lists",
    "imbalance",
    # serving state
    "delta_depth", "version", "compactions", "live_entities",
    "store_rows", "store_capacity", "nprobe",
    # subsystem blocks
    "cache", "batcher", "slo",
    # process context
    "uptime_seconds", "peak_rss_bytes",
}


def echo_handler(vectors, ks):
    return [int(k) for k in ks]


class TestKeyStability:
    def test_idle_batcher_reports_the_full_key_set(self):
        with MicroBatcher(echo_handler) as batcher:
            stats = batcher.stats()
        assert set(stats) == TOP_KEYS
        assert set(stats["batch_size"]) == DIST_KEYS
        assert set(stats["wait_ms"]) == DIST_KEYS
        assert all(value == 0.0 for value in stats["batch_size"].values())
        assert all(value == 0.0 for value in stats["wait_ms"].values())

    def test_keys_are_identical_before_and_after_traffic(self):
        with MicroBatcher(echo_handler, max_batch=4, max_wait=0.01) as batcher:
            idle = batcher.stats()
            for _ in range(5):
                batcher.submit([0.0], 3)
            busy = batcher.stats()
        assert set(idle) == set(busy) == TOP_KEYS
        assert set(busy["batch_size"]) == set(busy["wait_ms"]) == DIST_KEYS

    def test_all_values_are_json_plain_numbers(self):
        import json

        with MicroBatcher(echo_handler) as batcher:
            batcher.submit([0.0], 1)
            stats = batcher.stats()
        json.dumps(stats)  # no numpy scalars may leak onto the wire
        for summary in (stats["batch_size"], stats["wait_ms"]):
            assert all(isinstance(value, float) for value in summary.values())


class TestDaemonStatsContract:
    def test_handle_stats_reports_the_full_key_set(self, tmp_path):
        from repro.index import IVFIndex
        from repro.serve.http import AlignmentServer
        from repro.serve.state import ServingState
        from repro.storage import EmbeddingStore

        rng = np.random.default_rng(11)
        base = rng.normal(size=(12, 4)).astype(np.float64)
        store_path = tmp_path / "emb.store"
        store = EmbeddingStore.create(store_path, base.shape, "float64",
                                      capacity=24)
        store[:] = base
        store.update_checksum()
        store.close()
        index = IVFIndex(n_clusters=2).train(base).add(base)
        index.save(tmp_path / "ivf.json")
        state = ServingState.load(store_path, tmp_path / "ivf.json")
        server = AlignmentServer(("127.0.0.1", 0), state)
        try:
            stats = server.handle_stats()
        finally:
            server.close()
        assert set(stats) == STATS_KEYS
        assert stats["uptime_seconds"] >= 0.0
        assert stats["peak_rss_bytes"] > 0
        assert set(stats["batcher"]) == TOP_KEYS
        slo = stats["slo"]
        assert {"objective", "breaching", "windows"} <= set(slo)
        for window in slo["windows"].values():
            assert {"requests", "bad", "bad_ratio", "burn_rate",
                    "budget_left"} <= set(window)


class TestDistributions:
    def test_singleton_batches_collapse_the_size_distribution(self):
        with MicroBatcher(echo_handler, max_batch=1, max_wait=0.0) as batcher:
            for _ in range(8):
                batcher.submit([0.0], 1)
            stats = batcher.stats()
        assert stats["batch_size"]["p50"] == 1.0
        assert stats["batch_size"]["max"] == 1.0

    def test_coalesced_batches_register_sizes_above_one(self):
        release = threading.Barrier(6)

        with MicroBatcher(echo_handler, max_batch=6, max_wait=0.2) as batcher:

            def worker() -> None:
                release.wait()
                batcher.submit([0.0], 1)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats()

        assert stats["queries"] == 6
        assert stats["batch_size"]["max"] > 1.0
        assert stats["batch_size"]["max"] == float(stats["largest_batch"])

    def test_wait_reflects_the_straggler_window(self):
        """With a forced straggler wait, observed wait_ms is non-trivial
        but bounded by the configured window (plus scheduling slack)."""
        release = threading.Barrier(2)

        with MicroBatcher(echo_handler, max_batch=8, max_wait=0.05) as batcher:

            def worker() -> None:
                release.wait()
                batcher.submit([0.0], 1)

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats()

        assert stats["wait_ms"]["max"] > 0.0
        assert stats["wait_ms"]["max"] < 1000.0  # not unbounded

    def test_percentiles_are_ordered(self):
        with MicroBatcher(echo_handler, max_batch=3, max_wait=0.005) as batcher:
            for _ in range(20):
                batcher.submit([0.0], 1)
            stats = batcher.stats()
        for key in ("batch_size", "wait_ms"):
            summary = stats[key]
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
            assert summary["p99"] <= summary["max"]
