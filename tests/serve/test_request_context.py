"""Request-scoped telemetry: ids, span capture, access and slow logs.

Two layers of coverage: unit tests over :mod:`repro.serve.context`
(scopes, batch propagation across the dispatcher thread, the JSONL
access-log sink), and e2e tests against an in-process
:class:`~repro.serve.http.AlignmentServer` (so event sinks installed by
the test observe the daemon's emissions — a subprocess daemon would
swallow them).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.obs import events as obs_events
from repro.serve import context as serve_context
from repro.serve.batching import MicroBatcher
from repro.serve.http import AlignmentServer
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

pytestmark = pytest.mark.serve


class TestScopes:
    def test_no_scope_by_default(self):
        assert serve_context.current_request() is None
        assert serve_context.current_batch() == ()

    def test_request_scope_installs_and_restores(self):
        context = serve_context.RequestContext(request_id="abc")
        with serve_context.request_scope(context) as installed:
            assert installed is context
            assert serve_context.current_request() is context
        assert serve_context.current_request() is None

    def test_generated_ids_are_unique_hex(self):
        ids = {serve_context.new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(rid) == 16 for rid in ids)
        assert all(int(rid, 16) >= 0 for rid in ids)

    def test_traced_without_scope_is_a_cheap_no_op(self):
        with serve_context.traced("phase") as span:
            assert span is None

    def test_traced_appends_a_timed_child_span(self):
        context = serve_context.RequestContext(request_id="abc")
        with serve_context.request_scope(context):
            with serve_context.traced("phase", k=5) as span:
                assert span is not None
        assert [child.name for child in context.span.children] == ["phase"]
        child = context.span.children[0]
        assert child.attrs == {"k": 5}
        assert child.wall_seconds >= 0.0
        tree = context.span_tree()
        assert tree["children"][0]["name"] == "phase"


class TestBatchPropagation:
    def test_batcher_carries_contexts_to_the_dispatcher_thread(self):
        seen: list[tuple[serve_context.RequestContext, ...]] = []

        def handler(vectors, ks):
            seen.append(serve_context.current_batch())
            with serve_context.traced("score"):
                pass
            return [int(k) for k in ks]

        release = threading.Barrier(3)
        contexts = [
            serve_context.RequestContext(request_id=f"req-{i}")
            for i in range(3)
        ]

        with MicroBatcher(handler, max_batch=3, max_wait=0.2) as batcher:

            def worker(context) -> None:
                release.wait()
                with serve_context.request_scope(context):
                    batcher.submit([0.0], 1)

            threads = [
                threading.Thread(target=worker, args=(c,)) for c in contexts
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        observed = {c.request_id for batch in seen for c in batch}
        assert observed == {"req-0", "req-1", "req-2"}
        # traced() inside the handler reached every member's span tree,
        # nested under the batch span the dispatcher opened.
        for context in contexts:
            names = [span.name for span in context.span.walk()]
            assert "serve.batch" in names
            assert "score" in names
        # The scope was restored after dispatch.
        assert serve_context.current_batch() == ()

    def test_contextless_submitters_are_fine(self):
        with MicroBatcher(lambda v, ks: [0 for _ in ks]) as batcher:
            assert batcher.submit([0.0], 1) == 0


class TestAccessLogSink:
    def test_selects_serving_events_and_writes_canonical_json(self, tmp_path):
        path = tmp_path / "access.jsonl"
        sink = serve_context.AccessLogSink(path)
        with obs_events.emitting(sink):
            obs_events.emit("serve.access", request_id="r1", status=200)
            obs_events.emit("engine.similarity", rows=10)  # filtered out
            obs_events.emit("serve.slow", request_id="r1", span={"name": "x"})
            obs_events.emit("serve.http", line="bad request")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["event"] for line in lines] == [
            "serve.access", "serve.slow", "serve.http",
        ]
        for line in lines:
            record = json.loads(line)
            canonical = json.dumps(record, sort_keys=True,
                                   separators=(",", ":"))
            assert line == canonical


@pytest.fixture
def live_server(tmp_path):
    """An in-process daemon: events observable, ephemeral port."""
    rng = np.random.default_rng(13)
    base = rng.normal(size=(16, 4)).astype(np.float64)
    store_path = tmp_path / "emb.store"
    store = EmbeddingStore.create(store_path, base.shape, "float64",
                                  capacity=32)
    store[:] = base
    store.update_checksum()
    store.close()
    IVFIndex(n_clusters=2).train(base).add(base).save(tmp_path / "ivf.json")
    state = ServingState.load(store_path, tmp_path / "ivf.json")
    server = AlignmentServer(("127.0.0.1", 0), state, max_wait=0.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


def wait_for(predicate, timeout=5.0):
    """Poll until the server's post-response bookkeeping lands.

    The daemon records telemetry (histogram observe, SLO record, access
    events) in the handler's ``finally`` — *after* the response bytes
    reach the client — so a client-side assertion can race the server
    thread by a scheduling quantum.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def call(server, method, path, body=None, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestHttpRequestIds:
    def test_supplied_request_id_is_echoed(self, live_server):
        status, headers, _ = call(
            live_server, "GET", "/healthz",
            headers={"X-Request-Id": "my-trace-7"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "my-trace-7"

    def test_missing_request_id_is_generated(self, live_server):
        _, headers, _ = call(live_server, "GET", "/healthz")
        generated = headers["X-Request-Id"]
        assert len(generated) == 16
        int(generated, 16)

    def test_access_events_carry_id_status_and_latency(self, live_server):
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            call(live_server, "GET", "/healthz",
                 headers={"X-Request-Id": "probe-1"})
            assert wait_for(lambda: any(
                e.name == "serve.access" for e in sink.events
            ))
        access = [e for e in sink.events if e.name == "serve.access"]
        assert len(access) == 1
        attrs = access[0].attrs
        assert attrs["request_id"] == "probe-1"
        assert attrs["method"] == "GET"
        assert attrs["path"] == "/healthz"
        assert attrs["status"] == 200
        assert attrs["seconds"] >= 0.0

    def test_error_responses_are_access_logged_too(self, live_server):
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            try:
                call(live_server, "GET", "/no-such-path")
            except urllib.error.HTTPError as error:
                assert error.code == 404
                error.read()
            assert wait_for(lambda: any(
                e.name == "serve.access" for e in sink.events
            ))
        access = [e for e in sink.events if e.name == "serve.access"]
        assert access and access[0].attrs["status"] == 404

    def test_slow_requests_emit_their_span_tree(self, live_server):
        live_server.slow_threshold = 0.0  # every request is "slow"
        sink = obs_events.MemorySink()
        try:
            with obs_events.emitting(sink):
                body = json.dumps({"entity_id": 0, "k": 3}).encode("utf-8")
                call(live_server, "POST", "/query", body=body,
                     headers={"X-Request-Id": "slow-1"})
                assert wait_for(lambda: any(
                    e.name == "serve.slow" for e in sink.events
                ))
        finally:
            live_server.slow_threshold = 3600.0
        slow = [e for e in sink.events if e.name == "serve.slow"]
        assert len(slow) == 1
        attrs = slow[0].attrs
        assert attrs["request_id"] == "slow-1"
        span = attrs["span"]
        assert span["name"] == "serve.request"
        names = {child["name"] for child in span["children"]}
        assert "serve.batch" in names
        nested = {
            grandchild["name"]
            for child in span["children"]
            for grandchild in child["children"]
        }
        assert "serve.query" in nested


class TestMetricsEndpoint:
    def test_metrics_is_prometheus_text(self, live_server):
        call(live_server, "GET", "/healthz")
        status, headers, body = call(live_server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert "repro_serve_slo_breaching" in text
        assert "repro_serve_uptime_seconds" in text
        assert "repro_process_peak_rss_bytes" in text

    def test_scrapes_stay_out_of_the_latency_histogram(self, live_server):
        before = live_server.request_latency.count
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            call(live_server, "GET", "/metrics")
            call(live_server, "GET", "/metrics")
            call(live_server, "GET", "/healthz")
            # All three requests are access-logged in the same finally
            # block that does (or skips) the histogram observe, so three
            # serve.access events mean the bookkeeping has fully landed.
            assert wait_for(lambda: len([
                e for e in sink.events if e.name == "serve.access"
            ]) == 3)
        assert live_server.request_latency.count == before + 1

    def test_requests_feed_the_slo_tracker(self, live_server):
        def window_requests():
            return live_server.slo.snapshot()["windows"]["300s"]["requests"]

        before = window_requests()
        call(live_server, "GET", "/healthz")
        assert wait_for(lambda: window_requests() == before + 1)
