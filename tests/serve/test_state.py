"""Unit tests for ServingState: snapshots, compaction policy, recovery."""

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

pytestmark = pytest.mark.serve

DIM = 4


def make_state(tmp_path, n_base=20, capacity=64, seed=7, **kwargs):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n_base, DIM)).astype(np.float64)
    store_path = tmp_path / "emb.store"
    store = EmbeddingStore.create(store_path, base.shape, "float64",
                                  capacity=capacity)
    store[:] = base
    store.update_checksum()
    store.close()
    index = IVFIndex(n_clusters=3).train(base).add(base)
    index.save(tmp_path / "ivf.json")
    return ServingState.load(store_path, tmp_path / "ivf.json", **kwargs), base


class TestLifecycle:
    def test_mismatched_artifacts_are_rejected(self, tmp_path):
        state, base = make_state(tmp_path)
        small = IVFIndex(n_clusters=2).train(base[:5]).add(base[:5])
        with pytest.raises(ValueError, match="rebuild the index"):
            ServingState(state.store, small)

    def test_insert_assigns_sequential_ids_and_bumps_version(self, tmp_path):
        state, _ = make_state(tmp_path)
        rng = np.random.default_rng(1)
        first = state.insert(rng.normal(size=DIM))
        second = state.insert(rng.normal(size=DIM))
        assert (first, second) == (20, 21)
        assert state.snapshot.version == 2
        assert state.store.n_rows == 22  # durable before visible

    def test_delete_returns_false_for_unknown_ids(self, tmp_path):
        state, _ = make_state(tmp_path)
        assert state.delete(999) is False
        assert state.delete(3) is True
        assert state.delete(3) is False  # already gone

    def test_deleted_entities_disappear_from_queries(self, tmp_path):
        state, base = make_state(tmp_path)
        result = state.query(base[5], k=1)[0]
        assert result.entity_ids[0] == 5  # self-match at cosine 1.0
        state.delete(5)
        result = state.query(base[5], k=20)[0]
        assert 5 not in result.entity_ids

    def test_insert_with_live_id_replaces(self, tmp_path):
        state, base = make_state(tmp_path)
        replacement = -base[2]
        state.insert(replacement, entity_id=2)
        vector = state.get_vector(2)
        np.testing.assert_array_equal(vector, replacement)
        result = state.query(replacement, k=1)[0]
        assert result.entity_ids[0] == 2
        assert len(state.live_entity_ids()) == 20  # replaced, not added

    def test_store_capacity_exhaustion_surfaces(self, tmp_path):
        state, _ = make_state(tmp_path, n_base=4, capacity=5)
        state.insert(np.ones(DIM))
        with pytest.raises(ValueError, match="full"):
            state.insert(np.ones(DIM))


class TestSnapshots:
    def test_queries_pin_one_version(self, tmp_path):
        state, base = make_state(tmp_path)
        snap_before = state.snapshot
        state.insert(np.ones(DIM))
        snap_after = state.snapshot
        assert snap_before.version == 0 and snap_after.version == 1
        # The old snapshot still answers consistently: its index never
        # saw the insert.
        assert snap_before.index.ntotal == 20
        assert snap_after.index.ntotal == 21

    def test_delta_is_visible_at_nprobe_one(self, tmp_path):
        state, _ = make_state(tmp_path, nprobe=1)
        inserted = np.full(DIM, 25.0)
        eid = state.insert(inserted)
        result = state.query(inserted, k=1)[0]
        assert result.entity_ids[0] == eid


class TestCompaction:
    def test_deep_delta_triggers_migration(self, tmp_path):
        state, _ = make_state(tmp_path, max_delta=3)
        rng = np.random.default_rng(3)
        for _ in range(3):
            state.insert(rng.normal(size=DIM))
        stats = state.stats()
        assert stats["delta_depth"] == 0  # absorbed at the threshold
        assert stats["compactions"] == 0  # no retrain

    def test_skew_triggers_recluster(self, tmp_path):
        # All inserts land in one corner of the space: one list balloons
        # past skew_factor x mean and forces a retrain.
        state, _ = make_state(tmp_path, max_delta=10**6, skew_factor=2.0)
        rng = np.random.default_rng(4)
        for _ in range(40):
            state.insert(np.full(DIM, 50.0) + rng.normal(size=DIM))
        assert state.snapshot.compactions >= 1
        assert state.snapshot.index.n_tombstoned == 0

    def test_recluster_drops_tombstones(self, tmp_path):
        state, _ = make_state(tmp_path)
        for entity in range(5):
            state.delete(entity)
        assert state.snapshot.index.n_tombstoned == 5
        assert state.compact(recluster=True) is True
        assert state.snapshot.index.n_tombstoned == 0
        assert state.snapshot.index.ntotal == 15
        assert state.compact() is False  # nothing left to do

    def test_compact_preserves_results(self, tmp_path):
        state, base = make_state(tmp_path)
        rng = np.random.default_rng(5)
        for _ in range(4):
            state.insert(rng.normal(size=DIM))
        state.delete(1)
        queries = rng.normal(size=(3, DIM))
        before = state.query(queries, k=6)
        state.compact()
        after = state.query(queries, k=6)
        for old, new in zip(before, after):
            np.testing.assert_array_equal(old.entity_ids, new.entity_ids)
            np.testing.assert_array_equal(old.scores, new.scores)


class TestRecovery:
    def test_load_replays_durable_tail_rows(self, tmp_path):
        state, _ = make_state(tmp_path)
        rng = np.random.default_rng(6)
        inserted = rng.normal(size=(3, DIM))
        ids = [state.insert(vector) for vector in inserted]
        queries = rng.normal(size=(2, DIM))
        before = state.query(queries, k=5)
        state.store.close()

        # A fresh process: same artifacts, index never re-saved.
        recovered = ServingState.load(tmp_path / "emb.store", tmp_path / "ivf.json")
        assert sorted(recovered.live_entity_ids()) == sorted(state.live_entity_ids())
        for eid, vector in zip(ids, inserted):
            np.testing.assert_array_equal(recovered.get_vector(eid), vector)
        after = recovered.query(queries, k=5)
        for old, new in zip(before, after):
            np.testing.assert_array_equal(old.entity_ids, new.entity_ids)
            np.testing.assert_array_equal(old.scores, new.scores)

    def test_store_shorter_than_index_is_rejected(self, tmp_path):
        state, base = make_state(tmp_path)
        state.store.close()
        bigger = IVFIndex(n_clusters=2)
        grown = np.concatenate([base, np.ones((1, DIM))])
        bigger.train(grown).add(grown)
        bigger.save(tmp_path / "big.ivf.json")
        with pytest.raises(ValueError, match="holds only"):
            ServingState.load(tmp_path / "emb.store", tmp_path / "big.ivf.json")


class TestStats:
    def test_stats_shape(self, tmp_path):
        state, _ = make_state(tmp_path)
        state.insert(np.ones(DIM))
        stats = state.stats()
        assert stats["delta_depth"] == 1
        assert stats["version"] == 1
        assert stats["live_entities"] == 21
        assert stats["store_rows"] == 21
        assert stats["store_capacity"] == 64
