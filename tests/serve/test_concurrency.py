"""Concurrency determinism for the serving layer.

Eight threads hammer one ``ServingState`` through the micro-batcher —
half querying, half inserting — and every response must be explainable
by exactly one published snapshot version (no torn reads): the returned
``version`` selects a ground truth computed afterwards by brute-force
rescoring the first ``base + version`` vectors, and ids *and* score
bytes must match it exactly.  A second pass pins the batching-neutrality
half of the contract: coalesced batches are bitwise equal to unbatched
single queries.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.serve.batching import MicroBatcher
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

pytestmark = pytest.mark.serve

N_BASE, DIM = 32, 5
QUERY_THREADS = 4
INSERT_THREADS = 4
QUERIES_PER_THREAD = 25
INSERTS_PER_THREAD = 8
K = 6


@pytest.fixture
def state(tmp_path):
    rng = np.random.default_rng(77)
    base = rng.normal(size=(N_BASE, DIM)).astype(np.float64)
    store_path = tmp_path / "emb.store"
    store = EmbeddingStore.create(
        store_path, base.shape, "float64",
        capacity=N_BASE + INSERT_THREADS * INSERTS_PER_THREAD,
    )
    store[:] = base
    store.update_checksum()
    store.close()
    index = IVFIndex(n_clusters=4).train(base).add(base)
    index.save(tmp_path / "ivf.json")
    # Compaction disabled (thresholds out of reach) so snapshot version
    # == number of inserts, which the ground-truth replay keys on.
    return ServingState.load(
        store_path, tmp_path / "ivf.json",
        max_delta=10**6, skew_factor=1e9,
    )


def brute_force(query, vectors, k):
    """Ground truth under the serving total order (-score, position)."""
    from repro.similarity.metrics import rowwise_scores

    scores = rowwise_scores("cosine", query, vectors)
    order = np.lexsort((np.arange(len(scores)), -scores))[: min(k, len(scores))]
    return order, scores[order]


def test_interleaved_queries_and_inserts_see_no_torn_state(state):
    rng = np.random.default_rng(99)
    query_vectors = rng.normal(size=(QUERY_THREADS, QUERIES_PER_THREAD, DIM))
    insert_vectors = rng.normal(size=(INSERT_THREADS, INSERTS_PER_THREAD, DIM))

    def handle(vectors, ks):
        return [
            sliced
            for result, k in zip(state.query(vectors, max(ks)), ks)
            for sliced in [
                type(result)(
                    entity_ids=result.entity_ids[:k],
                    scores=result.scores[:k],
                    version=result.version,
                )
            ]
        ]

    observed: list = []
    observed_lock = threading.Lock()
    start = threading.Barrier(QUERY_THREADS + INSERT_THREADS)
    failures: list = []

    with MicroBatcher(handle, max_batch=8, max_wait=0.001) as batcher:

        def query_worker(worker: int) -> None:
            try:
                start.wait()
                for vector in query_vectors[worker]:
                    result = batcher.submit(vector, K)
                    with observed_lock:
                        observed.append((vector, result))
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        def insert_worker(worker: int) -> None:
            try:
                start.wait()
                for vector in insert_vectors[worker]:
                    state.insert(vector)
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=query_worker, args=(i,))
            for i in range(QUERY_THREADS)
        ] + [
            threading.Thread(target=insert_worker, args=(i,))
            for i in range(INSERT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not failures, failures
    assert len(observed) == QUERY_THREADS * QUERIES_PER_THREAD

    # Replay: position order in the final snapshot is insertion order,
    # so "the state at version v" is exactly the first base+v vectors.
    snap = state.snapshot
    total = snap.index.ntotal
    assert total == N_BASE + INSERT_THREADS * INSERTS_PER_THREAD
    all_vectors = snap.index.reconstruct(np.arange(total))
    versions_seen = set()
    for vector, result in observed:
        version = result.version
        assert 0 <= version <= total - N_BASE
        versions_seen.add(version)
        want_ids, want_scores = brute_force(vector, all_vectors[: N_BASE + version], K)
        np.testing.assert_array_equal(result.entity_ids, want_ids)
        np.testing.assert_array_equal(result.scores, want_scores)
    # The run actually interleaved: queries observed more than one version.
    assert len(versions_seen) > 1


def test_batched_results_equal_unbatched(state):
    rng = np.random.default_rng(13)
    vectors = rng.normal(size=(24, DIM))

    unbatched = [state.query(vector, K)[0] for vector in vectors]

    def handle(batch, ks):
        return [
            type(result)(
                entity_ids=result.entity_ids[:k],
                scores=result.scores[:k],
                version=result.version,
            )
            for result, k in zip(state.query(batch, max(ks)), ks)
        ]

    batched: dict[int, object] = {}
    lock = threading.Lock()
    start = threading.Barrier(8)

    # A long straggler wait + a barrier force real coalescing: the
    # batcher must see multi-row batches, not 24 singletons.
    with MicroBatcher(handle, max_batch=8, max_wait=0.05) as batcher:

        def worker(worker_index: int) -> None:
            start.wait()
            for row in range(worker_index, len(vectors), 8):
                result = batcher.submit(vectors[row], K)
                with lock:
                    batched[row] = result

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = batcher.stats()

    assert stats["queries"] == len(vectors)
    assert stats["largest_batch"] > 1  # coalescing actually happened
    for row, single in enumerate(unbatched):
        result = batched[row]
        np.testing.assert_array_equal(result.entity_ids, single.entity_ids)
        np.testing.assert_array_equal(result.scores, single.scores)
        assert result.version == single.version


def test_mixed_k_batches_slice_exactly(state):
    """Coalescing queries with different k never cross-contaminates."""
    rng = np.random.default_rng(5)
    vectors = rng.normal(size=(10, DIM))
    ks = [1 + (row % 5) for row in range(len(vectors))]

    def handle(batch, batch_ks):
        return [
            type(result)(
                entity_ids=result.entity_ids[:k],
                scores=result.scores[:k],
                version=result.version,
            )
            for result, k in zip(state.query(batch, max(batch_ks)), batch_ks)
        ]

    results: dict[int, object] = {}
    lock = threading.Lock()
    start = threading.Barrier(10)
    with MicroBatcher(handle, max_batch=10, max_wait=0.05) as batcher:

        def worker(row: int) -> None:
            start.wait()
            result = batcher.submit(vectors[row], ks[row])
            with lock:
                results[row] = result

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    for row, k in enumerate(ks):
        single = state.query(vectors[row], k)[0]
        result = results[row]
        assert len(result.entity_ids) == min(k, state.snapshot.index.n_alive)
        np.testing.assert_array_equal(result.entity_ids, single.entity_ids)
        np.testing.assert_array_equal(result.scores, single.scores)
