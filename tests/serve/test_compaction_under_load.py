"""ServingState compaction racing live query traffic.

The serving contract is snapshot isolation: writes and forced
re-clusters swap one immutable snapshot at a time, so a query thread
must never observe a half-migrated index — no exceptions, no
tombstoned ids after the delete was acknowledged, no version
time-travel.  The soak harness exercises this through the daemon; this
test pins it in-process where the interleaving is dense and the
failure, if any, is attributable.

Race-free assertion scheme: each reader records ``(t_start, ids,
version)`` per query; the writer records the monotonic completion time
of every delete.  A deleted id in a result is only a violation when
the query *started* after the delete returned (the delete's snapshot
swap happened-before the query's snapshot read).  Checking post-hoc
against those timestamps makes the test deterministic under any
thread schedule.
"""

import threading
import time

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

pytestmark = pytest.mark.serve

DIM = 4
N_BASE = 40
N_READERS = 4
ROUNDS = 12


def make_state(tmp_path, capacity=256):
    rng = np.random.default_rng(7)
    base = rng.normal(size=(N_BASE, DIM)).astype(np.float64)
    store_path = tmp_path / "emb.store"
    store = EmbeddingStore.create(store_path, base.shape, "float64",
                                  capacity=capacity)
    store[:] = base
    store.update_checksum()
    store.close()
    index = IVFIndex(n_clusters=3).train(base).add(base)
    index.save(tmp_path / "ivf.json")
    return ServingState.load(store_path, tmp_path / "ivf.json"), base


def test_queries_racing_forced_recluster_never_error_or_see_tombstones(
    tmp_path,
):
    state, base = make_state(tmp_path)
    stop = threading.Event()
    errors: list[BaseException] = []
    # One observation log per reader: (t_start, entity_ids, version).
    observations: list[list[tuple[float, tuple, int]]] = [
        [] for _ in range(N_READERS)
    ]

    def reader(slot: int) -> None:
        rng = np.random.default_rng(100 + slot)
        log = observations[slot]
        try:
            while not stop.is_set():
                probe = base[rng.integers(0, N_BASE)]
                t_start = time.monotonic()
                result = state.query(probe, k=8)[0]
                log.append(
                    (t_start, tuple(int(i) for i in result.entity_ids),
                     result.version)
                )
        except BaseException as error:  # noqa: BLE001 - surfaced post-join
            errors.append(error)

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(N_READERS)
    ]
    for thread in threads:
        thread.start()

    # Writer (main thread): insert pinned ids, delete a prefix of them,
    # and force a full re-cluster every round while the readers hammer.
    rng = np.random.default_rng(9)
    deleted_at: dict[int, float] = {}
    next_id = N_BASE
    try:
        for _ in range(ROUNDS):
            fresh = []
            for _ in range(3):
                state.insert(rng.normal(size=DIM), entity_id=next_id)
                fresh.append(next_id)
                next_id += 1
            for entity_id in fresh[:2]:
                assert state.delete(entity_id) is True
                deleted_at[entity_id] = time.monotonic()
            state.compact(recluster=True)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

    assert errors == [], f"queries raised under compaction: {errors!r}"

    total = sum(len(log) for log in observations)
    assert total > 0, "readers never got a query through"

    for log in observations:
        last_version = -1
        for t_start, ids, version in log:
            # Snapshot versions never run backwards within one thread.
            assert version >= last_version
            last_version = version
            for entity_id in ids:
                completed = deleted_at.get(entity_id)
                assert completed is None or t_start <= completed, (
                    f"query started after delete({entity_id}) was "
                    f"acknowledged but still returned it"
                )

    # Quiesced end state: the survivors are exactly base + the one
    # undeleted insert per round, and a final query agrees.
    live = set(int(i) for i in state.live_entity_ids())
    expected = set(range(N_BASE)) | {
        entity_id for entity_id in range(N_BASE, next_id)
        if entity_id not in deleted_at
    }
    assert live == expected
    result = state.query(base[0], k=len(live))[0]
    assert deleted_at.keys().isdisjoint(int(i) for i in result.entity_ids)
