"""Shared fixtures for the serving test pass.

``served_artifacts`` builds one deterministic store + index pair per
session (seeded PCG64 → identical bytes on every run and machine — the
golden files depend on this); ``daemon`` boots the real ``repro serve``
CLI in a subprocess on an ephemeral port and tears it down with SIGTERM.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.index import IVFIndex
from repro.storage import EmbeddingStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Fixture geometry — small enough for millisecond queries, big enough
#: that every inverted list is populated.
N_ROWS, DIM, N_CLUSTERS, CAPACITY = 48, 6, 4, 96


@dataclass
class Artifacts:
    store: Path
    index: Path
    vectors: np.ndarray


@pytest.fixture(scope="session")
def served_artifacts(tmp_path_factory) -> Artifacts:
    root = tmp_path_factory.mktemp("serve-artifacts")
    rng = np.random.default_rng(20240807)
    vectors = rng.normal(size=(N_ROWS, DIM)).astype(np.float64)
    store_path = root / "entities.store"
    store = EmbeddingStore.create(
        store_path, vectors.shape, "float64", capacity=CAPACITY
    )
    store[:] = vectors
    store.update_checksum()
    store.close()
    index_path = root / "entities.ivf.json"
    IVFIndex(n_clusters=N_CLUSTERS).train(vectors).add(vectors).save(index_path)
    return Artifacts(store=store_path, index=index_path, vectors=vectors)


class Daemon:
    """One ``repro serve`` subprocess plus a tiny urllib client."""

    def __init__(self, artifacts: Artifacts, tmp_path: Path, extra_args=()):
        self.events_path = tmp_path / f"events-{os.getpid()}-{time.monotonic_ns()}.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(artifacts.store),
                "--index", str(artifacts.index),
                "--port", "0",
                "--events", str(self.events_path),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = self.process.stdout.readline().strip()
        if "serving on" not in banner:
            err = self.process.stderr.read()
            raise RuntimeError(f"daemon failed to boot: {banner!r} / {err}")
        self.port = int(banner.rsplit(":", 1)[1])

    def request(self, method: str, path: str, body: bytes | None = None):
        """(status, raw bytes) for one request; HTTP errors are returned."""
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def terminate(self) -> int:
        """SIGTERM and wait; returns the exit code (0 = clean)."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            self.process.kill()
            self.process.communicate()
        return self.process.returncode

    def __enter__(self) -> "Daemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


@pytest.fixture
def daemon(served_artifacts, tmp_path):
    with Daemon(served_artifacts, tmp_path) as running:
        yield running


@pytest.fixture
def writable_artifacts(served_artifacts, tmp_path) -> Artifacts:
    """A private copy of the artifacts for tests that mutate the store."""
    import shutil

    store = tmp_path / served_artifacts.store.name
    index = tmp_path / served_artifacts.index.name
    shutil.copy(served_artifacts.store, store)
    shutil.copy(served_artifacts.index, index)
    return Artifacts(store=store, index=index, vectors=served_artifacts.vectors)
