"""Golden end-to-end tests for the ``repro serve`` daemon.

The daemon is the real CLI in a real subprocess on an ephemeral port,
driven with stdlib ``urllib``.  Response bodies are asserted *byte-equal*
against committed golden files — the canonical-JSON wire format plus the
deterministic fixture make every run (and every machine) produce the
same bytes.  The kill-and-restart tests pin the PR 7 durability
contract at the serving layer: SIGTERM, restart from the same artifacts,
bitwise-identical responses, and zero index rebuild (no ``index.train``
event in the restart's event log).

Regenerate goldens after an intentional wire-format change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/serve/test_http_e2e.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from .conftest import Daemon

pytestmark = pytest.mark.serve

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: One fixed query vector (values chosen by hand, not drawn — the
#: golden bytes embed its exact scores).
QUERY_VECTOR = [0.5, -1.25, 0.75, 2.0, -0.5, 1.5]


def check_golden(name: str, payload: bytes) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        path.parent.mkdir(exist_ok=True)
        path.write_bytes(payload)
        return
    assert path.exists(), (
        f"missing golden {path}; run with REPRO_UPDATE_GOLDENS=1 to create it"
    )
    assert payload == path.read_bytes(), (
        f"response bytes diverged from {path.name}:\n"
        f"  got:    {payload!r}\n"
        f"  golden: {path.read_bytes()!r}"
    )


def post(daemon, path, obj):
    return daemon.request("POST", path, json.dumps(obj).encode("utf-8"))


class TestGoldenResponses:
    def test_healthz(self, daemon):
        status, body = daemon.request("GET", "/healthz")
        assert status == 200
        check_golden("healthz.json", body)

    def test_query_by_vector(self, daemon):
        status, body = post(daemon, "/query", {"vector": QUERY_VECTOR, "k": 5})
        assert status == 200
        check_golden("query_vector_k5.json", body)

    def test_query_by_entity(self, daemon):
        status, body = post(daemon, "/query", {"entity_id": 7, "k": 3})
        assert status == 200
        check_golden("query_entity7_k3.json", body)
        # The entity matches itself first at score 1 (cosine).
        matches = json.loads(body)["matches"]
        assert matches[0]["entity_id"] == 7
        assert matches[0]["score"] == pytest.approx(1.0)

    def test_explain(self, daemon):
        status, body = daemon.request("GET", "/entity/3/explain")
        assert status == 200
        check_golden("explain_entity3.json", body)
        report = json.loads(body)
        assert report["query"] == 3
        assert report["candidates"][0]["candidate"] == 3  # raw top-1 is itself

    def test_stats_shape(self, daemon):
        status, body = daemon.request("GET", "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["ntotal"] == 48
        assert stats["alive"] == 48
        assert stats["delta_depth"] == 0
        assert stats["version"] == 0
        assert stats["trained"] is True
        assert set(stats) >= {"imbalance", "cache", "batcher", "nprobe"}

    def test_error_paths(self, daemon):
        assert daemon.request("GET", "/nope")[0] == 404
        assert daemon.request("GET", "/entity/999/explain")[0] == 404
        assert post(daemon, "/query", {"k": 2})[0] == 400
        assert post(daemon, "/query", {"vector": QUERY_VECTOR, "k": 0})[0] == 400
        assert post(daemon, "/delete", {"entity_id": "x"})[0] == 400
        status, body = daemon.request("POST", "/query", b"not json")
        assert status == 400


class TestKillAndRestart:
    PROBES = (
        ("GET", "/healthz", None),
        ("POST", "/query", {"vector": QUERY_VECTOR, "k": 5}),
        ("POST", "/query", {"entity_id": 7, "k": 3}),
        ("GET", "/entity/3/explain", None),
    )

    def collect(self, daemon):
        responses = []
        for method, path, obj in self.PROBES:
            body = json.dumps(obj).encode("utf-8") if obj is not None else None
            responses.append(daemon.request(method, path, body))
        return responses

    def test_sigterm_then_restart_is_bitwise_identical(
        self, served_artifacts, tmp_path
    ):
        first = Daemon(served_artifacts, tmp_path)
        before = self.collect(first)
        assert first.terminate() == 0  # clean SIGTERM exit

        with Daemon(served_artifacts, tmp_path) as second:
            after = self.collect(second)
            events = second.events_path.read_text().splitlines()
        assert before == after
        # Zero rebuild: the restart loaded persisted artifacts; the
        # quantizer was never retrained.
        names = [json.loads(line)["name"] for line in events]
        assert "serve.start" in names
        assert not any(name.startswith("index.train") for name in names)

    def test_inserts_survive_the_kill(self, writable_artifacts, tmp_path):
        inserted = [9.0, -3.0, 1.0, 4.0, -2.0, 0.5]
        probe = {"vector": inserted, "k": 2}
        first = Daemon(writable_artifacts, tmp_path)
        status, body = post(first, "/insert", {"vector": inserted})
        assert status == 200
        entity_id = json.loads(body)["entity_id"]
        status, before = post(first, "/query", probe)
        assert status == 200
        assert json.loads(before)["matches"][0]["entity_id"] == entity_id
        assert first.terminate() == 0

        # The store grew durably; the restart recovers the row into the
        # delta layer (no index re-save, no rebuild) and the top match
        # is the same entity with the same score bytes.
        with Daemon(writable_artifacts, tmp_path) as second:
            status, after = post(second, "/query", probe)
            assert status == 200
            assert json.loads(after)["matches"] == json.loads(before)["matches"]
            events = second.events_path.read_text().splitlines()
        payloads = [json.loads(line) for line in events]
        assert any(event["name"] == "serve.recovered" for event in payloads)
        assert not any(event["name"].startswith("index.train") for event in payloads)
