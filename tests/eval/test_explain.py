"""Tests for decision explainability."""

import numpy as np
import pytest

from repro.eval.explain import explain_decision, format_report


@pytest.fixture()
def hub_scores():
    """Target 0 is a hub; the gold match for each query is the diagonal."""
    n = 6
    scores = np.full((n, n), 0.2)
    np.fill_diagonal(scores, 0.55)
    scores[:, 0] = 0.6
    return scores


class TestExplainDecision:
    def test_candidates_sorted_by_raw_score(self, random_scores):
        report = explain_decision(random_scores, query=3)
        raw = [view.raw_score for view in report.candidates]
        assert raw == sorted(raw, reverse=True)

    def test_raw_ranks_consistent(self, random_scores):
        report = explain_decision(random_scores, query=0)
        assert report.candidates[0].raw_rank == 1
        assert report.candidates[0].candidate == int(random_scores[0].argmax())

    def test_greedy_choice_is_argmax(self, random_scores):
        for query in (0, 5, 19):
            report = explain_decision(random_scores, query=query)
            assert report.greedy_choice == int(random_scores[query].argmax())

    def test_hub_detected_in_notes(self, hub_scores):
        report = explain_decision(hub_scores, query=2)
        assert any("hub" in note for note in report.notes)
        assert report.candidates[0].competing_queries > 0

    def test_csls_overturn_reported(self, hub_scores):
        report = explain_decision(hub_scores, query=2)
        assert report.greedy_choice == 0         # everyone greedy-picks the hub
        assert report.csls_choice == 2           # CSLS restores the diagonal
        assert any("CSLS overturns" in note for note in report.notes)

    def test_reciprocal_disagreement_reported(self, hub_scores):
        report = explain_decision(hub_scores, query=3)
        assert report.reciprocal_choice == 3
        assert any("reciprocal" in note for note in report.notes)

    def test_crowded_scores_note(self):
        crowded = 0.5 + 0.001 * np.arange(36).reshape(6, 6)
        report = explain_decision(crowded, query=0)
        assert any("crowded" in note for note in report.notes)

    def test_clean_decision_has_no_notes(self, identity_scores):
        report = explain_decision(identity_scores, query=4)
        assert report.greedy_choice == 4
        assert report.csls_choice == 4
        assert report.notes == ()

    def test_best_accessor(self, hub_scores):
        report = explain_decision(hub_scores, query=1)
        assert report.best("raw") == report.greedy_choice
        assert report.best("csls") == report.csls_choice
        assert report.best("reciprocal") == report.reciprocal_choice
        with pytest.raises(ValueError, match="strategy"):
            report.best("quantum")

    def test_invalid_query(self, random_scores):
        with pytest.raises(ValueError, match="out of range"):
            explain_decision(random_scores, query=99)

    def test_top_k_clamped(self, random_scores):
        report = explain_decision(random_scores, query=0, top_k=100)
        assert len(report.candidates) == 20


class TestFormatReport:
    def test_plain_render(self, hub_scores):
        report = explain_decision(hub_scores, query=2)
        text = format_report(report)
        assert "Decision report for query 2" in text
        assert "hub" in text

    def test_named_render(self, hub_scores):
        report = explain_decision(hub_scores, query=2)
        text = format_report(
            report,
            query_name="Berlin",
            candidate_names={0: "Paris(hub)", 2: "Berlin_de"},
        )
        assert "Berlin" in text
        assert "Paris(hub)" in text
