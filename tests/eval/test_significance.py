"""Tests for bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest

from repro.eval.significance import (
    bootstrap_f1_interval,
    paired_bootstrap_test,
    per_query_outcomes,
)


class TestPerQueryOutcomes:
    def test_basic(self):
        predicted = [(0, 0), (1, 5), (2, 2)]
        gold = [(0, 0), (1, 1), (2, 2)]
        outcomes = per_query_outcomes(predicted, gold, num_queries=4)
        np.testing.assert_array_equal(outcomes, [1, 0, 1, 0])

    def test_mean_equals_f1_under_one_to_one(self):
        from repro.eval.metrics import evaluate_pairs

        predicted = [(i, i if i % 3 else i + 1) for i in range(9)]
        gold = [(i, i) for i in range(9)]
        outcomes = per_query_outcomes(predicted, gold, num_queries=9)
        assert outcomes.mean() == pytest.approx(evaluate_pairs(predicted, gold).f1)

    def test_missing_prediction_counts_zero(self):
        outcomes = per_query_outcomes([(0, 0)], [(0, 0), (1, 1)], num_queries=2)
        np.testing.assert_array_equal(outcomes, [1, 0])

    def test_invalid_num_queries(self):
        with pytest.raises(ValueError, match="num_queries"):
            per_query_outcomes([], [], num_queries=0)


class TestBootstrapInterval:
    def test_point_is_mean(self, rng):
        outcomes = rng.integers(0, 2, size=100).astype(float)
        interval = bootstrap_f1_interval(outcomes, seed=0)
        assert interval.point == pytest.approx(outcomes.mean())

    def test_interval_brackets_point(self, rng):
        outcomes = rng.integers(0, 2, size=100).astype(float)
        interval = bootstrap_f1_interval(outcomes, seed=0)
        assert interval.lower <= interval.point <= interval.upper

    def test_degenerate_vector(self):
        interval = bootstrap_f1_interval(np.ones(50), seed=0)
        assert interval.lower == interval.upper == 1.0

    def test_wider_at_higher_confidence(self, rng):
        outcomes = rng.integers(0, 2, size=80).astype(float)
        narrow = bootstrap_f1_interval(outcomes, confidence=0.8, seed=0)
        wide = bootstrap_f1_interval(outcomes, confidence=0.99, seed=0)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_narrower_with_more_data(self, rng):
        small = bootstrap_f1_interval(
            rng.integers(0, 2, size=30).astype(float), seed=0
        )
        large = bootstrap_f1_interval(
            rng.integers(0, 2, size=3000).astype(float), seed=0
        )
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_deterministic(self, rng):
        outcomes = rng.integers(0, 2, size=50).astype(float)
        a = bootstrap_f1_interval(outcomes, seed=7)
        b = bootstrap_f1_interval(outcomes, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            bootstrap_f1_interval(np.empty(0))
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_f1_interval(np.ones(5), confidence=1.0)


class TestPairedBootstrap:
    def test_clear_winner_significant(self, rng):
        b = rng.integers(0, 2, size=200).astype(float)
        a = np.minimum(b + (rng.random(200) < 0.3), 1.0)  # a strictly better
        comparison = paired_bootstrap_test(a, b, seed=0)
        assert comparison.mean_difference > 0
        assert comparison.significant
        assert comparison.p_value < 0.05

    def test_identical_not_significant(self, rng):
        outcomes = rng.integers(0, 2, size=200).astype(float)
        comparison = paired_bootstrap_test(outcomes, outcomes, seed=0)
        assert comparison.mean_difference == 0.0
        assert not comparison.significant

    def test_tiny_difference_not_significant(self, rng):
        b = rng.integers(0, 2, size=60).astype(float)
        a = b.copy()
        a[0] = 1.0
        b[0] = 0.0
        comparison = paired_bootstrap_test(a, b, seed=0)
        assert not comparison.significant

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            paired_bootstrap_test(np.ones(3), np.ones(4))

    def test_matcher_comparison_end_to_end(self, medium_task):
        """Hun. vs DInf on crowded embeddings: a significant paired win."""
        from repro.core import DInf, Hungarian
        from repro.embedding.oracle import OracleConfig, OracleEncoder

        emb = OracleEncoder(
            OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25, seed=3)
        ).encode(medium_task)
        pairs = medium_task.test_index_pairs()
        src, tgt = emb.source[pairs[:, 0]], emb.target[pairs[:, 1]]
        gold = [(i, i) for i in range(len(pairs))]
        n = len(pairs)
        hun = per_query_outcomes(Hungarian().match(src, tgt).pairs, gold, n)
        dinf = per_query_outcomes(DInf().match(src, tgt).pairs, gold, n)
        comparison = paired_bootstrap_test(hun, dinf, seed=0)
        assert comparison.mean_difference > 0
