"""Tests for alignment metrics."""

import numpy as np
import pytest

from repro.eval.metrics import evaluate_pairs, hits_at_k, mean_reciprocal_rank


class TestEvaluatePairs:
    def test_perfect(self):
        gold = [(0, 0), (1, 1)]
        metrics = evaluate_pairs(gold, gold)
        assert metrics.precision == metrics.recall == metrics.f1 == 1.0

    def test_all_wrong(self):
        metrics = evaluate_pairs([(0, 1)], [(0, 0)])
        assert metrics.f1 == 0.0

    def test_precision_recall_asymmetry(self):
        # 1 correct of 2 predicted, gold has 4.
        metrics = evaluate_pairs([(0, 0), (1, 2)], [(0, 0), (1, 1), (2, 2), (3, 3)])
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(0.25)
        assert metrics.f1 == pytest.approx(2 * 0.5 * 0.25 / 0.75)

    def test_one_to_one_equality(self):
        # Under 1-to-1 evaluation every query answered: P == R == F1
        # (the identity the paper notes for Tables 4-5).
        gold = [(i, i) for i in range(10)]
        predicted = [(i, i) for i in range(7)] + [(i, i + 1) for i in range(7, 10)]
        metrics = evaluate_pairs(predicted, gold)
        assert metrics.precision == metrics.recall == metrics.f1

    def test_duplicates_not_double_counted(self):
        metrics = evaluate_pairs([(0, 0), (0, 0)], [(0, 0)])
        assert metrics.num_predicted == 1
        assert metrics.f1 == 1.0

    def test_empty_prediction(self):
        metrics = evaluate_pairs([], [(0, 0)])
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_empty_gold(self):
        metrics = evaluate_pairs([(0, 0)], [])
        assert metrics.recall == 0.0

    def test_numpy_input(self):
        metrics = evaluate_pairs(np.array([[0, 0]]), np.array([[0, 0]]))
        assert metrics.f1 == 1.0

    def test_as_row(self):
        row = evaluate_pairs([(0, 0)], [(0, 0)]).as_row()
        assert row == {"P": 1.0, "R": 1.0, "F1": 1.0}


class TestHitsAtK:
    def test_hits_at_1(self, identity_scores):
        gold = np.arange(15)
        assert hits_at_k(identity_scores, gold, k=1) == 1.0

    def test_hits_at_k_monotone(self, random_scores, rng):
        gold = rng.integers(0, 20, size=20)
        values = [hits_at_k(random_scores, gold, k=k) for k in (1, 3, 5, 10, 20)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0

    def test_manual_case(self):
        scores = np.array([[0.3, 0.5, 0.2]])
        assert hits_at_k(scores, [1], k=1) == 1.0
        assert hits_at_k(scores, [0], k=1) == 0.0
        assert hits_at_k(scores, [0], k=2) == 1.0

    def test_shape_mismatch(self, random_scores):
        with pytest.raises(ValueError, match="gold_targets"):
            hits_at_k(random_scores, np.arange(3), k=1)

    def test_invalid_k(self, random_scores):
        with pytest.raises(ValueError, match="k must be"):
            hits_at_k(random_scores, np.arange(20), k=0)

    def test_empty(self):
        assert hits_at_k(np.empty((0, 5)), np.empty(0, dtype=int), k=1) == 0.0


class TestMRR:
    def test_perfect(self, identity_scores):
        assert mean_reciprocal_rank(identity_scores, np.arange(15)) == 1.0

    def test_rank_two(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert mean_reciprocal_rank(scores, [1]) == pytest.approx(0.5)

    def test_bounded(self, random_scores, rng):
        gold = rng.integers(0, 20, size=20)
        mrr = mean_reciprocal_rank(random_scores, gold)
        assert 1 / 20 <= mrr <= 1.0

    def test_mrr_at_least_hits1(self, random_scores, rng):
        gold = rng.integers(0, 20, size=20)
        assert mean_reciprocal_rank(random_scores, gold) >= hits_at_k(
            random_scores, gold, k=1
        ) - 1e-12


class TestRankingDiagnostics:
    def test_perfect_space(self, identity_scores):
        from repro.eval.metrics import ranking_diagnostics

        gold = [(i, i) for i in range(15)]
        diag = ranking_diagnostics(identity_scores, gold)
        assert diag["hits@1"] == 1.0
        assert diag["mrr"] == 1.0

    def test_monotone_in_k(self, random_scores, rng):
        from repro.eval.metrics import ranking_diagnostics

        gold = [(i, int(rng.integers(0, 20))) for i in range(20)]
        diag = ranking_diagnostics(random_scores, gold, ks=(1, 5, 10, 20))
        assert diag["hits@1"] <= diag["hits@5"] <= diag["hits@10"] <= diag["hits@20"]
        assert diag["hits@20"] == 1.0

    def test_multi_gold_per_query(self):
        import numpy as np

        from repro.eval.metrics import ranking_diagnostics

        scores = np.array([[0.9, 0.8, 0.1]])
        diag = ranking_diagnostics(scores, [(0, 0), (0, 1)], ks=(1,))
        # One of the two gold links is rank 1, the other rank 2.
        assert diag["hits@1"] == 0.5
        assert diag["mrr"] == (1.0 + 0.5) / 2

    def test_empty_gold(self, random_scores):
        from repro.eval.metrics import ranking_diagnostics

        diag = ranking_diagnostics(random_scores, [])
        assert diag["mrr"] == 0.0

    def test_hits_gap_explains_matcher_headroom(self, medium_task, oracle_embeddings):
        """hits@5 >> hits@1 is the raw-ranking headroom the global
        matchers convert into F1 (the library's diagnostic purpose)."""
        from repro.eval.metrics import ranking_diagnostics
        from repro.similarity.metrics import similarity_matrix

        pairs = medium_task.test_index_pairs()
        scores = similarity_matrix(
            oracle_embeddings.source[pairs[:, 0]],
            oracle_embeddings.target[pairs[:, 1]],
        )
        gold = [(i, i) for i in range(len(pairs))]
        diag = ranking_diagnostics(scores, gold)
        assert diag["hits@5"] >= diag["hits@1"]
