"""Tests for score-distribution diagnostics."""

import numpy as np
import pytest

from repro.eval.analysis import hubness_report, top_k_std


class TestTopKStd:
    def test_constant_rows_zero(self):
        assert top_k_std(np.full((5, 10), 0.3)) == 0.0

    def test_matches_manual(self, random_scores):
        got = top_k_std(random_scores, k=5)
        tops = np.sort(random_scores, axis=1)[:, -5:]
        assert got == pytest.approx(tops.std(axis=1).mean())

    def test_single_column_returns_zero(self):
        assert top_k_std(np.ones((4, 1)), k=5) == 0.0

    def test_discriminative_scores_have_higher_std(self, rng):
        crowded = 0.5 + 0.01 * rng.random((10, 20))
        spread = rng.random((10, 20))
        assert top_k_std(spread) > top_k_std(crowded)


class TestHubnessReport:
    def test_uniform_diagonal_no_hubs(self, identity_scores):
        report = hubness_report(identity_scores)
        assert report.max_in_degree == 1
        assert report.isolated_fraction == 0.0

    def test_single_hub_detected(self):
        scores = np.full((8, 8), 0.1)
        scores[:, 3] = 0.9
        report = hubness_report(scores)
        assert report.max_in_degree == 8
        assert report.isolated_fraction == pytest.approx(7 / 8)

    def test_concentration_ordering(self, rng):
        diagonal = np.eye(10) + 0.01 * rng.random((10, 10))
        hubby = np.full((10, 10), 0.1)
        hubby[:, 0] = 0.9
        assert (
            hubness_report(hubby).concentration
            > hubness_report(diagonal).concentration
        )

    def test_concentration_bounds(self, random_scores):
        report = hubness_report(random_scores)
        assert 0.0 <= report.concentration <= 1.0
