"""Tests for the matcher registry."""

import pytest

from repro.core.base import Matcher
from repro.core.registry import (
    PAPER_MATCHERS,
    available_matchers,
    create_matcher,
    register_matcher,
)


class TestRegistry:
    def test_paper_matchers_all_available(self):
        available = set(available_matchers())
        for name in PAPER_MATCHERS:
            assert name in available

    def test_variants_available(self):
        assert "RInf-wr" in available_matchers()
        assert "RInf-pb" in available_matchers()

    def test_create_returns_matcher(self):
        for name in PAPER_MATCHERS:
            matcher = create_matcher(name)
            assert isinstance(matcher, Matcher)
            assert matcher.name == name

    def test_kwargs_forwarded(self):
        sink = create_matcher("Sink.", iterations=7)
        assert sink.iterations == 7

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            create_matcher("Magic")

    def test_register_custom(self):
        class Custom(Matcher):
            name = "Custom"

            def match(self, source, target):
                raise NotImplementedError

        register_matcher("Custom-test", Custom)
        try:
            assert isinstance(create_matcher("Custom-test"), Custom)
        finally:
            from repro.core import registry

            registry._FACTORIES.pop("Custom-test", None)

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_matcher("DInf", lambda: None)


class TestGreedyLadderTerminal:
    def test_greedy_registered(self):
        matcher = create_matcher("Greedy")
        assert matcher.name == "Greedy"

    def test_greedy_matches_dinf_output(self):
        import numpy as np

        rng = np.random.default_rng(0)
        source = rng.normal(size=(6, 4))
        target = rng.normal(size=(7, 4))
        greedy = create_matcher("Greedy").match(source, target)
        dinf = create_matcher("DInf").match(source, target)
        assert greedy.as_set() == dinf.as_set()
