"""Tests for greedy decoding and DInf."""

import numpy as np
import pytest

from repro.core.greedy import DInf, greedy_match


class TestGreedyMatch:
    def test_picks_row_argmax(self, random_scores):
        pairs, scores = greedy_match(random_scores)
        np.testing.assert_array_equal(pairs[:, 1], random_scores.argmax(axis=1))
        np.testing.assert_allclose(scores, random_scores.max(axis=1))

    def test_one_pair_per_source(self, random_scores):
        pairs, _ = greedy_match(random_scores)
        np.testing.assert_array_equal(pairs[:, 0], np.arange(20))

    def test_allows_target_collisions(self):
        scores = np.array([[0.9, 0.1], [0.8, 0.2], [0.7, 0.3]])
        pairs, _ = greedy_match(scores)
        assert pairs[:, 1].tolist() == [0, 0, 0]  # no 1-to-1 constraint

    def test_rectangular(self, rng):
        scores = rng.random((5, 9))
        pairs, _ = greedy_match(scores)
        assert pairs.shape == (5, 2)
        assert pairs[:, 1].max() < 9

    def test_perfect_on_diagonal(self, identity_scores):
        pairs, _ = greedy_match(identity_scores)
        np.testing.assert_array_equal(pairs[:, 0], pairs[:, 1])

    def test_rejects_nan(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            greedy_match(bad)


class TestDInf:
    def test_name(self):
        assert DInf().name == "DInf"

    def test_recovers_noisy_identity(self, rng):
        latent = rng.normal(size=(30, 16))
        source = latent + 0.05 * rng.normal(size=latent.shape)
        target = latent + 0.05 * rng.normal(size=latent.shape)
        result = DInf().match(source, target)
        correct = sum(1 for s, t in result.pairs if s == t)
        assert correct >= 28

    def test_metric_configurable(self, rng):
        source = rng.normal(size=(10, 4))
        target = rng.normal(size=(10, 4))
        result = DInf(metric="euclidean").match(source, target)
        assert len(result.pairs) == 10

    def test_memory_is_one_similarity_matrix(self, rng):
        result = DInf().match(rng.normal(size=(10, 4)), rng.normal(size=(12, 4)))
        assert result.peak_bytes == 10 * 12 * 8

    def test_from_scores(self, identity_scores):
        result = DInf().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}
