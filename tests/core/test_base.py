"""Tests for the matcher base plumbing (MatchResult, PipelineMatcher)."""

import numpy as np
import pytest

from repro.core.base import MatchResult, PipelineMatcher
from repro.core.greedy import greedy_decoder


class TestMatchResult:
    def test_pairs_and_scores_coerced(self):
        result = MatchResult([[0, 1], [2, 3]], [0.5, 0.7])
        assert result.pairs.dtype == np.int64
        assert result.scores.dtype == np.float64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            MatchResult([[0, 1]], [0.5, 0.7])

    def test_empty_result(self):
        result = MatchResult(np.empty((0, 2)), np.empty(0))
        assert result.as_set() == set()

    def test_as_set(self):
        result = MatchResult([[0, 1], [2, 3]], [0.5, 0.7])
        assert result.as_set() == {(0, 1), (2, 3)}

    def test_seconds_and_peak_default_zero(self):
        result = MatchResult([[0, 0]], [1.0])
        assert result.seconds == 0.0
        assert result.peak_bytes == 0


class TestPipelineMatcher:
    def test_match_equals_match_scores(self, rng):
        from repro.similarity.metrics import cosine_similarity

        matcher = PipelineMatcher(decoder=greedy_decoder, name="test")
        source = rng.normal(size=(8, 4))
        target = rng.normal(size=(10, 4))
        via_embeddings = matcher.match(source, target)
        via_scores = matcher.match_scores(cosine_similarity(source, target))
        assert via_embeddings.as_set() == via_scores.as_set()

    def test_metric_forwarded(self, rng):
        source = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 4))
        cos = PipelineMatcher(decoder=greedy_decoder, metric="cosine").match(source, target)
        euc = PipelineMatcher(decoder=greedy_decoder, metric="euclidean").match(source, target)
        # Different metrics may produce different matchings; both valid shapes.
        assert cos.pairs.shape == euc.pairs.shape

    def test_no_decoder_raises(self, rng):
        matcher = PipelineMatcher()
        with pytest.raises(NotImplementedError):
            matcher.match(rng.normal(size=(3, 2)), rng.normal(size=(3, 2)))

    def test_transform_callable_applied(self, identity_scores):
        # A transform that inverts scores flips the greedy decision.
        inverter = PipelineMatcher(
            transform=lambda s, w, m: -s, decoder=greedy_decoder
        )
        result = inverter.match_scores(identity_scores)
        plain = PipelineMatcher(decoder=greedy_decoder).match_scores(identity_scores)
        assert result.as_set() != plain.as_set()

    def test_similarity_memory_declared(self, rng):
        matcher = PipelineMatcher(decoder=greedy_decoder)
        result = matcher.match(rng.normal(size=(10, 4)), rng.normal(size=(12, 4)))
        assert result.peak_bytes >= 10 * 12 * 8

    def test_timing_recorded(self, rng):
        matcher = PipelineMatcher(decoder=greedy_decoder)
        result = matcher.match(rng.normal(size=(50, 8)), rng.normal(size=(50, 8)))
        assert result.stopwatch.seconds("similarity") > 0.0
        assert result.stopwatch.seconds("decode") >= 0.0

    def test_base_matcher_match_scores_raises(self):
        from repro.core.base import Matcher

        class Dummy(Matcher):
            def match(self, source, target):
                raise NotImplementedError

        with pytest.raises(NotImplementedError, match="requires embeddings"):
            Dummy().match_scores(np.ones((2, 2)))
