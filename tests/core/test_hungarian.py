"""Tests for the from-scratch Hungarian (Jonker-Volgenant) solver."""

import numpy as np
import pytest
import scipy.optimize

from repro.core.hungarian import Hungarian, solve_assignment_max, solve_assignment_min


class TestSolveAssignmentMin:
    def test_identity_cost(self):
        cost = 1.0 - np.eye(4)
        assignment = solve_assignment_min(cost)
        np.testing.assert_array_equal(assignment, np.arange(4))

    def test_matches_scipy_on_random(self, rng):
        for _ in range(20):
            cost = rng.random((12, 12))
            ours = solve_assignment_min(cost)
            rows, cols = scipy.optimize.linear_sum_assignment(cost)
            our_total = cost[np.arange(12), ours].sum()
            scipy_total = cost[rows, cols].sum()
            assert our_total == pytest.approx(scipy_total, abs=1e-9)

    def test_is_permutation(self, rng):
        assignment = solve_assignment_min(rng.random((30, 30)))
        assert sorted(assignment.tolist()) == list(range(30))

    def test_handles_negative_costs(self, rng):
        cost = rng.normal(size=(10, 10))
        ours = solve_assignment_min(cost)
        rows, cols = scipy.optimize.linear_sum_assignment(cost)
        assert cost[np.arange(10), ours].sum() == pytest.approx(
            cost[rows, cols].sum(), abs=1e-9
        )

    def test_handles_ties(self):
        cost = np.zeros((5, 5))
        assignment = solve_assignment_min(cost)
        assert sorted(assignment.tolist()) == list(range(5))

    def test_empty(self):
        assert solve_assignment_min(np.empty((0, 0))).size == 0

    def test_single_cell(self):
        np.testing.assert_array_equal(solve_assignment_min(np.array([[3.0]])), [0])

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError, match="square"):
            solve_assignment_min(rng.random((3, 4)))


class TestSolveAssignmentMax:
    def test_maximizes(self, rng):
        scores = rng.random((8, 8))
        pairs, pair_scores = solve_assignment_max(scores)
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        assert pair_scores.sum() == pytest.approx(scores[rows, cols].sum(), abs=1e-9)

    def test_scipy_backend_agrees_on_total(self, rng):
        scores = rng.random((15, 15))
        native_pairs, native_scores = solve_assignment_max(scores, backend="native")
        scipy_pairs, scipy_scores = solve_assignment_max(scores, backend="scipy")
        assert native_scores.sum() == pytest.approx(scipy_scores.sum(), abs=1e-9)

    def test_rectangular_more_sources_abstains(self, rng):
        scores = rng.random((10, 6))
        pairs, _ = solve_assignment_max(scores)
        assert len(pairs) == 6  # only n_target pairs possible
        assert len(set(pairs[:, 1].tolist())) == 6

    def test_rectangular_more_targets(self, rng):
        scores = rng.random((6, 10))
        pairs, _ = solve_assignment_max(scores)
        assert len(pairs) == 6
        assert len(set(pairs[:, 0].tolist())) == 6

    def test_unknown_backend(self, rng):
        with pytest.raises(ValueError, match="backend"):
            solve_assignment_max(rng.random((3, 3)), backend="cuda")


class TestHungarianMatcher:
    def test_perfect_on_diagonal(self, identity_scores):
        result = Hungarian().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_one_to_one_constraint(self, rng):
        result = Hungarian().match(rng.normal(size=(20, 8)), rng.normal(size=(20, 8)))
        assert len(set(result.pairs[:, 1].tolist())) == 20

    def test_recovers_from_hub_collapse(self):
        n = 8
        scores = np.full((n, n), 0.2)
        np.fill_diagonal(scores, 0.55)
        scores[:, 0] = 0.6  # hub: greedy collapses, assignment cannot
        result = Hungarian().match_scores(scores)
        correct = sum(1 for s, t in result.pairs if s == t)
        assert correct >= n - 1

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            Hungarian(backend="gpu")

    def test_backend_qualities_match(self, medium_task, oracle_embeddings):
        pairs = medium_task.test_index_pairs()
        src = oracle_embeddings.source[pairs[:, 0]]
        tgt = oracle_embeddings.target[pairs[:, 1]]
        native = Hungarian(backend="native").match(src, tgt)
        via_scipy = Hungarian(backend="scipy").match(src, tgt)
        gold = {(i, i) for i in range(len(pairs))}
        assert len(native.as_set() & gold) == len(via_scipy.as_set() & gold)
