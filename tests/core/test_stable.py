"""Tests for stable matching (Gale-Shapley / SMat)."""

import numpy as np

from repro.core.stable import StableMatch, gale_shapley, is_stable


class TestGaleShapley:
    def test_perfect_on_diagonal(self, identity_scores):
        pairs, _ = gale_shapley(identity_scores)
        np.testing.assert_array_equal(pairs[:, 0], pairs[:, 1])

    def test_output_is_stable(self, rng):
        for _ in range(10):
            scores = rng.random((12, 12))
            pairs, _ = gale_shapley(scores)
            assert is_stable(scores, pairs)

    def test_square_matches_everyone(self, random_scores):
        pairs, _ = gale_shapley(random_scores)
        assert len(pairs) == 20
        assert len(set(pairs[:, 0].tolist())) == 20
        assert len(set(pairs[:, 1].tolist())) == 20

    def test_more_sources_leaves_surplus_unmatched(self, rng):
        scores = rng.random((10, 6))
        pairs, _ = gale_shapley(scores)
        assert len(pairs) == 6
        assert is_stable(scores, pairs)

    def test_more_targets_matches_all_sources(self, rng):
        scores = rng.random((6, 10))
        pairs, _ = gale_shapley(scores)
        assert len(pairs) == 6
        assert is_stable(scores, pairs)

    def test_scores_returned_match_pairs(self, random_scores):
        pairs, pair_scores = gale_shapley(random_scores)
        np.testing.assert_allclose(
            pair_scores, random_scores[pairs[:, 0], pairs[:, 1]]
        )

    def test_textbook_instance(self):
        # Classic 3x3 instance with known source-optimal outcome.
        # Source preferences (by score): s0: t0>t1>t2, s1: t0>t2>t1, s2: t1>t0>t2
        scores = np.array([
            [0.9, 0.5, 0.1],
            [0.9, 0.1, 0.5],
            [0.5, 0.9, 0.1],
        ])
        pairs, _ = gale_shapley(scores)
        matched = dict(map(tuple, pairs))
        assert is_stable(scores, pairs)
        # t0 prefers s0 or s1 equally scored 0.9? ties broken stably; just
        # require a perfect matching of all three.
        assert sorted(matched.values()) == [0, 1, 2]

    def test_source_optimality(self, rng):
        # Deferred acceptance with sources proposing yields the
        # source-optimal stable matching: no other stable matching gives
        # any source a strictly better partner.  Spot-check by comparing
        # with the target-proposing matching.
        scores = rng.random((8, 8))
        source_pairs, _ = gale_shapley(scores)
        target_pairs_t, _ = gale_shapley(scores.T)
        source_partner = dict(map(tuple, source_pairs))
        target_partner = {int(s): int(t) for t, s in target_pairs_t}
        for source, partner in source_partner.items():
            other = target_partner[source]
            assert scores[source, partner] >= scores[source, other] - 1e-12


class TestIsStable:
    def test_detects_blocking_pair(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        bad_pairs = np.array([[0, 1], [1, 0]])  # both prefer the swap
        assert not is_stable(scores, bad_pairs)

    def test_accepts_good_matching(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        good_pairs = np.array([[0, 0], [1, 1]])
        assert is_stable(scores, good_pairs)

    def test_unmatched_entities_can_block(self, rng):
        # An unmatched source prefers anything; if some target also
        # prefers it over its partner, that's a blocking pair.
        scores = np.array([[0.5, 0.4], [0.9, 0.1]])
        pairs = np.array([[0, 0]])  # s1 unmatched, but t0 prefers s1
        assert not is_stable(scores, pairs)


class TestStableMatchMatcher:
    def test_name(self):
        assert StableMatch().name == "SMat"

    def test_memory_declares_preference_lists(self, rng):
        result = StableMatch().match(rng.normal(size=(20, 8)), rng.normal(size=(20, 8)))
        # similarity + preference lists / rank lookup / argsort buffers
        assert result.peak_bytes == 20 * 20 * 8 * 5

    def test_stability_end_to_end(self, rng):
        source, target = rng.normal(size=(15, 6)), rng.normal(size=(15, 6))
        from repro.similarity.metrics import cosine_similarity

        result = StableMatch().match(source, target)
        assert is_stable(cosine_similarity(source, target), result.pairs)
