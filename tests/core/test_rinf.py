"""Tests for reciprocal matching (RInf and variants)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_match
from repro.core.rinf import (
    RInf,
    RInfPb,
    RInfWr,
    preference_scores,
    rank_matrix,
    reciprocal_rank_scores,
)


class TestPreferenceScores:
    def test_formula(self, random_scores):
        p_st, p_ts = preference_scores(random_scores)
        np.testing.assert_allclose(
            p_st, random_scores - random_scores.max(axis=0, keepdims=True) + 1.0
        )
        np.testing.assert_allclose(
            p_ts, random_scores - random_scores.max(axis=1, keepdims=True) + 1.0
        )

    def test_range(self, random_scores):
        p_st, p_ts = preference_scores(random_scores)
        assert p_st.max() <= 1.0 + 1e-12
        assert p_ts.max() <= 1.0 + 1e-12

    def test_column_best_gets_preference_one(self, random_scores):
        p_st, _ = preference_scores(random_scores)
        best_rows = random_scores.argmax(axis=0)
        cols = np.arange(random_scores.shape[1])
        np.testing.assert_allclose(p_st[best_rows, cols], 1.0)


class TestRankMatrix:
    def test_row_ranks(self):
        prefs = np.array([[0.1, 0.9, 0.5]])
        ranks = rank_matrix(prefs, axis=1)
        np.testing.assert_array_equal(ranks, [[3, 1, 2]])

    def test_column_ranks(self):
        prefs = np.array([[0.1], [0.9], [0.5]])
        ranks = rank_matrix(prefs, axis=0)
        np.testing.assert_array_equal(ranks.ravel(), [3, 1, 2])

    def test_each_row_is_permutation(self, random_scores):
        ranks = rank_matrix(random_scores, axis=1)
        for row in ranks:
            assert sorted(row.tolist()) == list(range(1, 21))

    def test_invalid_axis(self, random_scores):
        with pytest.raises(ValueError, match="axis"):
            rank_matrix(random_scores, axis=2)


class TestReciprocalRankScores:
    def test_best_value_is_minus_one(self, identity_scores):
        fused = reciprocal_rank_scores(identity_scores)
        # Mutually-first pairs average rank 1 (negated).
        np.testing.assert_allclose(np.diag(fused), -1.0)

    def test_range(self, random_scores):
        fused = reciprocal_rank_scores(random_scores)
        n = random_scores.shape[0]
        assert fused.max() <= -1.0
        assert fused.min() >= -float(n)


class TestRInf:
    def test_perfect_on_diagonal(self, identity_scores):
        result = RInf().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_resolves_hub_better_than_greedy(self):
        n = 8
        scores = np.full((n, n), 0.2)
        np.fill_diagonal(scores, 0.55)
        scores[:, 0] = 0.6
        greedy_correct = (greedy_match(scores)[0][:, 1] == np.arange(n)).sum()
        rinf_correct = sum(1 for s, t in RInf().match_scores(scores).pairs if s == t)
        assert rinf_correct > greedy_correct

    def test_memory_heaviest_of_transforms(self, rng):
        source, target = rng.normal(size=(20, 4)), rng.normal(size=(20, 4))
        from repro.core.csls import CSLS

        rinf_mem = RInf().match(source, target).peak_bytes
        csls_mem = CSLS().match(source, target).peak_bytes
        assert rinf_mem > csls_mem


class TestRInfWr:
    def test_equivalent_to_csls_k1_decisions(self, random_scores):
        # (P_st + P_ts)/2 is an affine shift of the CSLS(k=1) matrix, so
        # both variants make identical greedy decisions — the identity the
        # original paper's Table 6 exhibits.
        from repro.core.csls import CSLS

        wr = RInfWr().match_scores(random_scores)
        csls = CSLS(k=1).match_scores(random_scores)
        assert wr.as_set() == csls.as_set()

    def test_cheaper_than_full_rinf(self, rng):
        source, target = rng.normal(size=(30, 8)), rng.normal(size=(30, 8))
        wr = RInfWr().match(source, target)
        full = RInf().match(source, target)
        assert wr.peak_bytes < full.peak_bytes

    def test_perfect_on_diagonal(self, identity_scores):
        result = RInfWr().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}


class TestRInfPb:
    def test_perfect_on_diagonal(self, identity_scores):
        result = RInfPb(num_blocks=3).match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_single_block_equals_full_rinf(self, random_scores):
        pb = RInfPb(num_blocks=1).match_scores(random_scores)
        full = RInf().match_scores(random_scores)
        assert pb.as_set() == full.as_set()

    def test_every_source_matched(self, random_scores):
        result = RInfPb(num_blocks=4).match_scores(random_scores)
        assert sorted(result.pairs[:, 0].tolist()) == list(range(20))

    def test_memory_below_full_rinf(self, rng):
        source, target = rng.normal(size=(64, 8)), rng.normal(size=(64, 8))
        pb = RInfPb(num_blocks=8).match(source, target)
        full = RInf().match(source, target)
        assert pb.peak_bytes < full.peak_bytes

    def test_quality_between_wr_and_full(self, medium_task):
        from repro.embedding.oracle import OracleConfig, OracleEncoder
        from repro.eval.metrics import evaluate_pairs

        emb = OracleEncoder(
            OracleConfig(noise=0.5, cluster_size=8, cluster_spread=0.25,
                         smoothing=0.5, seed=3)
        ).encode(medium_task)
        pairs = medium_task.test_index_pairs()
        src, tgt = emb.source[pairs[:, 0]], emb.target[pairs[:, 1]]
        gold = [(i, i) for i in range(len(pairs))]

        def f1(matcher):
            return evaluate_pairs(matcher.match(src, tgt).pairs, gold).f1

        wr, pb, full = f1(RInfWr()), f1(RInfPb(num_blocks=4)), f1(RInf())
        assert pb >= wr - 0.06
        assert pb <= full + 0.06

    def test_invalid_blocks(self):
        with pytest.raises(ValueError, match="num_blocks"):
            RInfPb(num_blocks=0)


class TestRInfK:
    """The Appendix C generalisation: top-k mean normaliser."""

    def test_k1_is_equation_2(self, random_scores):
        import numpy as np

        p_st, p_ts = preference_scores(random_scores, k=1)
        np.testing.assert_allclose(
            p_st, random_scores - random_scores.max(axis=0, keepdims=True) + 1.0
        )

    def test_k_general_formula(self, random_scores):
        import numpy as np

        k = 3
        p_st, _ = preference_scores(random_scores, k=k)
        col_ref = np.sort(random_scores, axis=0)[-k:, :].mean(axis=0)
        np.testing.assert_allclose(p_st, random_scores - col_ref[None, :] + 1.0)

    def test_invalid_k(self, random_scores):
        import pytest

        with pytest.raises(ValueError, match="k must be"):
            preference_scores(random_scores, k=0)
        with pytest.raises(ValueError, match="k must be"):
            RInf(k=0)

    def test_matcher_accepts_k(self, identity_scores):
        result = RInf(k=2).match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}
