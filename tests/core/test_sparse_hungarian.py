"""Differential tests for the sparse (LAPJVsp-style) Hungarian solver.

The solver must agree with the dense Jonker-Volgenant solver and with
scipy wherever the problems coincide (full candidate sets), degrade
gracefully where they cannot (truncated candidate graphs: maximum
cardinality first, then maximum score, with an explicit shortfall), and
hold the O(n k) memory discipline the out-of-core path exists for.
"""

import numpy as np
import pytest
import scipy.optimize

from repro.core.hungarian import Hungarian, SparseAssignment, solve_assignment_sparse
from repro.index import CandidateSet
from repro.obs.metrics import get_metrics
from repro.similarity.chunked import chunked_top_k
from repro.similarity.metrics import similarity_matrix
from repro.similarity.topk import top_k_indices
from repro.testing import forbid_allocations

BIG_NEGATIVE = -1e9


def full_candidate_set(scores):
    n_targets = scores.shape[1]
    indices = top_k_indices(scores, n_targets)
    values = np.take_along_axis(scores, indices, axis=1)
    return CandidateSet.from_topk(indices, values, n_targets)

def truncated_candidate_set(scores, k):
    indices = top_k_indices(scores, k)
    values = np.take_along_axis(scores, indices, axis=1)
    return CandidateSet.from_topk(indices, values, scores.shape[1])


def aligned_embeddings(rng, size, dim=32, noise=0.3):
    latent = rng.normal(size=(size, dim))
    source = latent + noise * rng.normal(size=(size, dim))
    target = latent + noise * rng.normal(size=(size, dim))
    return source, target


def hits_at_1(result, size):
    matched = {tuple(pair) for pair in result.pairs}
    return sum((i, i) in matched for i in range(size)) / size


def scipy_total_on_candidates(candidates):
    """Optimal real-arc total via scipy on the big-negative densified matrix."""
    dense = np.full((candidates.n_sources, candidates.n_targets), BIG_NEGATIVE)
    for row in range(candidates.n_sources):
        ids, vals = candidates.row(row)
        dense[row, ids] = vals
    rows, cols = scipy.optimize.linear_sum_assignment(dense, maximize=True)
    real = dense[rows, cols] > BIG_NEGATIVE / 2
    return dense[rows, cols][real].sum(), int(real.sum())


class TestFullSetDifferential:
    """On complete candidate graphs the three solvers coincide."""

    @pytest.mark.parametrize("shape", [(12, 12), (9, 14), (14, 9)])
    def test_total_matches_dense_and_scipy(self, rng, shape):
        for trial in range(5):
            scores = rng.random(shape)
            sparse = solve_assignment_sparse(full_candidate_set(scores))
            rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
            assert sparse.pair_scores.sum() == pytest.approx(
                scores[rows, cols].sum(), abs=1e-9
            )
            assert len(sparse.pairs) == min(shape)
            # Rows beyond the column count necessarily abstain.
            assert sparse.shortfall == max(0, shape[0] - shape[1])

    def test_square_total_matches_dense_solver(self, rng):
        scores = rng.random((15, 15))
        sparse = solve_assignment_sparse(full_candidate_set(scores))
        dense = Hungarian().match_scores(scores)
        assert sparse.pair_scores.sum() == pytest.approx(
            dense.scores.sum(), abs=1e-9
        )

    def test_handles_ties(self):
        scores = np.zeros((6, 6))
        sparse = solve_assignment_sparse(full_candidate_set(scores))
        assert sorted(sparse.pairs[:, 0].tolist()) == list(range(6))
        assert sorted(sparse.pairs[:, 1].tolist()) == list(range(6))

    def test_handles_negative_scores(self, rng):
        scores = rng.normal(size=(10, 10))
        sparse = solve_assignment_sparse(full_candidate_set(scores))
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        assert sparse.pair_scores.sum() == pytest.approx(
            scores[rows, cols].sum(), abs=1e-9
        )

    def test_one_to_one_always(self, rng):
        scores = rng.random((20, 20))
        sparse = solve_assignment_sparse(full_candidate_set(scores))
        assert len(set(sparse.pairs[:, 0].tolist())) == len(sparse.pairs)
        assert len(set(sparse.pairs[:, 1].tolist())) == len(sparse.pairs)


class TestTruncatedDifferential:
    """On top-k graphs: optimal over the arcs that exist."""

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_total_matches_scipy_on_densified(self, rng, k):
        for trial in range(5):
            scores = rng.random((16, 16))
            candidates = truncated_candidate_set(scores, k)
            sparse = solve_assignment_sparse(candidates)
            expected_total, expected_matches = scipy_total_on_candidates(candidates)
            assert len(sparse.pairs) == expected_matches
            assert sparse.pair_scores.sum() == pytest.approx(expected_total, abs=1e-9)

    def test_infeasible_rows_become_shortfall(self):
        # Two rows compete for the single existing column; the better
        # row wins, the other abstains.
        indptr = np.array([0, 1, 2])
        indices = np.array([0, 0])
        values = np.array([0.9, 0.4])
        candidates = CandidateSet(indptr, indices, values, n_targets=3)
        sparse = solve_assignment_sparse(candidates)
        assert sparse.shortfall == 1
        np.testing.assert_array_equal(sparse.pairs, [[0, 0]])

    def test_empty_rows_abstain(self, rng):
        scores = rng.random((4, 4))
        candidates = truncated_candidate_set(scores, 2)
        hollow = CandidateSet(
            np.array([0, *candidates.indptr[1:-1], candidates.indptr[-2]]),
            candidates.indices[: candidates.indptr[-2]],
            candidates.scores[: candidates.indptr[-2]],
            n_targets=4,
        )
        # Last row now has no candidates at all.
        sparse = solve_assignment_sparse(hollow)
        assert sparse.shortfall >= 1
        assert all(row != 3 for row, _ in sparse.pairs)

    def test_empty_problem(self):
        empty = CandidateSet(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
                             np.empty(0), n_targets=0)
        sparse = solve_assignment_sparse(empty)
        assert isinstance(sparse, SparseAssignment)
        assert len(sparse.pairs) == 0
        assert sparse.shortfall == 0


class TestMatcherIntegration:
    def test_hits_at_1_within_one_point_of_dense_at_k50(self, rng):
        size = 400
        source, target = aligned_embeddings(rng, size)
        scores = similarity_matrix(source, target)
        ids, vals = chunked_top_k(source, target, 50)
        candidates = CandidateSet.from_topk(ids, vals, size)
        matcher = Hungarian()
        dense_hits = hits_at_1(matcher.match_scores(scores), size)
        registry = get_metrics()
        densifies = registry.counter("sparse.densify")
        with forbid_allocations(size * size):
            sparse_result = matcher.match_candidates(candidates)
        assert registry.counter("sparse.densify") == densifies
        sparse_hits = hits_at_1(sparse_result, size)
        assert dense_hits > 0.5  # the task is actually solvable
        assert abs(dense_hits - sparse_hits) <= 0.01

    def test_counters_and_shortfall_signal(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([0, 0])
        values = np.array([0.9, 0.4])
        candidates = CandidateSet(indptr, indices, values, n_targets=2)
        registry = get_metrics()
        solves = registry.counter("hungarian.sparse.solves")
        shortfalls = registry.counter("hungarian.sparse.shortfall")
        Hungarian().match_candidates(candidates)
        assert registry.counter("hungarian.sparse.solves") == solves + 1
        assert registry.counter("hungarian.sparse.shortfall") == shortfalls + 1

    def test_result_carries_cost_accounting(self, rng):
        scores = rng.random((10, 10))
        result = Hungarian().match_candidates(full_candidate_set(scores))
        assert result.seconds >= 0.0
        assert result.peak_bytes > 0
