"""Tests for the RL-based sequential matcher."""

import numpy as np
import pytest

from repro.core.rl import RLMatcher


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [{"top_k": 0}, {"episodes": -1}, {"exclusion_strength": -1.0}],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            RLMatcher(**kwargs)

    def test_default_theta_copied(self):
        a = RLMatcher()
        b = RLMatcher()
        a.theta[0] = 99.0
        assert b.theta[0] != 99.0


class TestInference:
    def test_perfect_on_diagonal(self, identity_scores):
        result = RLMatcher().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_every_source_answered(self, random_scores):
        result = RLMatcher().match_scores(random_scores)
        assert sorted(result.pairs[:, 0].tolist()) == list(range(20))

    def test_exclusiveness_reduces_collisions(self, rng):
        latent = rng.normal(size=(30, 8))
        source = latent + 0.4 * rng.normal(size=latent.shape)
        target = latent + 0.4 * rng.normal(size=latent.shape)
        from repro.core.greedy import DInf

        greedy_targets = DInf().match(source, target).pairs[:, 1]
        rl_targets = RLMatcher(confident_margin=10.0).match(source, target).pairs[:, 1]
        assert len(np.unique(rl_targets)) >= len(np.unique(greedy_targets))

    def test_prefilter_keeps_decisive_mutual_pairs(self):
        matcher = RLMatcher(confident_margin=0.2)
        scores = np.array([
            [0.9, 0.1, 0.1],
            [0.1, 0.8, 0.1],
            [0.1, 0.1, 0.5],
        ])
        confident = matcher._confident_pairs(scores)
        assert (0, 0) in {tuple(p) for p in confident}
        assert (1, 1) in {tuple(p) for p in confident}

    def test_prefilter_rejects_indecisive(self):
        matcher = RLMatcher(confident_margin=0.2)
        scores = np.array([[0.5, 0.45], [0.45, 0.5]])
        assert len(matcher._confident_pairs(scores)) == 0

    def test_memory_declares_profile_matrices(self, rng):
        result = RLMatcher().match(rng.normal(size=(20, 8)), rng.normal(size=(25, 8)))
        assert result.peak_bytes >= 20 * 25 * 8 + (20 * 20 + 25 * 25) * 4


class TestFit:
    def test_fit_returns_self(self, rng):
        source = rng.normal(size=(40, 8))
        target = rng.normal(size=(40, 8))
        seeds = np.stack([np.arange(10), np.arange(10)], axis=1)
        matcher = RLMatcher(episodes=3)
        assert matcher.fit(source, target, seeds) is matcher
        assert len(matcher.reward_history) == 3

    def test_fit_requires_pairs(self, rng):
        with pytest.raises(ValueError, match="seed pair"):
            RLMatcher().fit(rng.normal(size=(4, 2)), rng.normal(size=(4, 2)),
                            np.empty((0, 2)))

    def test_reward_improves_on_learnable_task(self, rng):
        latent = rng.normal(size=(60, 16))
        source = latent + 0.2 * rng.normal(size=latent.shape)
        target = latent + 0.2 * rng.normal(size=latent.shape)
        seeds = np.stack([np.arange(60), np.arange(60)], axis=1)
        matcher = RLMatcher(episodes=15, seed=0)
        matcher.fit(source, target, seeds)
        first = np.mean(matcher.reward_history[:3])
        last = np.mean(matcher.reward_history[-3:])
        assert last >= first - 0.05

    def test_fit_then_match_at_least_greedy_quality(self, medium_task):
        from repro.core.greedy import DInf
        from repro.embedding.oracle import OracleConfig, OracleEncoder
        from repro.eval.metrics import evaluate_pairs

        emb = OracleEncoder(
            OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25, seed=4)
        ).encode(medium_task)
        pairs = medium_task.test_index_pairs()
        src, tgt = emb.source[pairs[:, 0]], emb.target[pairs[:, 1]]
        gold = [(i, i) for i in range(len(pairs))]
        matcher = RLMatcher(seed=0)
        matcher.fit(emb.source, emb.target, medium_task.seed_index_pairs())
        rl_f1 = evaluate_pairs(matcher.match(src, tgt).pairs, gold).f1
        dinf_f1 = evaluate_pairs(DInf().match(src, tgt).pairs, gold).f1
        assert rl_f1 >= dinf_f1 - 0.03
