"""Tests for the general blocking framework."""

import numpy as np
import pytest

from repro.core import DInf, Hungarian, create_matcher
from repro.core.blocking import BlockedMatcher, best_suitor_blocks


@pytest.fixture()
def clustered_embeddings(rng):
    """Embeddings with clear 1-D structure so projection blocking works."""
    n, d = 80, 16
    latent = rng.normal(size=(n, d))
    # Give the space a dominant direction with well-spread coordinates.
    latent[:, 0] += np.linspace(-4, 4, n)
    source = latent + 0.05 * rng.normal(size=latent.shape)
    target = latent + 0.05 * rng.normal(size=latent.shape)
    return source, target


class TestConstruction:
    def test_invalid_blocks(self):
        with pytest.raises(ValueError, match="num_blocks"):
            BlockedMatcher(DInf(), num_blocks=0)

    def test_invalid_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            BlockedMatcher(DInf(), overlap=1.0)

    def test_name(self):
        assert BlockedMatcher(DInf()).name == "DInf+blocked"


class TestEmbeddingBlocking:
    def test_single_block_equals_inner(self, clustered_embeddings):
        source, target = clustered_embeddings
        blocked = BlockedMatcher(DInf(), num_blocks=1).match(source, target)
        plain = DInf().match(source, target)
        assert blocked.as_set() == plain.as_set()

    def test_quality_close_to_unblocked(self, clustered_embeddings):
        source, target = clustered_embeddings
        gold = {(i, i) for i in range(len(source))}
        plain = len(DInf().match(source, target).as_set() & gold)
        blocked = len(
            BlockedMatcher(DInf(), num_blocks=4).match(source, target).as_set() & gold
        )
        assert blocked >= plain - 6  # boundary losses only

    def test_overlap_recovers_boundary_pairs(self, clustered_embeddings):
        source, target = clustered_embeddings
        gold = {(i, i) for i in range(len(source))}
        no_overlap = len(
            BlockedMatcher(DInf(), num_blocks=8, overlap=0.0)
            .match(source, target).as_set() & gold
        )
        with_overlap = len(
            BlockedMatcher(DInf(), num_blocks=8, overlap=0.25)
            .match(source, target).as_set() & gold
        )
        assert with_overlap >= no_overlap

    def test_at_most_one_answer_per_source(self, clustered_embeddings):
        source, target = clustered_embeddings
        result = BlockedMatcher(DInf(), num_blocks=4, overlap=0.3).match(source, target)
        sources = result.pairs[:, 0].tolist()
        assert len(sources) == len(set(sources))

    def test_memory_below_full_matrix(self, clustered_embeddings):
        source, target = clustered_embeddings
        result = BlockedMatcher(DInf(), num_blocks=8, overlap=0.0).match(source, target)
        full_bytes = len(source) * len(target) * 8
        assert result.peak_bytes < full_bytes

    def test_wraps_constrained_matcher(self, clustered_embeddings):
        source, target = clustered_embeddings
        result = BlockedMatcher(Hungarian(), num_blocks=4).match(source, target)
        # 1-to-1 within blocks; dedupe keeps it injective per source.
        sources = result.pairs[:, 0].tolist()
        assert len(sources) == len(set(sources))


class TestBestSuitorBlocks:
    """Pin the shared helper to the formulation it was factored out of.

    ``BlockedMatcher.match_scores`` and ``RInfPb`` used to derive the
    best-suitor bucketing inline with argmax + stable argsort; the
    helper must keep producing bit-identical block assignments.
    """

    @pytest.mark.parametrize("num_blocks", [1, 3, 5])
    def test_matches_inline_formulation(self, rng, num_blocks):
        scores = rng.random((40, 35))
        target_blocks, source_block = best_suitor_blocks(scores, num_blocks)
        best_suitor = scores.argmax(axis=0)
        best_option = scores.argmax(axis=1)
        expected_blocks = np.array_split(
            np.argsort(best_suitor, kind="stable"), num_blocks
        )
        block_of_target = np.empty(scores.shape[1], dtype=np.int64)
        for block_id, block in enumerate(expected_blocks):
            block_of_target[block] = block_id
        assert len(target_blocks) == num_blocks
        for got, want in zip(target_blocks, expected_blocks):
            np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(source_block, block_of_target[best_option])

    def test_partition_is_exhaustive_and_disjoint(self, rng):
        scores = rng.random((20, 17))
        target_blocks, source_block = best_suitor_blocks(scores, 4)
        np.testing.assert_array_equal(
            np.sort(np.concatenate(target_blocks)), np.arange(17)
        )
        assert source_block.shape == (20,)
        assert source_block.min() >= 0
        assert source_block.max() < 4

    def test_ties_resolved_stably(self):
        # All-equal scores: argmax is index 0 everywhere, the stable sort
        # must keep targets in natural order.
        scores = np.ones((6, 6))
        target_blocks, source_block = best_suitor_blocks(scores, 2)
        np.testing.assert_array_equal(target_blocks[0], [0, 1, 2])
        np.testing.assert_array_equal(target_blocks[1], [3, 4, 5])
        np.testing.assert_array_equal(source_block, np.zeros(6))


class TestScoreBlocking:
    def test_perfect_on_diagonal(self, identity_scores):
        result = BlockedMatcher(DInf(), num_blocks=3).match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_single_block_equals_inner(self, random_scores):
        blocked = BlockedMatcher(DInf(), num_blocks=1).match_scores(random_scores)
        plain = DInf().match_scores(random_scores)
        assert blocked.as_set() == plain.as_set()

    def test_all_registered_matchers_wrappable(self, identity_scores):
        for name in ("DInf", "CSLS", "RInf", "Hun.", "SMat"):
            result = BlockedMatcher(create_matcher(name), num_blocks=3).match_scores(
                identity_scores
            )
            assert result.as_set() == {(i, i) for i in range(15)}
