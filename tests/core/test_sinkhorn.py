"""Tests for the Sinkhorn matcher."""

import numpy as np
import pytest

from repro.core.sinkhorn import Sinkhorn, sinkhorn_scores


class TestSinkhornScores:
    def test_zero_iterations_is_softmax_kernel(self, random_scores):
        out = sinkhorn_scores(random_scores, iterations=0, temperature=1.0)
        np.testing.assert_allclose(out, np.exp(random_scores))

    def test_rows_sum_to_one_after_row_pass(self, random_scores):
        # After full iterations the matrix is close to doubly stochastic.
        out = sinkhorn_scores(random_scores, iterations=50, temperature=0.1)
        np.testing.assert_allclose(out.sum(axis=0), 1.0, atol=1e-6)

    def test_approaches_doubly_stochastic(self, random_scores):
        out = sinkhorn_scores(random_scores, iterations=100, temperature=0.1)
        np.testing.assert_allclose(out.sum(axis=0), 1.0, atol=1e-6)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-3)

    def test_nonnegative(self, random_scores):
        out = sinkhorn_scores(random_scores, iterations=10, temperature=0.05)
        assert out.min() >= 0.0

    def test_low_temperature_sharpens_towards_assignment(self, identity_scores):
        out = sinkhorn_scores(identity_scores, iterations=100, temperature=0.01)
        np.testing.assert_allclose(np.diag(out), 1.0, atol=1e-2)

    def test_numerically_stable_at_tiny_temperature(self, random_scores):
        out = sinkhorn_scores(random_scores, iterations=20, temperature=1e-3)
        assert np.all(np.isfinite(out))

    def test_invalid_params(self, random_scores):
        with pytest.raises(ValueError, match="iterations"):
            sinkhorn_scores(random_scores, iterations=-1)
        with pytest.raises(ValueError, match="temperature"):
            sinkhorn_scores(random_scores, temperature=0.0)


class TestSinkhornMatcher:
    def test_perfect_on_diagonal(self, identity_scores):
        result = Sinkhorn().match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_more_iterations_not_worse(self, medium_task, oracle_embeddings):
        from repro.eval.metrics import evaluate_pairs

        pairs = medium_task.test_index_pairs()
        src = oracle_embeddings.source[pairs[:, 0]]
        tgt = oracle_embeddings.target[pairs[:, 1]]
        gold = [(i, i) for i in range(len(pairs))]
        f1_low = evaluate_pairs(Sinkhorn(iterations=1).match(src, tgt).pairs, gold).f1
        f1_high = evaluate_pairs(Sinkhorn(iterations=100).match(src, tgt).pairs, gold).f1
        assert f1_high >= f1_low - 0.02

    def test_approaches_hungarian_quality(self, medium_task):
        from repro.core.hungarian import Hungarian
        from repro.embedding.oracle import OracleConfig, OracleEncoder
        from repro.eval.metrics import evaluate_pairs

        emb = OracleEncoder(
            OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25, seed=2)
        ).encode(medium_task)
        pairs = medium_task.test_index_pairs()
        src, tgt = emb.source[pairs[:, 0]], emb.target[pairs[:, 1]]
        gold = [(i, i) for i in range(len(pairs))]
        sink = evaluate_pairs(Sinkhorn().match(src, tgt).pairs, gold).f1
        hun = evaluate_pairs(Hungarian().match(src, tgt).pairs, gold).f1
        assert abs(sink - hun) < 0.1

    def test_implicit_one_to_one(self, rng):
        # With enough iterations, the greedy decode over the Sinkhorn
        # matrix yields (nearly) collision-free assignments.
        latent = rng.normal(size=(30, 8))
        source = latent + 0.3 * rng.normal(size=latent.shape)
        target = latent + 0.3 * rng.normal(size=latent.shape)
        result = Sinkhorn(iterations=200).match(source, target)
        targets = result.pairs[:, 1]
        assert len(np.unique(targets)) >= 28

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            Sinkhorn(iterations=-5)
        with pytest.raises(ValueError):
            Sinkhorn(temperature=-1.0)


class TestDivergenceGuard:
    def test_denormal_temperature_raises_typed_error(self):
        from repro.errors import ConvergenceError

        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        # 1e-320 is denormal: S / temperature overflows before the
        # log-space normalisation can stabilise it.
        with pytest.raises(ConvergenceError) as excinfo:
            sinkhorn_scores(scores, iterations=5, temperature=1e-320)
        assert excinfo.value.temperature == pytest.approx(1e-320)
        assert excinfo.value.iteration == 0
        assert "temperature" in str(excinfo.value)

    def test_error_names_iteration_and_temperature(self):
        from repro.errors import ConvergenceError

        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ConvergenceError, match="iteration 0"):
            sinkhorn_scores(scores, iterations=3, temperature=5e-310)

    def test_matcher_surfaces_convergence_error(self):
        from repro.errors import ConvergenceError

        rng = np.random.default_rng(0)
        source = rng.normal(size=(4, 3))
        with pytest.raises(ConvergenceError):
            Sinkhorn(iterations=2, temperature=1e-320).match(source, source)

    def test_healthy_temperatures_unaffected(self):
        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = sinkhorn_scores(scores, iterations=50, temperature=0.02)
        assert np.all(np.isfinite(out))
