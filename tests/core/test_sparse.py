"""Sparse matching path: kernel/dense parity, quality, and O(n k) memory."""

import numpy as np
import pytest

from repro.core.csls import CSLS, csls_scores
from repro.core.greedy import DInf, Greedy
from repro.core.hungarian import Hungarian
from repro.core.rinf import RInfWr
from repro.core.sinkhorn import Sinkhorn
from repro.core.sparse import sparse_csls
from repro.index import CandidateSet
from repro.obs.metrics import get_metrics
from repro.similarity.chunked import chunked_top_k
from repro.similarity.metrics import similarity_matrix
from repro.similarity.topk import top_k_indices
from repro.testing import forbid_allocations

SPARSE_MATCHERS = [DInf, Greedy, CSLS, RInfWr]


def full_candidate_set(scores):
    """Every cell of a dense matrix as a candidate set (k = n_targets)."""
    n_targets = scores.shape[1]
    indices = top_k_indices(scores, n_targets)
    values = np.take_along_axis(scores, indices, axis=1)
    return CandidateSet.from_topk(indices, values, n_targets)


def aligned_embeddings(rng, size, dim=32, noise=0.3):
    latent = rng.normal(size=(size, dim))
    source = latent + noise * rng.normal(size=(size, dim))
    target = latent + noise * rng.normal(size=(size, dim))
    return source, target


def hits_at_1(result, size):
    matched = {tuple(pair) for pair in result.pairs}
    return sum((i, i) in matched for i in range(size)) / size


class TestKernelParity:
    """At k = n_targets the sparse kernels must reproduce dense algebra."""

    def test_sparse_csls_equals_dense_rescaling(self, rng):
        scores = rng.random((15, 12))
        rescaled = sparse_csls(full_candidate_set(scores), k=1).densify()
        np.testing.assert_allclose(rescaled, csls_scores(scores, k=1))

    def test_sparse_csls_k3_equals_dense_rescaling(self, rng):
        scores = rng.random((10, 10))
        rescaled = sparse_csls(full_candidate_set(scores), k=3).densify()
        np.testing.assert_allclose(rescaled, csls_scores(scores, k=3))

    def test_sparse_rinf_wr_matches_dense_decode(self, rng):
        scores = rng.random((20, 20))
        sparse = RInfWr().match_candidates(full_candidate_set(scores))
        dense = RInfWr().match_scores(scores)
        np.testing.assert_array_equal(sparse.pairs, dense.pairs)

    @pytest.mark.parametrize("matcher_cls", SPARSE_MATCHERS)
    def test_full_set_decode_equals_dense(self, rng, matcher_cls):
        scores = rng.random((18, 14))
        matcher = matcher_cls()
        sparse = matcher.match_candidates(full_candidate_set(scores))
        dense = matcher.match_scores(scores)
        np.testing.assert_array_equal(sparse.pairs, dense.pairs)


class TestSparseQuality:
    """Acceptance gate: sparse Hits@1 within 1 point of dense at k=50."""

    @pytest.mark.parametrize("matcher_cls", SPARSE_MATCHERS)
    def test_hits_at_1_within_one_point_of_dense(self, rng, matcher_cls):
        size = 400
        source, target = aligned_embeddings(rng, size)
        scores = similarity_matrix(source, target)
        ids, vals = chunked_top_k(source, target, 50)
        candidates = CandidateSet.from_topk(ids, vals, size)
        matcher = matcher_cls()
        dense_hits = hits_at_1(matcher.match_scores(scores), size)
        sparse_hits = hits_at_1(matcher.match_candidates(candidates), size)
        assert dense_hits > 0.5  # the task is actually solvable
        assert abs(dense_hits - sparse_hits) <= 0.01


class TestMemoryDiscipline:
    """The sparse path must never materialise an n x n array."""

    @pytest.mark.parametrize("matcher_cls", SPARSE_MATCHERS)
    def test_never_allocates_dense_matrix(self, rng, matcher_cls):
        size = 400
        source, target = aligned_embeddings(rng, size, dim=16)
        ids, vals = chunked_top_k(source, target, 50)
        candidates = CandidateSet.from_topk(ids, vals, size)
        registry = get_metrics()
        densifies = registry.counter("sparse.densify")
        with forbid_allocations(size * size):
            result = matcher_cls().match_candidates(candidates)
        assert registry.counter("sparse.densify") == densifies
        assert len(result.pairs) == size

    def test_sparse_counters_increment(self, rng):
        scores = rng.random((8, 8))
        registry = get_metrics()
        matches = registry.counter("sparse.matches")
        entries = registry.counter("sparse.entries")
        candidates = full_candidate_set(scores)
        DInf().match_candidates(candidates)
        assert registry.counter("sparse.matches") == matches + 1
        assert registry.counter("sparse.entries") == entries + candidates.nnz


class TestDensifyFallback:
    """Matchers without a sparse kernel transparently densify (and say so)."""

    def test_sinkhorn_falls_back_through_densify(self, rng):
        scores = rng.random((10, 10))
        candidates = full_candidate_set(scores)
        registry = get_metrics()
        before = registry.counter("sparse.densify")
        sparse = Sinkhorn().match_candidates(candidates)
        assert registry.counter("sparse.densify") == before + 1
        dense = Sinkhorn().match_scores(scores)
        np.testing.assert_array_equal(sparse.pairs, dense.pairs)

    def test_hungarian_no_longer_densifies(self, rng):
        # The LAPJVsp solver gave Hungarian a native sparse kernel; the
        # densify fallback must stay untouched on its candidate path.
        scores = rng.random((10, 10))
        registry = get_metrics()
        before = registry.counter("sparse.densify")
        Hungarian().match_candidates(full_candidate_set(scores))
        assert registry.counter("sparse.densify") == before

    def test_supports_sparse_flags(self):
        for matcher_cls in SPARSE_MATCHERS:
            assert matcher_cls().supports_sparse, matcher_cls.__name__
        assert Hungarian().supports_sparse
        assert not Sinkhorn().supports_sparse
