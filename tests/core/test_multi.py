"""Tests for the multi-answer decoding extension."""

import numpy as np
import pytest

from repro.core.multi import MultiAnswerMatcher


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [{"mass_ratio": 0.0}, {"mass_ratio": 1.5}, {"temperature": 0.0},
         {"top_k": 0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MultiAnswerMatcher(**kwargs)


class TestDecoding:
    def test_degenerates_to_greedy_on_concentrated_scores(self, identity_scores):
        result = MultiAnswerMatcher(temperature=0.01).match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_emits_multiple_answers_for_ties(self):
        scores = np.full((1, 5), 0.0)
        scores[0, 1] = 0.8
        scores[0, 3] = 0.8  # exact tie: both must be returned
        result = MultiAnswerMatcher().match_scores(scores)
        assert result.as_set() == {(0, 1), (0, 3)}

    def test_near_ties_within_mass_ratio(self):
        scores = np.array([[0.80, 0.79, 0.0, 0.0]])
        result = MultiAnswerMatcher(mass_ratio=0.5, temperature=0.1).match_scores(scores)
        assert {(0, 0), (0, 1)} <= result.as_set()

    def test_distant_second_excluded(self):
        scores = np.array([[0.9, 0.1, 0.0, 0.0]])
        result = MultiAnswerMatcher(mass_ratio=0.5, temperature=0.05).match_scores(scores)
        assert result.as_set() == {(0, 0)}

    def test_every_source_has_at_least_one_answer(self, random_scores):
        result = MultiAnswerMatcher().match_scores(random_scores)
        assert set(result.pairs[:, 0].tolist()) == set(range(20))

    def test_top_k_caps_answers(self):
        scores = np.full((1, 10), 0.5)  # all tied
        result = MultiAnswerMatcher(top_k=3).match_scores(scores)
        assert len(result.pairs) == 3

    def test_match_from_embeddings(self, rng):
        result = MultiAnswerMatcher().match(
            rng.normal(size=(6, 4)), rng.normal(size=(8, 4))
        )
        assert result.pairs[:, 1].max() < 8


class TestNonOneToOneRecall:
    def test_recall_beats_greedy_on_duplicate_targets(self):
        """The extension's point: duplicated targets share posterior mass
        and are all returned, lifting recall on non-1-to-1 gold links."""
        from repro.core.greedy import DInf
        from repro.datasets.non_one_to_one import (
            NonOneToOneConfig, generate_non_one_to_one_task,
        )
        from repro.embedding.oracle import OracleConfig, OracleEncoder
        from repro.eval.metrics import evaluate_pairs
        from repro.experiments.runner import _gold_local_pairs

        task = generate_non_one_to_one_task(NonOneToOneConfig(num_entities=150, seed=5))
        emb = OracleEncoder(OracleConfig(noise=0.3, duplicate_jitter=0.2, seed=1)).encode(task)
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        src, tgt = emb.source[queries], emb.target[candidates]
        gold = _gold_local_pairs(task, queries, candidates)

        greedy = evaluate_pairs(DInf().match(src, tgt).pairs, gold)
        multi = evaluate_pairs(
            MultiAnswerMatcher(mass_ratio=0.5, temperature=0.05).match(src, tgt).pairs,
            gold,
        )
        assert multi.recall > greedy.recall
