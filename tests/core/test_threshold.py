"""Tests for the threshold/abstention extension."""

import numpy as np
import pytest

from repro.core.greedy import DInf
from repro.core.threshold import ThresholdMatcher, calibrate_threshold


class TestThresholdMatcher:
    def test_name_includes_threshold(self):
        assert ThresholdMatcher(DInf(), 0.5).name == "DInf@0.50"

    def test_below_threshold_dropped(self, identity_scores):
        # Diagonal scores are 0.9; threshold 0.95 drops everything.
        result = ThresholdMatcher(DInf(), 0.95).match_scores(identity_scores)
        assert len(result.pairs) == 0

    def test_above_threshold_kept(self, identity_scores):
        result = ThresholdMatcher(DInf(), 0.5).match_scores(identity_scores)
        assert result.as_set() == {(i, i) for i in range(15)}

    def test_partial_abstention(self):
        scores = np.array([[0.9, 0.0], [0.3, 0.2]])
        result = ThresholdMatcher(DInf(), 0.5).match_scores(scores)
        assert result.as_set() == {(0, 0)}

    def test_threshold_minus_inf_is_identity(self, random_scores):
        plain = DInf().match_scores(random_scores)
        wrapped = ThresholdMatcher(DInf(), -np.inf).match_scores(random_scores)
        assert plain.as_set() == wrapped.as_set()

    def test_match_from_embeddings(self, rng):
        result = ThresholdMatcher(DInf(), -1.0).match(
            rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        )
        assert len(result.pairs) == 5

    def test_improves_precision_under_unmatchables(self, medium_task):
        """The extension's point: abstention converts unmatchable queries
        into non-answers instead of false positives."""
        from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities
        from repro.eval.metrics import evaluate_pairs
        from repro.experiments.regimes import build_embeddings
        from repro.experiments.runner import _gold_local_pairs

        task = add_unmatchable_entities(medium_task, UnmatchableConfig(seed=2))
        emb = build_embeddings(task, "R", preset_name="dbp15k/x")
        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        src, tgt = emb.source[queries], emb.target[candidates]
        gold = _gold_local_pairs(task, queries, candidates)

        plain = evaluate_pairs(DInf().match(src, tgt).pairs, gold)
        # Threshold at the weakest quartile of the score distribution:
        # unmatchable queries dominate the low tail.
        base = DInf().match(src, tgt)
        cutoff = float(np.quantile(base.scores, 0.25))
        filtered = evaluate_pairs(
            ThresholdMatcher(DInf(), cutoff).match(src, tgt).pairs, gold
        )
        assert filtered.precision > plain.precision


class TestCalibrateThreshold:
    def test_returns_finite_or_neginf(self, random_scores):
        gold = [(i, int(random_scores[i].argmax())) for i in range(5)]
        threshold = calibrate_threshold(DInf(), random_scores, gold)
        assert threshold <= random_scores.max()

    def test_perfect_data_prefers_no_abstention(self, identity_scores):
        gold = [(i, i) for i in range(15)]
        threshold = calibrate_threshold(DInf(), identity_scores, gold)
        result = ThresholdMatcher(DInf(), threshold).match_scores(identity_scores)
        assert result.as_set() == set(gold)

    def test_noisy_tail_cut(self):
        # Gold covers rows 0-3; rows 4-9 are unmatchable noise with lower
        # best scores: the calibrated threshold should cut them.
        rng = np.random.default_rng(0)
        scores = rng.uniform(0.0, 0.2, size=(10, 6))
        for i in range(4):
            scores[i, i] = 0.9
        gold = [(i, i) for i in range(4)]
        threshold = calibrate_threshold(DInf(), scores, gold)
        result = ThresholdMatcher(DInf(), threshold).match_scores(scores)
        from repro.eval.metrics import evaluate_pairs

        assert evaluate_pairs(result.pairs, gold).f1 == 1.0

    def test_invalid_quantiles(self, random_scores):
        with pytest.raises(ValueError, match="quantiles"):
            calibrate_threshold(DInf(), random_scores, [], quantiles=0)
