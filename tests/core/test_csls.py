"""Tests for CSLS rescaling."""

import numpy as np
import pytest

from repro.core.csls import CSLS, csls_scores


class TestCslsScores:
    def test_formula_k1(self, random_scores):
        rescaled = csls_scores(random_scores, k=1)
        expected = (
            2 * random_scores
            - random_scores.max(axis=1)[:, None]
            - random_scores.max(axis=0)[None, :]
        )
        np.testing.assert_allclose(rescaled, expected)

    def test_formula_general_k(self, random_scores):
        k = 3
        rescaled = csls_scores(random_scores, k=k)
        phi_s = np.sort(random_scores, axis=1)[:, -k:].mean(axis=1)
        phi_t = np.sort(random_scores, axis=0)[-k:, :].mean(axis=0)
        expected = 2 * random_scores - phi_s[:, None] - phi_t[None, :]
        np.testing.assert_allclose(rescaled, expected)

    def test_invalid_k(self, random_scores):
        with pytest.raises(ValueError, match="k must be"):
            csls_scores(random_scores, k=0)

    def test_penalises_hub_target(self):
        # Target 0 is a hub: high similarity to every source.  CSLS must
        # reduce its advantage over the gold diagonal.
        n = 6
        scores = np.full((n, n), 0.2)
        np.fill_diagonal(scores, 0.55)
        scores[:, 0] = 0.6  # hub column beats the gold scores
        raw_pred = scores.argmax(axis=1)
        assert (raw_pred == 0).sum() >= n - 1  # raw greedy collapses onto the hub
        rescaled = csls_scores(scores, k=2)
        csls_pred = rescaled.argmax(axis=1)
        assert (csls_pred == np.arange(n)).sum() > (raw_pred == np.arange(n)).sum()

    def test_boosts_isolated_source(self):
        # An isolated source (low scores everywhere) gets its scores
        # lifted relative to sources in dense regions.
        scores = np.array([
            [0.9, 0.8, 0.7],
            [0.8, 0.9, 0.7],
            [0.2, 0.1, 0.25],  # isolated
        ])
        rescaled = csls_scores(scores, k=1)
        # Relative ordering within the isolated row is preserved...
        assert rescaled[2].argmax() == 2
        # ...and the gap between the dense rows' best and the isolated
        # row's best shrinks (CSLS lifts isolated embeddings).
        raw_gap = scores[0].max() - scores[2].max()
        rescaled_gap = rescaled[0].max() - rescaled[2].max()
        assert rescaled_gap < raw_gap


class TestCSLSMatcher:
    def test_name(self):
        assert CSLS().name == "CSLS"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CSLS(k=0)

    def test_equivalent_to_manual_pipeline(self, random_scores):
        result = CSLS(k=2).match_scores(random_scores)
        expected = csls_scores(random_scores, k=2).argmax(axis=1)
        np.testing.assert_array_equal(result.pairs[:, 1], expected)

    def test_memory_includes_rescaled_matrix(self, rng):
        result = CSLS().match(rng.normal(size=(10, 4)), rng.normal(size=(12, 4)))
        assert result.peak_bytes == 2 * 10 * 12 * 8

    def test_improves_over_dinf_on_crowded_embeddings(self, medium_task):
        from repro.core.greedy import DInf
        from repro.embedding.oracle import OracleConfig, OracleEncoder

        emb = OracleEncoder(
            OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25, seed=1)
        ).encode(medium_task)
        pairs = medium_task.test_index_pairs()
        src, tgt = emb.source[pairs[:, 0]], emb.target[pairs[:, 1]]
        gold = {(i, i) for i in range(len(pairs))}
        dinf_correct = len(DInf().match(src, tgt).as_set() & gold)
        csls_correct = len(CSLS().match(src, tgt).as_set() & gold)
        assert csls_correct >= dinf_correct
