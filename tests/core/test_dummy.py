"""Tests for dummy-node augmentation."""

import numpy as np

from repro.core.base import MatchResult
from repro.core.dummy import DummyPaddedMatcher, pad_with_dummies, strip_dummy_pairs
from repro.core.hungarian import Hungarian
from repro.core.stable import StableMatch


class TestPadWithDummies:
    def test_square_unchanged(self, random_scores):
        assert pad_with_dummies(random_scores) is random_scores

    def test_pads_columns(self, rng):
        scores = rng.random((6, 4))
        padded = pad_with_dummies(scores)
        assert padded.shape == (6, 6)
        np.testing.assert_array_equal(padded[:, 4:], scores.min())

    def test_pads_rows(self, rng):
        scores = rng.random((4, 6))
        padded = pad_with_dummies(scores)
        assert padded.shape == (6, 6)
        np.testing.assert_array_equal(padded[4:, :], scores.min())

    def test_custom_fill(self, rng):
        scores = rng.random((3, 5))
        padded = pad_with_dummies(scores, fill=-7.0)
        np.testing.assert_array_equal(padded[3:, :], -7.0)

    def test_original_scores_preserved(self, rng):
        scores = rng.random((3, 5))
        padded = pad_with_dummies(scores)
        np.testing.assert_array_equal(padded[:3, :5], scores)


class TestStripDummyPairs:
    def test_strips_out_of_range(self):
        result = MatchResult([[0, 1], [1, 5], [4, 2]], [0.1, 0.2, 0.3])
        stripped = strip_dummy_pairs(result, n_source=3, n_target=4)
        assert stripped.as_set() == {(0, 1)}

    def test_keeps_instrumentation(self):
        result = MatchResult([[0, 0]], [0.1])
        result.memory.allocate("x", 100)
        stripped = strip_dummy_pairs(result, 1, 1)
        assert stripped.peak_bytes == 100


class TestDummyPaddedMatcher:
    def test_name(self):
        assert DummyPaddedMatcher(Hungarian()).name == "Hun.+dummy"

    def test_equivalent_to_builtin_rectangular_hungarian(self, rng):
        # Hungarian already pads internally; the wrapper must agree.
        scores = rng.random((10, 7))
        direct = Hungarian().match_scores(scores)
        wrapped = DummyPaddedMatcher(Hungarian()).match_scores(scores)
        assert direct.as_set() == wrapped.as_set()

    def test_smat_abstains_on_surplus_sources(self, rng):
        scores = rng.random((10, 7))
        result = DummyPaddedMatcher(StableMatch()).match_scores(scores)
        assert len(result.pairs) <= 7
        assert result.pairs[:, 1].max() < 7

    def test_worst_sources_fall_on_dummies(self):
        # Sources 0-2 match targets clearly; source 3 matches nothing.
        scores = np.array([
            [0.9, 0.1, 0.1],
            [0.1, 0.9, 0.1],
            [0.1, 0.1, 0.9],
            [0.15, 0.15, 0.15],
        ])
        result = DummyPaddedMatcher(Hungarian()).match_scores(scores)
        matched_sources = set(result.pairs[:, 0].tolist())
        assert matched_sources == {0, 1, 2}

    def test_match_from_embeddings(self, rng):
        result = DummyPaddedMatcher(Hungarian()).match(
            rng.normal(size=(8, 4)), rng.normal(size=(5, 4))
        )
        assert len(result.pairs) == 5
