"""Tests for the high-level alignment pipeline."""

import numpy as np
import pytest

from repro.core import create_matcher
from repro.embedding import NameEncoder, OracleConfig, OracleEncoder
from repro.pipeline import AlignmentPipeline


@pytest.fixture(scope="module")
def pipeline_prediction(request):
    from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair

    task = generate_aligned_pair(
        KGPairConfig(num_entities=120, seed=31, name="pipe")
    )
    pipeline = AlignmentPipeline(
        OracleEncoder(OracleConfig(noise=0.3, seed=1)), create_matcher("CSLS")
    )
    return task, pipeline.align(task)


class TestAlignmentPipeline:
    def test_returns_named_pairs(self, pipeline_prediction):
        task, prediction = pipeline_prediction
        for source, target in prediction.pairs:
            assert task.source.has_entity(source)
            assert task.target.has_entity(target)

    def test_metrics_consistent_with_pairs(self, pipeline_prediction):
        task, prediction = pipeline_prediction
        gold = set(task.test_links)
        correct = sum(1 for pair in prediction.pairs if pair in gold)
        assert prediction.metrics.num_correct == correct

    def test_answers_every_test_query(self, pipeline_prediction):
        task, prediction = pipeline_prediction
        assert len(prediction.pairs) == len(task.test_query_ids())

    def test_scores_aligned(self, pipeline_prediction):
        _, prediction = pipeline_prediction
        assert len(prediction.scores) == len(prediction.pairs)

    def test_as_dict(self, pipeline_prediction):
        _, prediction = pipeline_prediction
        mapping = prediction.as_dict()
        assert len(mapping) == len(prediction.pairs)

    def test_reuses_supplied_embeddings(self, pipeline_prediction):
        task, _ = pipeline_prediction
        encoder = OracleEncoder(OracleConfig(noise=0.3, seed=1))
        embeddings = encoder.encode(task)
        pipeline = AlignmentPipeline(encoder, create_matcher("DInf"))
        prediction = pipeline.align(task, embeddings=embeddings)
        assert prediction.embeddings is embeddings

    def test_rejects_misaligned_embeddings(self, pipeline_prediction):
        task, _ = pipeline_prediction
        from repro.embedding.base import UnifiedEmbeddings

        bad = UnifiedEmbeddings(np.ones((3, 4)), np.ones((3, 4)))
        pipeline = AlignmentPipeline(
            OracleEncoder(), create_matcher("DInf")
        )
        with pytest.raises(ValueError, match="source entities"):
            pipeline.align(task, embeddings=bad)

    def test_fits_learnable_matcher(self, pipeline_prediction):
        task, _ = pipeline_prediction
        matcher = create_matcher("RL", episodes=2)
        pipeline = AlignmentPipeline(OracleEncoder(OracleConfig(noise=0.3)), matcher)
        pipeline.align(task)
        assert len(matcher.reward_history) == 2

    def test_name_encoder_pipeline(self, pipeline_prediction):
        task, _ = pipeline_prediction
        pipeline = AlignmentPipeline(NameEncoder(), create_matcher("DInf"))
        prediction = pipeline.align(task)
        assert prediction.metrics.f1 > 0.3  # names carry signal

    def test_task_without_test_links_rejected(self):
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.pair import AlignmentSplit, AlignmentTask

        source = KnowledgeGraph([("a", "r", "b")])
        target = KnowledgeGraph([("x", "q", "y")])
        task = AlignmentTask(
            source, target, AlignmentSplit((("a", "x"),), (), ())
        )
        pipeline = AlignmentPipeline(OracleEncoder(), create_matcher("DInf"))
        with pytest.raises(ValueError, match="no test queries"):
            pipeline.align(task)


class TestSparseIndexPipeline:
    def test_index_config_matches_dense_quality(self, pipeline_prediction):
        from repro.index import IndexConfig

        task, dense_prediction = pipeline_prediction
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=1)),
            create_matcher("CSLS"),
            index=IndexConfig(kind="ivf", k=30, nprobe=4, n_clusters=8),
        )
        sparse_prediction = pipeline.align(task)
        assert abs(sparse_prediction.metrics.f1 - dense_prediction.metrics.f1) <= 0.01

    def test_index_with_supervisor_passes_candidates(self, pipeline_prediction):
        from repro.index import IndexConfig
        from repro.runtime.supervisor import SupervisorPolicy

        task, _ = pipeline_prediction
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=1)),
            create_matcher("DInf"),
            policy=SupervisorPolicy(on_error="raise"),
            index=IndexConfig(kind="exact", k=20),
        )
        prediction = pipeline.align(task)
        assert prediction.supervision is not None
        assert prediction.supervision.ok
        assert prediction.metrics.f1 > 0.5


class TestPipelineObservability:
    def test_align_appends_one_ledger_record(self, pipeline_prediction, tmp_path):
        from repro.obs.ledger import RunLedger

        task, _ = pipeline_prediction
        path = tmp_path / "pipe.jsonl"
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=1)),
            create_matcher("CSLS"),
            ledger=str(path),
        )
        prediction = pipeline.align(task)
        (record,) = RunLedger(path).records()
        assert record["regime"] == "pipeline"
        assert record["preset"] == task.name
        assert record["matcher"] == "CSLS"
        assert record["seed"] == -1  # pipelines have no sweep seed
        assert record["metrics"]["f1"] == pytest.approx(prediction.metrics.f1)

    def test_failed_align_still_earns_its_record(self, pipeline_prediction, tmp_path):
        from repro.errors import MatcherError
        from repro.obs.ledger import RunLedger
        from repro.runtime.supervisor import SupervisorPolicy

        task, _ = pipeline_prediction
        path = tmp_path / "pipe.jsonl"
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=1)),
            create_matcher("Hun."),
            policy=SupervisorPolicy(memory_budget=64, on_error="skip"),
            ledger=str(path),
        )
        with pytest.raises(MatcherError):
            pipeline.align(task)
        (record,) = RunLedger(path).records()
        assert record["status"] == "failed"
        assert record["metrics"] is None
        assert record["error"]["type"]

    def test_align_emits_start_and_finish_events(self, pipeline_prediction):
        from repro.obs import events

        task, _ = pipeline_prediction
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3, seed=1)), create_matcher("DInf")
        )
        with events.emitting() as sink:
            pipeline.align(task)
        names = sink.names()
        assert names[0] == "pipeline.align.start"
        assert names[-1] == "pipeline.align.finish"
        assert sink.events[-1].attrs["status"] == "ok"
