"""Tests for subtask sampling."""

import pytest

from repro.kg.sampling import sample_subtask


class TestSampleSubtask:
    def test_size_bounded(self, medium_task):
        sub = sample_subtask(medium_task, num_links=20, hops=0, seed=0)
        assert 20 <= len(sub.split.all_links) <= len(medium_task.split.all_links)
        assert sub.source.num_entities < medium_task.source.num_entities

    def test_links_remain_consistent(self, medium_task):
        sub = sample_subtask(medium_task, num_links=25, seed=1)
        for src, tgt in sub.split.all_links:
            assert sub.source.has_entity(src)
            assert sub.target.has_entity(tgt)

    def test_split_membership_preserved(self, medium_task):
        sub = sample_subtask(medium_task, num_links=30, seed=2)
        assert set(sub.split.train) <= set(medium_task.split.train)
        assert set(sub.split.test) <= set(medium_task.split.test)

    def test_no_dangling_triples(self, medium_task):
        sub = sample_subtask(medium_task, num_links=15, hops=1, seed=3)
        for triple in sub.source.triples():
            assert sub.source.has_entity(triple.subject)
            assert sub.source.has_entity(triple.object)

    def test_triples_are_subset(self, medium_task):
        sub = sample_subtask(medium_task, num_links=15, hops=1, seed=3)
        original = {tuple(t) for t in medium_task.source.triples()}
        assert {tuple(t) for t in sub.source.triples()} <= original

    def test_hops_grow_the_sample(self, medium_task):
        small = sample_subtask(medium_task, num_links=10, hops=0, seed=4)
        large = sample_subtask(medium_task, num_links=10, hops=2, seed=4)
        assert large.source.num_entities >= small.source.num_entities

    def test_deterministic(self, medium_task):
        a = sample_subtask(medium_task, num_links=12, seed=5)
        b = sample_subtask(medium_task, num_links=12, seed=5)
        assert a.split == b.split

    def test_names_restricted(self, medium_task):
        sub = sample_subtask(medium_task, num_links=10, seed=6)
        assert set(sub.source_names) <= set(sub.source.entities)

    def test_num_links_clamped(self, medium_task):
        sub = sample_subtask(medium_task, num_links=10**6, hops=0, seed=0)
        assert len(sub.split.all_links) == len(medium_task.split.all_links)

    def test_invalid_params(self, medium_task):
        with pytest.raises(ValueError, match="num_links"):
            sample_subtask(medium_task, num_links=0)
        with pytest.raises(ValueError, match="hops"):
            sample_subtask(medium_task, num_links=5, hops=-1)

    def test_unmatchable_annotations_survive(self, medium_task):
        from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities

        plus = add_unmatchable_entities(medium_task, UnmatchableConfig(seed=9))
        sub = sample_subtask(plus, num_links=40, hops=2, seed=7)
        for entity in sub.unmatchable_source:
            assert sub.source.has_entity(entity)

    def test_subtask_runs_through_pipeline(self, medium_task):
        from repro.core import create_matcher
        from repro.embedding import OracleConfig, OracleEncoder
        from repro.pipeline import AlignmentPipeline

        sub = sample_subtask(medium_task, num_links=60, hops=1, seed=8)
        if not sub.split.test or not sub.split.train:
            pytest.skip("sample landed without test/train links")
        pipeline = AlignmentPipeline(
            OracleEncoder(OracleConfig(noise=0.3)), create_matcher("DInf")
        )
        prediction = pipeline.align(sub)
        assert 0.0 <= prediction.metrics.f1 <= 1.0
