"""Tests for Table 3 dataset statistics."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignmentSplit, AlignmentTask
from repro.kg.stats import dataset_statistics


@pytest.fixture()
def stats_task():
    source = KnowledgeGraph([("s0", "r", "s1"), ("s1", "r", "s2")])
    target = KnowledgeGraph([("t0", "q", "t1")])
    split = AlignmentSplit(
        (("s0", "t0"),), (), (("s1", "t1"), ("s2", "t1")),
    )
    return AlignmentTask(source, target, split, name="stats")


class TestDatasetStatistics:
    def test_counts_sum_both_sides(self, stats_task):
        stats = dataset_statistics(stats_task)
        assert stats.num_entities == 3 + 2
        assert stats.num_relations == 2
        assert stats.num_triples == 3

    def test_gold_links(self, stats_task):
        assert dataset_statistics(stats_task).num_gold_links == 3

    def test_average_degree(self, stats_task):
        stats = dataset_statistics(stats_task)
        assert stats.average_degree == pytest.approx(2 * 3 / 5)

    def test_non_one_to_one_detection(self, stats_task):
        stats = dataset_statistics(stats_task)
        # t1 appears in two links: those two are non-1-to-1, s0-t0 is 1-to-1.
        assert stats.num_one_to_one_links == 1
        assert stats.num_non_one_to_one_links == 2

    def test_as_row_keys(self, stats_task):
        row = dataset_statistics(stats_task).as_row()
        assert row["dataset"] == "stats"
        assert "#Entities" in row
        assert "Avg. degree" in row

    def test_generated_preset_statistics(self, small_task):
        stats = dataset_statistics(small_task)
        assert stats.num_gold_links == 60
        assert stats.num_non_one_to_one_links == 0
        assert stats.average_degree == pytest.approx(4.0, abs=1.0)
