"""Tests for alignment splits and tasks."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignmentSplit, AlignmentTask, split_links


def make_links(n):
    return [(f"s{i}", f"t{i}") for i in range(n)]


class TestAlignmentSplit:
    def test_all_links(self):
        split = AlignmentSplit((("a", "x"),), (("b", "y"),), (("c", "z"),))
        assert split.all_links == (("a", "x"), ("b", "y"), ("c", "z"))

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            AlignmentSplit((("a", "x"),), (("a", "x"),), ())


class TestSplitLinks:
    def test_fractions_respected(self):
        split = split_links(make_links(100), 0.2, 0.1, seed=0)
        assert len(split.train) == 20
        assert len(split.validation) == 10
        assert len(split.test) == 70

    def test_partition_is_complete(self):
        links = make_links(50)
        split = split_links(links, seed=1)
        assert sorted(split.all_links) == sorted(links)

    def test_deterministic(self):
        a = split_links(make_links(30), seed=5)
        b = split_links(make_links(30), seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = split_links(make_links(50), seed=1)
        b = split_links(make_links(50), seed=2)
        assert a.train != b.train

    def test_duplicates_removed(self):
        links = make_links(10) + make_links(10)
        split = split_links(links, seed=0)
        assert len(split.all_links) == 10

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            split_links(make_links(10), train_fraction=1.5)
        with pytest.raises(ValueError):
            split_links(make_links(10), train_fraction=0.8, validation_fraction=0.3)

    def test_entity_disjoint_keeps_clusters_together(self):
        # s0 links to t0 and t1: both links must land in the same split.
        links = [("s0", "t0"), ("s0", "t1"), ("s1", "t2"), ("s2", "t3"), ("s3", "t4")]
        for seed in range(10):
            split = split_links(links, 0.4, 0.2, seed=seed, entity_disjoint=True)
            for part in (split.train, split.validation, split.test):
                has_first = ("s0", "t0") in part
                has_second = ("s0", "t1") in part
                assert has_first == has_second

    def test_entity_disjoint_chain_cluster(self):
        # s0-t0, s1-t0, s1-t1 chain: all three links share entities.
        links = [("s0", "t0"), ("s1", "t0"), ("s1", "t1"), ("s2", "t2")]
        split = split_links(links, 0.5, 0.0, seed=3, entity_disjoint=True)
        chain = {("s0", "t0"), ("s1", "t0"), ("s1", "t1")}
        for part in (split.train, split.validation, split.test):
            overlap = chain & set(part)
            assert overlap in (set(), chain)


@pytest.fixture()
def tiny_task():
    source = KnowledgeGraph([("s0", "r", "s1"), ("s1", "r", "s2")], name="src")
    target = KnowledgeGraph([("t0", "q", "t1"), ("t1", "q", "t2")], name="tgt")
    split = AlignmentSplit((("s0", "t0"),), (("s1", "t1"),), (("s2", "t2"),))
    return AlignmentTask(source, target, split, name="tiny")


class TestAlignmentTask:
    def test_seed_links(self, tiny_task):
        assert tiny_task.seed_links == (("s0", "t0"),)

    def test_index_pairs(self, tiny_task):
        pairs = tiny_task.seed_index_pairs()
        assert pairs.shape == (1, 2)
        assert pairs[0, 0] == tiny_task.source.entity_id("s0")
        assert pairs[0, 1] == tiny_task.target.entity_id("t0")

    def test_test_source_ids(self, tiny_task):
        ids = tiny_task.test_source_ids()
        assert ids.tolist() == [tiny_task.source.entity_id("s2")]

    def test_unknown_link_entity_rejected(self):
        source = KnowledgeGraph([("s0", "r", "s1")])
        target = KnowledgeGraph([("t0", "q", "t1")])
        split = AlignmentSplit((("ghost", "t0"),), (), ())
        with pytest.raises(ValueError, match="unknown source entity"):
            AlignmentTask(source, target, split)

    def test_display_name_fallback(self, tiny_task):
        assert tiny_task.display_name("source", "s0") == "s0"

    def test_display_name_lookup(self, tiny_task):
        tiny_task.source_names["s0"] = "Berlin"
        assert tiny_task.display_name("source", "s0") == "Berlin"

    def test_display_name_bad_side(self, tiny_task):
        with pytest.raises(ValueError, match="side"):
            tiny_task.display_name("middle", "s0")

    def test_query_ids_without_unmatchables(self, tiny_task):
        np.testing.assert_array_equal(
            tiny_task.test_query_ids(), tiny_task.test_source_ids()
        )

    def test_unmatchable_entities_extend_queries(self):
        source = KnowledgeGraph([("s0", "r", "s1"), ("u0", "r", "s0")])
        target = KnowledgeGraph([("t0", "q", "t1"), ("u1", "q", "t0")])
        split = AlignmentSplit((), (), (("s0", "t0"), ("s1", "t1")))
        task = AlignmentTask(
            source, target, split,
            unmatchable_source=("u0",), unmatchable_target=("u1",),
        )
        queries = set(task.test_query_ids().tolist())
        assert source.entity_id("u0") in queries
        candidates = set(task.candidate_target_ids().tolist())
        assert target.entity_id("u1") in candidates

    def test_unmatchable_must_not_be_linked(self):
        source = KnowledgeGraph([("s0", "r", "s1")])
        target = KnowledgeGraph([("t0", "q", "t1")])
        split = AlignmentSplit((), (), (("s0", "t0"),))
        with pytest.raises(ValueError, match="both linked and unmatchable"):
            AlignmentTask(source, target, split, unmatchable_source=("s0",))

    def test_unmatchable_must_exist(self):
        source = KnowledgeGraph([("s0", "r", "s1")])
        target = KnowledgeGraph([("t0", "q", "t1")])
        split = AlignmentSplit((), (), (("s0", "t0"),))
        with pytest.raises(ValueError, match="not in source KG"):
            AlignmentTask(source, target, split, unmatchable_source=("ghost",))
