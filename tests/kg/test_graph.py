"""Tests for the KnowledgeGraph data model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph, Triple


@pytest.fixture()
def toy_graph():
    triples = [
        Triple("a", "r1", "b"),
        Triple("b", "r1", "c"),
        Triple("a", "r2", "c"),
        Triple("c", "r2", "d"),
    ]
    return KnowledgeGraph(triples, name="toy")


class TestConstruction:
    def test_counts(self, toy_graph):
        assert toy_graph.num_entities == 4
        assert toy_graph.num_relations == 2
        assert toy_graph.num_triples == 4

    def test_vocabulary_order_is_first_seen(self, toy_graph):
        assert toy_graph.entities == ("a", "b", "c", "d")
        assert toy_graph.relations == ("r1", "r2")

    def test_duplicate_triples_collapsed(self):
        graph = KnowledgeGraph([("a", "r", "b"), ("a", "r", "b")])
        assert graph.num_triples == 1

    def test_tuple_input_accepted(self):
        graph = KnowledgeGraph([("x", "r", "y")])
        assert graph.num_entities == 2

    def test_preseeded_entities(self):
        graph = KnowledgeGraph([("a", "r", "b")], entities=["z", "a", "b"])
        assert graph.entities == ("z", "a", "b")
        assert graph.entity_id("z") == 0

    def test_isolated_entity_via_preseed(self):
        graph = KnowledgeGraph([("a", "r", "b")], entities=["a", "b", "lonely"])
        assert graph.has_entity("lonely")
        assert graph.degrees()[graph.entity_id("lonely")] == 0

    def test_empty_graph(self):
        graph = KnowledgeGraph([])
        assert graph.num_entities == 0
        assert graph.num_triples == 0

    def test_repr(self, toy_graph):
        assert "toy" in repr(toy_graph)


class TestLookup:
    def test_entity_id_roundtrip(self, toy_graph):
        for name in toy_graph.entities:
            assert toy_graph.entities[toy_graph.entity_id(name)] == name

    def test_relation_id(self, toy_graph):
        assert toy_graph.relation_id("r2") == 1

    def test_unknown_entity_raises(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.entity_id("ghost")

    def test_has_entity(self, toy_graph):
        assert toy_graph.has_entity("a")
        assert not toy_graph.has_entity("ghost")


class TestTriples:
    def test_iteration_roundtrip(self, toy_graph):
        names = {tuple(t) for t in toy_graph.triples()}
        assert ("a", "r1", "b") in names
        assert len(names) == 4

    def test_triple_ids_shape(self, toy_graph):
        ids = toy_graph.triple_ids
        assert ids.shape == (4, 3)
        assert ids.dtype == np.int64

    def test_triple_ids_is_copy(self, toy_graph):
        ids = toy_graph.triple_ids
        ids[0, 0] = 99
        assert toy_graph.triple_ids[0, 0] != 99

    def test_relation_triples(self, toy_graph):
        counts = toy_graph.relation_triples()
        assert counts == {"r1": 2, "r2": 2}


class TestStructure:
    def test_degrees(self, toy_graph):
        deg = toy_graph.degrees()
        # a: 2 triples, b: 2, c: 3, d: 1
        assert deg.tolist() == [2, 2, 3, 1]

    def test_average_degree(self, toy_graph):
        assert toy_graph.average_degree() == pytest.approx(8 / 4)

    def test_average_degree_empty(self):
        assert KnowledgeGraph([]).average_degree() == 0.0

    def test_adjacency_symmetric(self, toy_graph):
        adj = toy_graph.adjacency()
        assert (adj != adj.T).nnz == 0

    def test_adjacency_binary(self, toy_graph):
        adj = toy_graph.adjacency()
        assert set(np.unique(adj.data)) <= {1.0}

    def test_adjacency_self_loops(self, toy_graph):
        adj = toy_graph.adjacency(add_self_loops=True)
        np.testing.assert_array_equal(adj.diagonal(), 1.0)

    def test_adjacency_without_self_loops(self, toy_graph):
        adj = toy_graph.adjacency(add_self_loops=False)
        np.testing.assert_array_equal(adj.diagonal(), 0.0)

    def test_normalized_adjacency_rows(self, toy_graph):
        norm = toy_graph.normalized_adjacency()
        assert isinstance(norm, sp.csr_matrix)
        # Symmetric normalisation keeps the matrix symmetric.
        assert abs(norm - norm.T).max() < 1e-12
        # Spectral radius of D^-1/2 (A+I) D^-1/2 is at most 1.
        eigenvalue = np.max(np.abs(np.linalg.eigvalsh(norm.toarray())))
        assert eigenvalue <= 1.0 + 1e-9

    def test_neighbors(self, toy_graph):
        assert set(toy_graph.neighbors("c")) == {"a", "b", "d"}

    def test_neighbors_direction_agnostic(self, toy_graph):
        assert "c" in toy_graph.neighbors("d")
