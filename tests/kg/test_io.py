"""Tests for OpenEA-format serialization."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.io import load_alignment_task, load_knowledge_graph, save_alignment_task
from repro.kg.pair import AlignmentSplit, AlignmentTask


@pytest.fixture()
def roundtrip_task():
    source = KnowledgeGraph([("s0", "r0", "s1"), ("s1", "r1", "s2")], name="source")
    target = KnowledgeGraph([("t0", "q0", "t1"), ("t2", "q0", "t0")], name="target")
    split = AlignmentSplit(
        (("s0", "t0"),), (("s1", "t1"),), (("s2", "t2"),),
    )
    return AlignmentTask(source, target, split, name="rt")


class TestRoundtrip:
    def test_save_creates_files(self, roundtrip_task, tmp_path):
        directory = save_alignment_task(roundtrip_task, tmp_path / "ds")
        for name in (
            "rel_triples_1", "rel_triples_2", "train_links", "valid_links", "test_links",
        ):
            assert (directory / name).exists()

    def test_roundtrip_preserves_triples(self, roundtrip_task, tmp_path):
        directory = save_alignment_task(roundtrip_task, tmp_path / "ds")
        loaded = load_alignment_task(directory)
        assert {tuple(t) for t in loaded.source.triples()} == {
            tuple(t) for t in roundtrip_task.source.triples()
        }
        assert {tuple(t) for t in loaded.target.triples()} == {
            tuple(t) for t in roundtrip_task.target.triples()
        }

    def test_roundtrip_preserves_splits(self, roundtrip_task, tmp_path):
        directory = save_alignment_task(roundtrip_task, tmp_path / "ds")
        loaded = load_alignment_task(directory)
        assert loaded.split == roundtrip_task.split

    def test_task_name_defaults_to_directory(self, roundtrip_task, tmp_path):
        directory = save_alignment_task(roundtrip_task, tmp_path / "mydata")
        assert load_alignment_task(directory).name == "mydata"

    def test_generated_dataset_roundtrip(self, small_task, tmp_path):
        directory = save_alignment_task(small_task, tmp_path / "gen")
        loaded = load_alignment_task(directory)
        assert loaded.source.num_triples == small_task.source.num_triples
        assert set(loaded.split.test) == set(small_task.split.test)


class TestLoadKnowledgeGraph:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "triples"
        path.write_text("a\tr\tb\n\nb\tr\tc\n", encoding="utf-8")
        graph = load_knowledge_graph(path)
        assert graph.num_triples == 2

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "triples"
        path.write_text("a\tr\tb\nbroken line\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            load_knowledge_graph(path)

    def test_unicode_entities(self, tmp_path):
        path = tmp_path / "triples"
        path.write_text("北京\tcapital_of\t中国\n", encoding="utf-8")
        graph = load_knowledge_graph(path)
        assert graph.has_entity("北京")

    def test_malformed_links_raise(self, tmp_path, roundtrip_task):
        directory = save_alignment_task(roundtrip_task, tmp_path / "ds")
        (directory / "train_links").write_text("only_one_field\n", encoding="utf-8")
        with pytest.raises(ValueError, match="2 tab-separated"):
            load_alignment_task(directory)
