"""Tests for the named dataset presets."""

import pytest

from repro.datasets.zoo import (
    DATASET_PRESETS,
    DBP15K_PRESETS,
    DWY100K_PRESETS,
    SRPRS_PRESETS,
    list_presets,
    load_preset,
)
from repro.kg.stats import dataset_statistics


class TestPresetCatalog:
    def test_all_groups_registered(self):
        for preset in DBP15K_PRESETS + SRPRS_PRESETS + DWY100K_PRESETS:
            assert preset in DATASET_PRESETS

    def test_list_presets_includes_settings(self):
        names = list_presets()
        assert "fb_dbp_mul" in names
        assert "dbp15k_plus/zh_en" in names
        assert "dbp15k/zh_en" in names

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown preset"):
            load_preset("dbp15k/nope")


class TestPresetProperties:
    @pytest.mark.parametrize("preset", DBP15K_PRESETS)
    def test_dbp_density(self, preset):
        task = load_preset(preset, scale=0.4)
        stats = dataset_statistics(task)
        assert stats.average_degree > 3.5  # dense family

    @pytest.mark.parametrize("preset", SRPRS_PRESETS)
    def test_srprs_density(self, preset):
        task = load_preset(preset, scale=0.4)
        stats = dataset_statistics(task)
        assert stats.average_degree < 3.2  # sparse family

    def test_scale_changes_size(self):
        small = load_preset("dbp15k/zh_en", scale=0.2)
        full = load_preset("dbp15k/zh_en", scale=0.4)
        assert full.source.num_entities == 2 * small.source.num_entities

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_preset("dbp15k/zh_en", scale=0.0)

    def test_seed_override_changes_data(self):
        a = load_preset("srprs/en_fr", scale=0.2)
        b = load_preset("srprs/en_fr", scale=0.2, seed=999)
        assert a.split != b.split

    def test_plus_preset_has_unmatchables(self):
        task = load_preset("dbp15k_plus/zh_en", scale=0.3)
        assert len(task.unmatchable_source) > 0
        assert len(task.unmatchable_target) > 0
        # Asymmetric by construction (source side gets more).
        assert len(task.unmatchable_source) > len(task.unmatchable_target)

    def test_fb_preset_is_non_one_to_one(self):
        task = load_preset("fb_dbp_mul", scale=0.3)
        stats = dataset_statistics(task)
        assert stats.num_non_one_to_one_links > 0

    def test_monolingual_names_nearly_identical(self):
        task = load_preset("srprs/dbp_yg", scale=0.3)
        gold = dict(task.split.all_links)
        same = sum(
            task.source_names[s] == task.target_names[gold[s]]
            for s in list(gold)[:100]
        )
        assert same > 50  # name_edit_rate 0.05: most names survive intact

    def test_multilingual_names_differ(self):
        task = load_preset("dbp15k/zh_en", scale=0.3)
        gold = dict(task.split.all_links)
        same = sum(
            task.source_names[s] == task.target_names[gold[s]]
            for s in list(gold)[:100]
        )
        assert same < 50
