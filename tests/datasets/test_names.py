"""Tests for synthetic entity-name generation and corruption."""

import numpy as np
import pytest

from repro.datasets.names import corrupt_name, generate_entity_names


class TestGenerateEntityNames:
    def test_count(self):
        assert len(generate_entity_names(25, seed=0)) == 25

    def test_unique(self):
        names = generate_entity_names(500, seed=1)
        assert len(set(names)) == 500

    def test_deterministic(self):
        assert generate_entity_names(20, seed=3) == generate_entity_names(20, seed=3)

    def test_zero_count(self):
        assert generate_entity_names(0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            generate_entity_names(-1)

    def test_syllable_bounds(self):
        names = generate_entity_names(50, seed=0, min_syllables=2, max_syllables=2)
        assert all(len(name) == 4 for name in names)

    def test_invalid_syllables(self):
        with pytest.raises(ValueError):
            generate_entity_names(5, min_syllables=3, max_syllables=2)

    def test_names_are_lowercase_ascii(self):
        for name in generate_entity_names(50, seed=2):
            assert name.isascii()
            assert name == name.lower()


class TestCorruptName:
    def test_zero_rate_is_identity(self, rng):
        assert corrupt_name("berlin", 0.0, rng) == "berlin"

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError, match="edit_rate"):
            corrupt_name("berlin", 1.5, rng)

    def test_empty_name_unchanged(self, rng):
        assert corrupt_name("", 0.5, rng) == ""

    def test_never_empty_result(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert corrupt_name("ab", 1.0, rng) != ""

    def test_low_rate_mostly_preserves(self):
        rng = np.random.default_rng(0)
        name = "abcdefghij"
        changed = sum(corrupt_name(name, 0.05, rng) != name for _ in range(100))
        assert changed < 80

    def test_high_rate_mostly_changes(self):
        rng = np.random.default_rng(0)
        name = "abcdefghij"
        changed = sum(corrupt_name(name, 0.8, rng) != name for _ in range(100))
        assert changed > 95

    def test_rate_controls_edit_distance(self):
        # The cross-KG signal knob: more edits at higher rates, on average.
        rng = np.random.default_rng(1)
        name = "abcdefghijklmnop"

        def mean_length_change(rate):
            return np.mean([
                abs(len(corrupt_name(name, rate, rng)) - len(name)) +
                sum(a != b for a, b in zip(corrupt_name(name, rate, rng), name))
                for _ in range(200)
            ])

        assert mean_length_change(0.5) > mean_length_change(0.1)
