"""Tests for the correlated KG-pair generator."""

import pytest

from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair, generate_kg
from repro.kg.stats import dataset_statistics


class TestKGPairConfig:
    def test_defaults_valid(self):
        KGPairConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_entities": 1},
            {"num_relations": 0},
            {"average_degree": 0.0},
            {"heterogeneity": 1.5},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            KGPairConfig(**kwargs)


class TestGenerateKG:
    def test_counts(self):
        graph = generate_kg(100, 8, 4.0, seed=0)
        assert graph.num_entities == 100
        assert graph.num_relations == 8

    def test_average_degree_close_to_target(self):
        graph = generate_kg(300, 10, 4.0, seed=1)
        assert graph.average_degree() == pytest.approx(4.0, rel=0.15)

    def test_sparse_degree(self):
        graph = generate_kg(300, 10, 2.3, seed=1)
        assert graph.average_degree() == pytest.approx(2.3, rel=0.2)

    def test_deterministic(self):
        a = generate_kg(50, 5, 3.0, seed=7)
        b = generate_kg(50, 5, 3.0, seed=7)
        assert {tuple(t) for t in a.triples()} == {tuple(t) for t in b.triples()}

    def test_connected(self):
        import networkx as nx

        graph = generate_kg(80, 5, 3.0, seed=2)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(graph.num_entities))
        for head, _, tail in graph.triple_ids:
            nx_graph.add_edge(int(head), int(tail))
        assert nx.is_connected(nx_graph)

    def test_scale_free_skew(self):
        # Preferential attachment: the max degree far exceeds the mean.
        graph = generate_kg(500, 10, 4.0, seed=3)
        degrees = graph.degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_zipf_relation_distribution(self):
        graph = generate_kg(500, 20, 4.0, seed=4)
        counts = sorted(graph.relation_triples().values(), reverse=True)
        assert counts[0] > 3 * counts[len(counts) // 2]


class TestGenerateAlignedPair:
    def test_one_to_one_links(self):
        task = generate_aligned_pair(KGPairConfig(num_entities=80, seed=0))
        stats = dataset_statistics(task)
        assert stats.num_gold_links == 80
        assert stats.num_non_one_to_one_links == 0

    def test_every_entity_linked(self):
        task = generate_aligned_pair(KGPairConfig(num_entities=60, seed=1))
        sources = {src for src, _ in task.split.all_links}
        targets = {tgt for _, tgt in task.split.all_links}
        assert sources == set(task.source.entities)
        assert targets == set(task.target.entities)

    def test_target_ids_shuffled(self):
        task = generate_aligned_pair(KGPairConfig(num_entities=100, seed=2))
        aligned_ids = [
            (task.source.entity_id(s), task.target.entity_id(t))
            for s, t in task.split.all_links
        ]
        mismatched = sum(1 for s, t in aligned_ids if s != t)
        assert mismatched > 50  # index equality carries no signal

    def test_heterogeneity_zero_gives_isomorphic_views(self):
        task = generate_aligned_pair(
            KGPairConfig(num_entities=60, heterogeneity=0.0, seed=3)
        )
        gold = dict(task.split.all_links)
        source_edges = {
            frozenset((gold[t.subject], gold[t.object])) for t in task.source.triples()
        }
        target_edges = {
            frozenset((t.subject, t.object)) for t in task.target.triples()
        }
        assert source_edges == target_edges

    def test_heterogeneity_controls_overlap(self):
        def overlap(heterogeneity):
            task = generate_aligned_pair(
                KGPairConfig(num_entities=150, heterogeneity=heterogeneity, seed=4)
            )
            gold = dict(task.split.all_links)
            source_edges = {
                frozenset((gold[t.subject], gold[t.object]))
                for t in task.source.triples()
            }
            target_edges = {
                frozenset((t.subject, t.object)) for t in task.target.triples()
            }
            return len(source_edges & target_edges) / len(source_edges)

        assert overlap(0.05) > overlap(0.4)

    def test_display_names_present(self):
        task = generate_aligned_pair(KGPairConfig(num_entities=40, seed=5))
        assert set(task.source_names) == set(task.source.entities)
        assert set(task.target_names) == set(task.target.entities)

    def test_name_edit_rate_zero_gives_identical_names(self):
        task = generate_aligned_pair(
            KGPairConfig(num_entities=40, name_edit_rate=0.0, seed=6)
        )
        for src, tgt in task.split.all_links:
            assert task.source_names[src] == task.target_names[tgt]

    def test_split_fractions(self):
        task = generate_aligned_pair(
            KGPairConfig(num_entities=100, train_fraction=0.3,
                         validation_fraction=0.1, seed=7)
        )
        assert len(task.split.train) == 30
        assert len(task.split.validation) == 10
        assert len(task.split.test) == 60

    def test_deterministic(self):
        config = KGPairConfig(num_entities=50, seed=8)
        a = generate_aligned_pair(config)
        b = generate_aligned_pair(config)
        assert a.split == b.split
        assert {tuple(t) for t in a.source.triples()} == {
            tuple(t) for t in b.source.triples()
        }

    def test_density_preserved_under_heterogeneity(self):
        dense = generate_aligned_pair(
            KGPairConfig(num_entities=200, average_degree=4.0,
                         heterogeneity=0.3, seed=9)
        )
        assert dense.source.average_degree() == pytest.approx(4.0, rel=0.2)
        assert dense.target.average_degree() == pytest.approx(4.0, rel=0.2)
