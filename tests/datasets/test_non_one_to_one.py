"""Tests for the FB_DBP_MUL-style non-1-to-1 generator."""

from collections import Counter

import pytest

from repro.datasets.non_one_to_one import NonOneToOneConfig, generate_non_one_to_one_task
from repro.kg.stats import dataset_statistics


@pytest.fixture(scope="module")
def mul_task():
    config = NonOneToOneConfig(
        num_entities=150, num_relations=8,
        one_to_many_fraction=0.3, many_to_one_fraction=0.3,
        many_to_many_fraction=0.1, seed=13, name="mul",
    )
    return generate_non_one_to_one_task(config)


class TestConfig:
    def test_defaults_valid(self):
        NonOneToOneConfig()

    def test_fractions_sum_checked(self):
        with pytest.raises(ValueError, match="sum"):
            NonOneToOneConfig(
                one_to_many_fraction=0.5, many_to_one_fraction=0.5,
                many_to_many_fraction=0.5,
            )

    def test_max_duplicates_checked(self):
        with pytest.raises(ValueError, match="max_duplicates"):
            NonOneToOneConfig(max_duplicates=1)


class TestGeneration:
    def test_has_non_one_to_one_links(self, mul_task):
        stats = dataset_statistics(mul_task)
        assert stats.num_non_one_to_one_links > stats.num_one_to_one_links

    def test_link_types_present(self, mul_task):
        links = mul_task.split.all_links
        source_counts = Counter(src for src, _ in links)
        target_counts = Counter(tgt for _, tgt in links)
        assert any(count > 1 for count in source_counts.values())  # 1-to-many
        assert any(count > 1 for count in target_counts.values())  # many-to-1

    def test_cluster_completeness(self, mul_task):
        # Copies of base entity i: links are the full bipartite product,
        # so #links for the cluster equals (#source copies) x (#target copies).
        links = mul_task.split.all_links
        by_base: dict[str, set] = {}
        for src, tgt in links:
            base = src.split("_")[0][1:]
            by_base.setdefault(base, set()).add((src, tgt))
        for base, cluster_links in by_base.items():
            sources = {s for s, _ in cluster_links}
            targets = {t for _, t in cluster_links}
            assert len(cluster_links) == len(sources) * len(targets)

    def test_entity_disjoint_split(self, mul_task):
        # No entity may appear in two different splits.
        parts = {
            "train": mul_task.split.train,
            "validation": mul_task.split.validation,
            "test": mul_task.split.test,
        }
        seen_sources: dict[str, str] = {}
        seen_targets: dict[str, str] = {}
        for part_name, links in parts.items():
            for src, tgt in links:
                assert seen_sources.setdefault(src, part_name) == part_name
                assert seen_targets.setdefault(tgt, part_name) == part_name

    def test_no_isolated_copies(self, mul_task):
        degrees = mul_task.source.degrees()
        assert degrees.min() >= 1

    def test_all_copies_linked(self, mul_task):
        linked_sources = {src for src, _ in mul_task.split.all_links}
        assert linked_sources == set(mul_task.source.entities)

    def test_display_names_cover_all(self, mul_task):
        assert set(mul_task.source_names) == set(mul_task.source.entities)
        assert set(mul_task.target_names) == set(mul_task.target.entities)

    def test_deterministic(self):
        config = NonOneToOneConfig(num_entities=60, seed=21)
        a = generate_non_one_to_one_task(config)
        b = generate_non_one_to_one_task(config)
        assert a.split == b.split

    def test_duplicate_counts_respect_max(self, mul_task):
        links = mul_task.split.all_links
        source_counts = Counter(src for src, _ in links)
        # A source's link count = #target copies of its base, <= max_duplicates.
        assert max(source_counts.values()) <= 3
