"""Tests for the unmatchable-entity (DBP15K+) adaptation."""

import pytest

from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities


@pytest.fixture(scope="module")
def base_task():
    return generate_aligned_pair(
        KGPairConfig(num_entities=80, num_relations=6, seed=11, name="base")
    )


@pytest.fixture(scope="module")
def plus_task(base_task):
    config = UnmatchableConfig(unmatchable_fraction=0.5, attachment_degree=2, seed=1)
    return add_unmatchable_entities(base_task, config)


class TestUnmatchableConfig:
    def test_defaults_valid(self):
        UnmatchableConfig()

    def test_target_fraction_defaults_to_half(self):
        config = UnmatchableConfig(unmatchable_fraction=0.4)
        assert config.effective_target_fraction == pytest.approx(0.2)

    def test_explicit_target_fraction(self):
        config = UnmatchableConfig(unmatchable_fraction=0.4, target_fraction=0.1)
        assert config.effective_target_fraction == pytest.approx(0.1)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            UnmatchableConfig(unmatchable_fraction=3.0)

    def test_invalid_attachment(self):
        with pytest.raises(ValueError):
            UnmatchableConfig(attachment_degree=0)


class TestAddUnmatchableEntities:
    def test_counts_asymmetric(self, base_task, plus_task):
        num_test = len(base_task.split.test)
        assert len(plus_task.unmatchable_source) == round(0.5 * num_test)
        assert len(plus_task.unmatchable_target) == round(0.25 * num_test)

    def test_gold_links_unchanged(self, base_task, plus_task):
        assert plus_task.split == base_task.split

    def test_grafted_entities_in_kgs(self, plus_task):
        for entity in plus_task.unmatchable_source:
            assert plus_task.source.has_entity(entity)
        for entity in plus_task.unmatchable_target:
            assert plus_task.target.has_entity(entity)

    def test_grafted_entities_have_structure(self, plus_task):
        for entity in plus_task.unmatchable_source:
            degree = plus_task.source.degrees()[plus_task.source.entity_id(entity)]
            assert degree >= 1

    def test_original_triples_preserved(self, base_task, plus_task):
        original = {tuple(t) for t in base_task.source.triples()}
        extended = {tuple(t) for t in plus_task.source.triples()}
        assert original <= extended

    def test_grafted_entities_have_fresh_names(self, base_task, plus_task):
        base_names = set(base_task.source_names.values()) | set(
            base_task.target_names.values()
        )
        for entity in plus_task.unmatchable_source:
            assert plus_task.source_names[entity] not in base_names

    def test_queries_include_unmatchables(self, base_task, plus_task):
        extra = len(plus_task.test_query_ids()) - len(base_task.test_query_ids())
        assert extra == len(plus_task.unmatchable_source)

    def test_name_suffix(self, plus_task):
        assert plus_task.name.endswith("+")

    def test_deterministic(self, base_task):
        config = UnmatchableConfig(unmatchable_fraction=0.3, seed=5)
        a = add_unmatchable_entities(base_task, config)
        b = add_unmatchable_entities(base_task, config)
        assert a.unmatchable_source == b.unmatchable_source
        assert {tuple(t) for t in a.source.triples()} == {
            tuple(t) for t in b.source.triples()
        }
