"""Chaos suite: supervised sweeps survive injected faults.

The contract (ISSUE 2 acceptance criteria): with faults injected into
any single matcher, ``run_experiment`` returns results for all remaining
matchers, ``ExperimentResult.failures`` names the failed matcher with
its typed error, and a ``Hun.`` deadline breach yields a recorded
``Greedy`` fallback result — all deterministic under a fixed seed.

The exhaustive every-matcher x every-injector sweep is marked ``chaos``
(deselect with ``-m 'not chaos'``); the contract tests themselves run on
a tiny preset and stay in tier-1.
"""

import pytest

from repro.core.registry import available_matchers
from repro.errors import (
    ConvergenceError,
    DataIntegrityError,
    DeadlineExceeded,
    MatcherError,
    ResourceBudgetExceeded,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.tables import FAILED_CELL, TableResult, _matcher_rows
from repro.runtime.supervisor import SupervisorPolicy
from repro.testing.faults import (
    AllocationFailure,
    EmbeddingCorruptor,
    ForcedConvergenceFailure,
    KernelStall,
    default_injectors,
    faulty_factory,
)

MATCHERS = ("DInf", "CSLS", "Hun.")
SCALE = 0.2


def _config(matchers=MATCHERS, **overrides):
    defaults = dict(
        preset="dbp15k/zh_en", input_regime="R", matchers=matchers,
        scale=SCALE, seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSweepContinuesPastFailure:
    def test_single_sabotaged_matcher_does_not_abort_sweep(self):
        factory = faulty_factory({"CSLS": AllocationFailure()})
        result = run_experiment(
            _config(),
            policy=SupervisorPolicy(on_error="skip"),
            matcher_factory=factory,
        )
        # Everyone else completed...
        assert set(result.runs) == {"DInf", "Hun."}
        # ...and the ledger names the casualty with its typed error.
        assert set(result.failures) == {"CSLS"}
        failure = result.failures["CSLS"]
        assert failure.resolution == "skipped"
        assert isinstance(failure.error, ResourceBudgetExceeded)
        assert "CSLS" in failure.describe()

    def test_clean_sweep_has_empty_ledger(self):
        result = run_experiment(_config(), policy=SupervisorPolicy(on_error="skip"))
        assert set(result.runs) == set(MATCHERS)
        assert result.failures == {}

    def test_raise_policy_preserves_seed_behaviour(self):
        factory = faulty_factory({"CSLS": AllocationFailure()})
        with pytest.raises(MatcherError):
            run_experiment(
                _config(),
                policy=SupervisorPolicy(on_error="raise"),
                matcher_factory=factory,
            )

    def test_unsupervised_run_still_propagates(self):
        factory = faulty_factory({"CSLS": AllocationFailure()})
        with pytest.raises(MemoryError):
            run_experiment(_config(), matcher_factory=factory)

    def test_corrupted_embeddings_are_typed_in_ledger(self):
        factory = faulty_factory({"DInf": EmbeddingCorruptor(fraction=0.05, seed=1)})
        result = run_experiment(
            _config(),
            policy=SupervisorPolicy(on_error="skip"),
            matcher_factory=factory,
        )
        assert isinstance(result.failures["DInf"].error, DataIntegrityError)
        assert result.failures["DInf"].error.bad_count > 0
        assert set(result.runs) == {"CSLS", "Hun."}

    def test_deterministic_under_fixed_seed(self):
        def sweep():
            factory = faulty_factory(
                {"CSLS": EmbeddingCorruptor(fraction=0.05, seed=3)}
            )
            result = run_experiment(
                _config(),
                policy=SupervisorPolicy(on_error="skip", seed=5),
                matcher_factory=factory,
            )
            return (
                sorted(result.runs),
                {name: result.runs[name].f1 for name in result.runs},
                sorted(result.failures),
                {n: f.error_type for n, f in result.failures.items()},
            )

        assert sweep() == sweep()


class TestFallbackRecorded:
    def test_hun_deadline_breach_yields_recorded_greedy_fallback(self):
        # The acceptance-criteria scenario: Hun. stalls past its
        # deadline, the sweep records a Greedy fallback result.
        factory = faulty_factory({"Hun.": KernelStall(seconds=0.6)})
        result = run_experiment(
            _config(),
            policy=SupervisorPolicy(timeout=0.1, on_error="fallback"),
            matcher_factory=factory,
        )
        assert set(result.runs) == set(MATCHERS)
        run = result.runs["Hun."]
        assert run.degraded and run.fallback == "Greedy"
        failure = result.failures["Hun."]
        assert failure.resolution == "fallback"
        assert failure.fallback == "Greedy"
        assert isinstance(failure.error, DeadlineExceeded)
        # The fallback result is a real matching, scored like any other.
        assert 0.0 <= run.f1 <= 1.0
        # And the degraded matcher matches what Greedy/DInf produces
        # (same decoding on the same scores).
        assert run.f1 == pytest.approx(result.runs["DInf"].f1)

    def test_budget_breach_fallback(self):
        # A tight budget fails Hun. (padded cost matrix) but not the
        # cheap decoders; the ladder swaps in Greedy.
        probe = run_experiment(_config(matchers=("DInf", "Hun.")))
        hun_peak = probe.runs["Hun."].peak_bytes
        dinf_peak = probe.runs["DInf"].peak_bytes
        assert dinf_peak < hun_peak
        budget = (dinf_peak + hun_peak) // 2
        result = run_experiment(
            _config(matchers=("DInf", "Hun.")),
            policy=SupervisorPolicy(memory_budget=budget, on_error="fallback"),
        )
        run = result.runs["Hun."]
        assert run.degraded and run.fallback == "Greedy"
        assert isinstance(result.failures["Hun."].error, ResourceBudgetExceeded)
        assert not result.runs["DInf"].degraded

    def test_retry_then_success_leaves_no_ledger_entry(self):
        factory = faulty_factory({"CSLS": ForcedConvergenceFailure(failures=1)})
        result = run_experiment(
            _config(),
            policy=SupervisorPolicy(retries=2, backoff_base=0.0, on_error="skip"),
            matcher_factory=factory,
        )
        assert set(result.runs) == set(MATCHERS)
        assert result.failures == {}
        assert result.runs["CSLS"].attempts == 2


class TestTableRendering:
    def test_failed_cells_render_as_dash(self):
        # A table over supervised results renders missing runs as "—".
        factory = faulty_factory({"CSLS": AllocationFailure()})
        table = TableResult(title="test")
        for preset in ("dbp15k/zh_en",):
            config = _config(preset=preset)
            table.results[("R", preset)] = run_experiment(
                config,
                policy=SupervisorPolicy(on_error="skip"),
                matcher_factory=factory,
            )
        _matcher_rows(table, [("R-DBP", "R", ("dbp15k/zh_en",))], MATCHERS)
        by_matcher = {row["matcher"]: row for row in table.rows}
        csls_cells = [v for k, v in by_matcher["CSLS"].items() if k != "matcher"]
        assert all(cell == FAILED_CELL for cell in csls_cells)
        dinf_cells = [v for k, v in by_matcher["DInf"].items() if k != "matcher"]
        assert all(isinstance(cell, float) for cell in dinf_cells)

    def test_format_table_accepts_failed_cells(self):
        from repro.experiments.reporting import format_table

        rows = [{"matcher": "CSLS", "F1": FAILED_CELL}, {"matcher": "DInf", "F1": 0.5}]
        rendered = format_table(rows, title="t")
        assert FAILED_CELL in rendered


@pytest.mark.chaos
class TestChaosMatrix:
    """Every registry matcher under every injector: the sweep never dies."""

    @pytest.mark.parametrize(
        "injector", default_injectors(stall_seconds=0.3), ids=lambda i: i.name
    )
    @pytest.mark.parametrize("victim", available_matchers())
    def test_sweep_survives(self, victim, injector):
        matchers = tuple(dict.fromkeys(("DInf", victim)))
        factory = faulty_factory({victim: injector})
        policy = SupervisorPolicy(
            timeout=0.1 if isinstance(injector, KernelStall) else None,
            retries=0,
            on_error="fallback",
            seed=0,
        )
        result = run_experiment(
            _config(matchers=matchers), policy=policy, matcher_factory=factory
        )
        if victim != "DInf":
            assert "DInf" in result.runs  # bystander always completes
            assert not result.runs["DInf"].degraded
        if isinstance(injector, KernelStall):
            # Deadline breach: either a recorded fallback or a ledger entry.
            failure = result.failures[victim]
            assert isinstance(failure.error, DeadlineExceeded)
            if failure.resolution == "fallback":
                assert result.runs[victim].fallback == failure.fallback
        elif isinstance(injector, AllocationFailure):
            failure = result.failures[victim]
            assert isinstance(failure.error, ResourceBudgetExceeded)
        elif isinstance(injector, EmbeddingCorruptor):
            failure = result.failures[victim]
            assert isinstance(failure.error, DataIntegrityError)
        else:  # ForcedConvergenceFailure with retries=0
            failure = result.failures[victim]
            assert isinstance(failure.error, ConvergenceError)
        # Failure ledger is populated and typed for every sabotaged run.
        assert result.failures[victim].matcher == victim
