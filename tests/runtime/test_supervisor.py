"""Tests for the supervised matching runtime (errors + RunSupervisor)."""

import time

import numpy as np
import pytest

from repro.core.base import Matcher, MatchResult
from repro.core.csls import CSLS
from repro.core.greedy import DInf
from repro.core.registry import create_matcher
from repro.core.sinkhorn import Sinkhorn
from repro.errors import (
    ConvergenceError,
    DataIntegrityError,
    DeadlineExceeded,
    MatcherError,
    ResourceBudgetExceeded,
    as_matcher_error,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.supervisor import (
    DEGRADATION_LADDER,
    RunSupervisor,
    SupervisorPolicy,
    backoff_schedule,
)
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch


def _embeddings(n=6, d=4, seed=0):
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(n, d))
    return source, source.copy()  # identical spaces: greedy is exact


class _StallingMatcher(Matcher):
    """Sleeps (finite) before delegating to greedy — watchdog target."""

    name = "Stall"

    def __init__(self, seconds=0.3):
        self.seconds = seconds
        self.metric = "cosine"

    def match(self, source, target):
        time.sleep(self.seconds)
        return DInf().match(source, target)


class _FlakyMatcher(Matcher):
    """Raises ConvergenceError for the first ``failures`` calls."""

    name = "Flaky"

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = 0

    def match(self, source, target):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConvergenceError("flaky", temperature=0.01, iteration=3)
        return DInf().match(source, target)


class _HungryMatcher(Matcher):
    """Declares a huge working set — budget-breach target."""

    name = "Hungry"

    def __init__(self, nbytes=2**30):
        self.nbytes = nbytes
        self.metric = "cosine"

    def match(self, source, target):
        memory = MemoryTracker()
        memory.allocate("huge", self.nbytes)
        result = DInf().match(source, target)
        return MatchResult(
            result.pairs, result.scores, stopwatch=Stopwatch(), memory=memory
        )


class TestErrorTaxonomy:
    def test_matcher_name_in_rendering(self):
        err = MatcherError("boom", matcher="Hun.")
        assert "[Hun.]" in str(err)
        assert "boom" in str(err)

    def test_annotate_fills_only_blanks(self):
        err = MatcherError("boom", matcher="Hun.", context={"attempt": 1})
        err.annotate("Sink.", attempt=2, preset="x")
        assert err.matcher == "Hun."
        assert err.context == {"attempt": 1, "preset": "x"}

    def test_convergence_is_retryable_others_not(self):
        assert ConvergenceError("x").retryable
        assert not DeadlineExceeded("x").retryable
        assert not ResourceBudgetExceeded("x").retryable
        assert not DataIntegrityError("x").retryable

    def test_data_integrity_is_value_error(self):
        assert isinstance(DataIntegrityError("x"), ValueError)

    def test_as_matcher_error_wraps_memoryerror_as_budget(self):
        wrapped = as_matcher_error(MemoryError("oom"), matcher="Hun.")
        assert isinstance(wrapped, ResourceBudgetExceeded)
        assert wrapped.matcher == "Hun."

    def test_as_matcher_error_passthrough_annotates(self):
        original = ConvergenceError("diverged")
        wrapped = as_matcher_error(original, matcher="Sink.", preset="p")
        assert wrapped is original
        assert wrapped.matcher == "Sink."
        assert wrapped.context["preset"] == "p"


class TestPolicyValidation:
    def test_bad_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            SupervisorPolicy(on_error="explode")

    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            SupervisorPolicy(timeout=0)

    def test_bad_retries(self):
        with pytest.raises(ValueError, match="retries"):
            SupervisorPolicy(retries=-1)

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="memory_budget"):
            SupervisorPolicy(memory_budget=-5)


class TestCleanPath:
    def test_success_passthrough(self):
        source, target = _embeddings()
        run = RunSupervisor().run(DInf(), source, target)
        assert run.ok and not run.degraded
        assert run.executed == "DInf"
        assert run.chain == ["DInf"]
        assert len(run.attempts) == 1 and run.attempts[0].ok
        assert run.error is None
        assert len(run.result.pairs) == len(source)

    def test_no_timeout_runs_inline(self):
        # Without a timeout the matcher must run on the calling thread
        # (zero watchdog overhead on the clean path).
        import threading

        calling = threading.current_thread().name
        seen = {}

        class Probe(DInf):
            def match(self, source, target):
                seen["thread"] = threading.current_thread().name
                return super().match(source, target)

        source, target = _embeddings()
        RunSupervisor().run(Probe(), source, target)
        assert seen["thread"] == calling


class TestDeadline:
    def test_deadline_breach_raises(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(SupervisorPolicy(timeout=0.05))
        with pytest.raises(DeadlineExceeded) as excinfo:
            supervisor.run(_StallingMatcher(0.5), source, target)
        assert excinfo.value.deadline_seconds == 0.05
        assert excinfo.value.matcher == "Stall"

    def test_fast_run_unaffected_by_timeout(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(SupervisorPolicy(timeout=30.0))
        run = supervisor.run(DInf(), source, target)
        assert run.ok and not run.degraded


class TestMemoryBudget:
    def test_budget_breach_raises(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(SupervisorPolicy(memory_budget=2**20))
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            supervisor.run(_HungryMatcher(2**30), source, target)
        assert excinfo.value.peak_bytes >= 2**30
        assert excinfo.value.budget_bytes == 2**20

    def test_budget_breach_skip_records(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="skip")
        )
        run = supervisor.run(_HungryMatcher(), source, target)
        assert not run.ok
        assert isinstance(run.error, ResourceBudgetExceeded)
        assert "FAILED" in run.describe()


class TestRetry:
    def test_retry_recovers_flaky_matcher(self):
        source, target = _embeddings()
        sleeps = []
        supervisor = RunSupervisor(
            SupervisorPolicy(retries=2), sleep=sleeps.append
        )
        run = supervisor.run(_FlakyMatcher(failures=2), source, target)
        assert run.ok
        assert len(run.attempts) == 3
        assert [a.ok for a in run.attempts] == [False, False, True]
        assert sleeps == [a.backoff for a in run.attempts[:2]]
        assert all(s > 0 for s in sleeps)

    def test_retries_exhausted_raises(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(SupervisorPolicy(retries=1), sleep=lambda s: None)
        with pytest.raises(ConvergenceError):
            supervisor.run(_FlakyMatcher(failures=5), source, target)

    def test_non_retryable_never_retried(self):
        source, target = _embeddings()
        source[0, 0] = np.nan  # DataIntegrityError at the boundary
        supervisor = RunSupervisor(
            SupervisorPolicy(retries=3, on_error="skip"), sleep=lambda s: None
        )
        run = supervisor.run(DInf(), source, target)
        assert not run.ok
        assert isinstance(run.error, DataIntegrityError)
        assert len(run.attempts) == 1

    def test_schedule_deterministic_per_seed(self):
        # Same seed -> same attempt schedule; different seed -> different.
        a = backoff_schedule(SupervisorPolicy(retries=4, seed=7))
        b = backoff_schedule(SupervisorPolicy(retries=4, seed=7))
        c = backoff_schedule(SupervisorPolicy(retries=4, seed=8))
        assert a == b
        assert a != c
        assert len(a) == 4
        # Exponential envelope: each delay sits within its jitter band.
        policy = SupervisorPolicy(retries=4, seed=7)
        for i, delay in enumerate(a):
            low = policy.backoff_base * policy.backoff_factor**i
            assert low <= delay <= low * (1 + policy.backoff_jitter)

    def test_same_seed_same_recorded_backoffs(self):
        source, target = _embeddings()

        def attempt_backoffs():
            sleeps = []
            supervisor = RunSupervisor(
                SupervisorPolicy(retries=3, seed=11), sleep=sleeps.append
            )
            supervisor.run(_FlakyMatcher(failures=3), source, target)
            return sleeps

        assert attempt_backoffs() == attempt_backoffs()

    def test_sinkhorn_temperature_softened_per_retry(self):
        source, target = _embeddings()
        # 1e-320 is denormal: S / temperature overflows immediately.
        matcher = Sinkhorn(iterations=5, temperature=1e-320)
        supervisor = RunSupervisor(
            SupervisorPolicy(retries=1, temperature_factor=1e300),
            sleep=lambda s: None,
        )
        run = supervisor.run(matcher, source, target)
        # One divergence, then the softened retry converges.
        assert run.ok
        assert len(run.attempts) == 2
        assert isinstance(run.attempts[0].error, ConvergenceError)
        assert matcher.temperature > 1e-320


class TestDegradationLadder:
    def test_hun_deadline_degrades_to_greedy(self):
        source, target = _embeddings(n=8)
        hun = create_matcher("Hun.")
        stalled = _StallingMatcher(0.5)
        stalled.name = "Hun."
        stalled.metric = hun.metric
        supervisor = RunSupervisor(
            SupervisorPolicy(timeout=0.05, on_error="fallback")
        )
        run = supervisor.run(stalled, source, target, name="Hun.")
        assert run.ok and run.degraded
        assert run.executed == "Greedy"
        assert run.fallback_from == "Hun."
        assert run.chain == ["Hun.", "Greedy"]
        assert isinstance(run.error, DeadlineExceeded)
        assert "degraded to Greedy" in run.describe()
        # The fallback actually matched (identical spaces -> exact).
        gold = {(i, i) for i in range(len(source))}
        assert run.result.as_set() == gold

    def test_budget_breach_walks_ladder(self):
        source, target = _embeddings()
        hungry = _HungryMatcher()
        hungry.name = "Sink."
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="fallback")
        )
        run = supervisor.run(hungry, source, target, name="Sink.")
        assert run.ok and run.degraded
        assert run.executed == "CSLS"  # Sink. -> CSLS per the ladder

    def test_ladder_terminal_failure_is_recorded(self):
        # Greedy has no fallback: a breach there fails the run.
        source, target = _embeddings()
        hungry = _HungryMatcher()
        hungry.name = "Greedy"
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="fallback")
        )
        run = supervisor.run(hungry, source, target, name="Greedy")
        assert not run.ok
        assert isinstance(run.error, ResourceBudgetExceeded)

    def test_non_breach_errors_do_not_degrade(self):
        # fallback mode only ladders deadline/budget breaches; a data
        # integrity failure is recorded, not papered over.
        source, target = _embeddings()
        source[1, 2] = np.inf
        hun = create_matcher("Hun.")
        supervisor = RunSupervisor(SupervisorPolicy(on_error="fallback"))
        run = supervisor.run(hun, source, target)
        assert not run.ok
        assert isinstance(run.error, DataIntegrityError)
        assert run.chain == ["Hun."]

    def test_fallback_inherits_engine_and_metric(self):
        from repro.similarity.engine import SimilarityEngine

        source, target = _embeddings()
        hungry = _HungryMatcher()
        hungry.name = "Hun."
        hungry.metric = "euclidean"
        with SimilarityEngine() as engine:
            hungry.engine = engine
            supervisor = RunSupervisor(
                SupervisorPolicy(memory_budget=2**20, on_error="fallback")
            )
            run = supervisor.run(hungry, source, target, name="Hun.")
            assert run.ok and run.executed == "Greedy"

    def test_default_ladder_is_total_and_terminates(self):
        # Every chain reaches a matcher with no further fallback.
        for start in DEGRADATION_LADDER:
            seen = [start]
            current = start
            while current in DEGRADATION_LADDER:
                current = DEGRADATION_LADDER[current]
                assert current not in seen, f"ladder cycle via {seen}"
                seen.append(current)
            assert current == "Greedy"


class TestMetricsLedgerConsistency:
    """supervisor.* counters tell the same story as the run ledger.

    Every count is cross-checked against the :class:`SupervisedRun`
    record produced by the same call, via a registry injected into the
    supervisor — no reliance on (or pollution of) the process-global one.
    """

    @staticmethod
    def _supervisor(policy, registry, **kwargs):
        from repro.obs.metrics import MetricsRegistry

        assert isinstance(registry, MetricsRegistry)
        return RunSupervisor(policy, metrics=registry, **kwargs)

    @staticmethod
    def _registry():
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry()

    def test_clean_run_counts(self):
        source, target = _embeddings()
        registry = self._registry()
        run = self._supervisor(SupervisorPolicy(), registry).run(DInf(), source, target)
        assert registry.counter("supervisor.attempts") == len(run.attempts) == 1
        assert registry.counter("supervisor.runs") == 1
        assert registry.counter("supervisor.retries") == 0
        assert registry.counter("supervisor.degradations") == 0
        assert registry.counter("supervisor.degraded_runs") == 0
        assert registry.counter("supervisor.failed_runs") == 0

    def test_retry_counts_match_attempt_ledger(self):
        source, target = _embeddings()
        registry = self._registry()
        supervisor = self._supervisor(
            SupervisorPolicy(retries=2), registry, sleep=lambda s: None
        )
        run = supervisor.run(_FlakyMatcher(failures=2), source, target)
        assert run.ok
        assert registry.counter("supervisor.attempts") == len(run.attempts) == 3
        failed_attempts = sum(1 for a in run.attempts if not a.ok)
        assert registry.counter("supervisor.retries") == failed_attempts == 2
        assert registry.counter("supervisor.runs") == 1
        assert registry.counter("supervisor.failed_runs") == 0

    def test_degradation_counts_match_chain(self):
        source, target = _embeddings()
        hungry = _HungryMatcher()
        hungry.name = "Sink."
        registry = self._registry()
        supervisor = self._supervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="fallback"), registry
        )
        run = supervisor.run(hungry, source, target, name="Sink.")
        assert run.ok and run.degraded
        # One hop per extra ladder entry in the chain.
        assert registry.counter("supervisor.degradations") == len(run.chain) - 1
        assert registry.counter("supervisor.degraded_runs") == 1
        assert registry.counter("supervisor.runs") == 1
        assert registry.counter("supervisor.attempts") == len(run.attempts)
        assert registry.counter("supervisor.failed_runs") == 0

    def test_terminal_failure_counts(self):
        source, target = _embeddings()
        registry = self._registry()
        supervisor = self._supervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="skip"), registry
        )
        run = supervisor.run(_HungryMatcher(), source, target)
        assert not run.ok
        assert registry.counter("supervisor.failed_runs") == 1
        assert registry.counter("supervisor.runs") == 0
        assert registry.counter("supervisor.attempts") == len(run.attempts) == 1

    def test_raise_mode_still_counts_failure(self):
        source, target = _embeddings()
        registry = self._registry()
        supervisor = self._supervisor(SupervisorPolicy(memory_budget=2**20), registry)
        with pytest.raises(ResourceBudgetExceeded):
            supervisor.run(_HungryMatcher(), source, target)
        assert registry.counter("supervisor.failed_runs") == 1
        assert registry.counter("supervisor.runs") == 0

    def test_counts_accumulate_across_runs(self):
        source, target = _embeddings()
        registry = self._registry()
        supervisor = self._supervisor(SupervisorPolicy(), registry)
        for _ in range(3):
            supervisor.run(DInf(), source, target)
        assert registry.counter("supervisor.runs") == 3
        assert registry.counter("supervisor.attempts") == 3

    def test_uninjected_supervisor_uses_active_registry(self):
        from repro.obs import metrics as obs_metrics

        source, target = _embeddings()
        with obs_metrics.scoped() as registry:
            RunSupervisor().run(DInf(), source, target)
        assert registry.counter("supervisor.runs") == 1
        assert registry.counter("supervisor.attempts") == 1

    def test_degrade_and_retry_events_traced(self):
        from repro.obs import trace

        source, target = _embeddings()
        hungry = _HungryMatcher()
        hungry.name = "Hun."
        supervisor = self._supervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="fallback"),
            self._registry(),
        )
        with trace.recording() as recorder:
            supervisor.run(hungry, source, target, name="Hun.")
        (event,) = [e for e in recorder.events if e["name"] == "supervisor.degrade"]
        assert event["attrs"]["matcher"] == "Hun."
        assert event["attrs"]["fallback"] == "Greedy"
        assert event["attrs"]["error"] == "ResourceBudgetExceeded"


class _HungrySparse(CSLS):
    """Sparse-capable matcher whose *dense* path declares a huge footprint."""

    def __init__(self):
        super().__init__()
        self.name = "CSLS"

    def match(self, source, target):
        memory = MemoryTracker()
        memory.allocate("huge", 2**30)
        result = DInf().match(source, target)
        return MatchResult(
            result.pairs, result.scores, stopwatch=Stopwatch(), memory=memory
        )


class _HungryEverywhere(_HungrySparse):
    """Breaches the budget on the dense *and* the sparse path."""

    def match_candidates(self, candidates):
        memory = MemoryTracker()
        memory.allocate("huge", 2**30)
        result = super().match_candidates(candidates)
        return MatchResult(
            result.pairs, result.scores, stopwatch=Stopwatch(), memory=memory
        )


class _BrokenEngine:
    def top_k_candidates(self, *args, **kwargs):
        raise RuntimeError("engine down")


class TestSparseRung:
    """The dense -> sparse degradation rung (policy.sparse_k)."""

    POLICY = dict(memory_budget=2**20, on_error="fallback", sparse_k=5)

    def test_sparse_k_validated(self):
        with pytest.raises(ValueError, match="sparse_k"):
            SupervisorPolicy(sparse_k=0)

    def test_memory_breach_retries_same_algorithm_sparsely(self):
        source, target = _embeddings(n=12)
        registry = MetricsRegistry()
        supervisor = RunSupervisor(SupervisorPolicy(**self.POLICY), metrics=registry)
        run = supervisor.run(_HungrySparse(), source, target)
        assert run.ok
        assert run.chain == ["CSLS", "CSLS+sparse"]
        assert run.executed == "CSLS+sparse"
        assert len(run.result.pairs) == 12
        assert registry.counter("supervisor.sparse_degradations") == 1
        assert registry.counter("supervisor.degradations") == 0

    def test_rung_fires_at_most_once_then_ladder_keeps_marker(self):
        source, target = _embeddings(n=10)
        registry = MetricsRegistry()
        supervisor = RunSupervisor(SupervisorPolicy(**self.POLICY), metrics=registry)
        run = supervisor.run(_HungryEverywhere(), source, target)
        # Sparse CSLS breaches too; the ladder hop (Greedy) inherits the
        # candidate lists and the chain says so.
        assert run.chain == ["CSLS", "CSLS+sparse", "Greedy+sparse"]
        assert run.ok
        assert registry.counter("supervisor.sparse_degradations") == 1
        assert registry.counter("supervisor.degradations") == 1

    def test_deadline_breach_never_takes_the_rung(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(
            SupervisorPolicy(
                timeout=0.05, on_error="skip", sparse_k=5, retries=0
            )
        )
        stalling = _StallingMatcher(seconds=0.4)
        run = supervisor.run(stalling, source, target)
        assert not run.ok
        assert isinstance(run.error, DeadlineExceeded)
        assert run.chain == ["Stall"]

    def test_dense_only_matcher_skips_the_rung(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="skip", sparse_k=5)
        )
        run = supervisor.run(_HungryMatcher(), source, target)
        assert not run.ok
        assert isinstance(run.error, ResourceBudgetExceeded)
        assert run.chain == ["Hungry"]

    def test_without_sparse_k_the_ladder_runs_as_before(self):
        source, target = _embeddings()
        registry = MetricsRegistry()
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="fallback"),
            metrics=registry,
        )
        run = supervisor.run(_HungrySparse(), source, target)
        assert run.chain == ["CSLS", "Greedy"]
        assert registry.counter("supervisor.sparse_degradations") == 0

    def test_candidate_build_failure_keeps_original_error(self):
        source, target = _embeddings()
        matcher = _HungrySparse()
        matcher.name = "HungrySp"  # no ladder entry: failure must surface
        matcher.engine = _BrokenEngine()
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="skip", sparse_k=5)
        )
        run = supervisor.run(matcher, source, target, name="HungrySp")
        assert not run.ok
        assert isinstance(run.error, ResourceBudgetExceeded)
        assert run.chain == ["HungrySp"]

    def test_caller_supplied_candidates_run_sparse_directly(self):
        source, target = _embeddings(n=8)
        from repro.index.candidates import CandidateSet
        from repro.similarity.chunked import chunked_top_k

        indices, scores = chunked_top_k(source, target, 3)
        candidates = CandidateSet.from_topk(indices, scores, n_targets=8)
        run = RunSupervisor().run(CSLS(), source, target, candidates=candidates)
        assert run.ok
        assert run.chain == ["CSLS"]
        assert len(run.result.pairs) == 8


class TestShardedRung:
    """The dense -> sharded rung (policy.sharded_k), tried before sparse."""

    POLICY = dict(memory_budget=2**20, on_error="fallback", sharded_k=5)

    def test_sharded_k_validated(self):
        with pytest.raises(ValueError, match="sharded_k"):
            SupervisorPolicy(sharded_k=0)

    def test_memory_breach_reruns_on_blocked_candidates(self):
        source, target = _embeddings(n=12)
        registry = MetricsRegistry()
        supervisor = RunSupervisor(SupervisorPolicy(**self.POLICY), metrics=registry)
        run = supervisor.run(_HungrySparse(), source, target)
        assert run.ok
        assert run.chain == ["CSLS", "CSLS+sharded"]
        assert run.executed == "CSLS+sharded"
        assert len(run.result.pairs) == 12
        assert registry.counter("supervisor.sharded_degradations") == 1
        assert registry.counter("supervisor.sparse_degradations") == 0
        assert registry.counter("supervisor.degradations") == 0

    def test_sharded_rung_outranks_the_sparse_rung(self):
        source, target = _embeddings(n=12)
        registry = MetricsRegistry()
        supervisor = RunSupervisor(
            SupervisorPolicy(**self.POLICY, sparse_k=5), metrics=registry
        )
        run = supervisor.run(_HungrySparse(), source, target)
        assert run.chain == ["CSLS", "CSLS+sharded"]
        assert registry.counter("supervisor.sharded_degradations") == 1
        assert registry.counter("supervisor.sparse_degradations") == 0

    def test_ladder_hop_keeps_the_sharded_marker(self):
        source, target = _embeddings(n=10)
        registry = MetricsRegistry()
        supervisor = RunSupervisor(SupervisorPolicy(**self.POLICY), metrics=registry)
        run = supervisor.run(_HungryEverywhere(), source, target)
        assert run.chain == ["CSLS", "CSLS+sharded", "Greedy+sharded"]
        assert run.ok
        assert registry.counter("supervisor.sharded_degradations") == 1
        assert registry.counter("supervisor.degradations") == 1

    def test_dense_only_matcher_skips_the_rung(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(
            SupervisorPolicy(memory_budget=2**20, on_error="skip", sharded_k=5)
        )
        run = supervisor.run(_HungryMatcher(), source, target)
        assert not run.ok
        assert isinstance(run.error, ResourceBudgetExceeded)
        assert run.chain == ["Hungry"]

    def test_deadline_breach_never_takes_the_rung(self):
        source, target = _embeddings()
        supervisor = RunSupervisor(
            SupervisorPolicy(
                timeout=0.05, on_error="fallback", sharded_k=5, retries=0
            )
        )
        run = supervisor.run(_StallingMatcher(seconds=0.4), source, target)
        assert "Stall+sharded" not in run.chain

    def test_densify_mid_run_is_caught_as_budget_breach(self):
        # The policy budget is ambient during the attempt: a matcher that
        # densifies a candidate set bigger than the budget raises a typed
        # ResourceBudgetExceeded (never a raw MemoryError), and the
        # ladder handles it like any other breach.
        from repro.index.candidates import CandidateSet
        from repro.similarity.chunked import chunked_top_k

        class _Densifier(Matcher):
            name = "Sink."
            metric = "cosine"

            def match(self, source, target):  # pragma: no cover - unused
                raise AssertionError("sparse path expected")

            def match_candidates(self, candidates):
                candidates.densify()
                raise AssertionError("densify should have refused")

        source, target = _embeddings(n=64)
        indices, scores = chunked_top_k(source, target, 3)
        candidates = CandidateSet.from_topk(indices, scores, n_targets=64)
        supervisor = RunSupervisor(
            # Budget below the 64 x 64 x 8 = 32 KiB dense matrix, above
            # the k=3 candidate footprint of the CSLS fallback.
            SupervisorPolicy(memory_budget=16_384, on_error="fallback")
        )
        run = supervisor.run(_Densifier(), source, target, candidates=candidates)
        assert run.ok
        assert run.chain == ["Sink.", "CSLS+sparse"]
        assert isinstance(run.error, ResourceBudgetExceeded) or run.error is None
