"""Ambient memory budget: scope semantics and the densify refusal path."""

import numpy as np
import pytest

from repro.errors import ResourceBudgetExceeded
from repro.index import CandidateSet
from repro.obs.metrics import get_metrics
from repro.runtime.budget import active_budget, budget_scope
from repro.similarity.topk import top_k_indices


def _candidates(n=32):
    rng = np.random.default_rng(3)
    scores = rng.random((n, n))
    indices = top_k_indices(scores, n)
    values = np.take_along_axis(scores, indices, axis=1)
    return CandidateSet.from_topk(indices, values, n)


class TestBudgetScope:
    def test_no_scope_means_no_budget(self):
        assert active_budget() is None

    def test_scope_publishes_and_restores(self):
        with budget_scope(1024):
            assert active_budget() == 1024
        assert active_budget() is None

    def test_scopes_nest_innermost_wins(self):
        with budget_scope(2048):
            with budget_scope(512):
                assert active_budget() == 512
            assert active_budget() == 2048

    def test_none_budget_is_a_no_op(self):
        with budget_scope(None):
            assert active_budget() is None

    def test_restores_after_an_exception(self):
        with pytest.raises(RuntimeError):
            with budget_scope(64):
                raise RuntimeError("boom")
        assert active_budget() is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            with budget_scope(0):
                pass  # pragma: no cover


class TestDensifyUnderBudget:
    def test_densify_refuses_before_allocating(self):
        candidates = _candidates(32)  # dense = 32*32*8 = 8192 bytes
        registry = get_metrics()
        densifies = registry.counter("sparse.densify")
        with budget_scope(4096):
            with pytest.raises(ResourceBudgetExceeded) as excinfo:
                candidates.densify()
        # Refused up front: the densify counter never moved.
        assert registry.counter("sparse.densify") == densifies
        assert excinfo.value.peak_bytes == 32 * 32 * 8
        assert excinfo.value.budget_bytes == 4096

    def test_densify_proceeds_within_budget(self):
        candidates = _candidates(8)  # dense = 512 bytes
        with budget_scope(10_000):
            dense = candidates.densify()
        assert dense.shape == (8, 8)

    def test_densify_unbudgeted_is_unchanged(self):
        dense = _candidates(8).densify()
        assert dense.shape == (8, 8)
