"""Worker-crash containment: typed errors, no hangs, no leaked memory.

Two layers of evidence:

* in-process (fast, always on): the :class:`KilledWorkerInjector`
  produces the exact error signature a dead pool worker leaves, driving
  the supervisor's process -> thread rung without spawning anything;
* real processes (``chaos_crash``): a pool worker is SIGKILL'd for real
  and the shard executor must surface a typed
  :class:`~repro.errors.WorkerCrashedError` promptly (the no-hang
  guarantee), with every shared-memory segment unlinked.
"""

import os
import signal
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np
import pytest

from repro.core.greedy import DInf
from repro.errors import WorkerCrashedError
from repro.runtime.supervisor import RunSupervisor, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine
from repro.similarity.sharded import process_sharded_similarity
from repro.testing.faults import KilledWorkerInjector, kill_current_worker
from repro.utils.parallel import plan_shards


def _embeddings(n=40, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.normal(size=(n, d))


def _shm_segments():
    """Live ``shared_memory`` segments (Linux).

    Only the ``psm_`` blocks :mod:`multiprocessing.shared_memory`
    allocates count — the pool's own ``sem.mp-*`` semaphores belong to
    the executor's queues and are the resource tracker's business.
    """
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except OSError:  # pragma: no cover - non-Linux fallback
        return set()


class TestThreadRungInProcess:
    """The supervisor's process -> thread flip, driven by the injector."""

    def _supervised(self, injector, **policy_kwargs):
        source, target = _embeddings()
        engine = SimilarityEngine(backend="process", workers=2)
        matcher = injector.install(DInf())
        matcher.engine = engine
        supervisor = RunSupervisor(SupervisorPolicy(**policy_kwargs))
        try:
            return supervisor.run(matcher, source, target, name="DInf"), engine
        finally:
            engine.close()

    def test_crash_flips_backend_and_completes_with_thread_marker(self):
        run, engine = self._supervised(KilledWorkerInjector(failures=1))
        assert run.ok
        assert run.chain == ["DInf", "DInf+thread"]
        assert engine.backend == "thread"
        assert run.error is not None  # the crash that triggered the rung
        assert isinstance(run.error, WorkerCrashedError)
        assert run.error.exitcodes == (-signal.SIGKILL,)

    def test_rung_result_matches_thread_backend_bitwise(self):
        source, target = _embeddings()
        run, _ = self._supervised(KilledWorkerInjector(failures=1))
        with SimilarityEngine(backend="thread") as engine:
            clean = DInf()
            clean.engine = engine
            expected = clean.match(source, target)
        np.testing.assert_array_equal(run.result.pairs, expected.pairs)

    def test_rung_fires_at_most_once(self):
        # A second crash after the flip finds backend == "thread": the
        # rung refuses and the error propagates (on_error="raise").
        with pytest.raises(WorkerCrashedError):
            self._supervised(KilledWorkerInjector(failures=2))

    def test_rung_fires_under_skip_mode_too(self):
        run, engine = self._supervised(
            KilledWorkerInjector(failures=1), on_error="skip"
        )
        assert run.ok and engine.backend == "thread"

    def test_thread_backend_crash_is_not_flipped(self):
        source, target = _embeddings()
        with SimilarityEngine(backend="thread") as engine:
            matcher = KilledWorkerInjector(failures=1).install(DInf())
            matcher.engine = engine
            with pytest.raises(WorkerCrashedError):
                RunSupervisor(SupervisorPolicy()).run(
                    matcher, source, target, name="DInf"
                )


def _reap(pool):
    """Kill surviving workers, then join the executor fully.

    A fire-and-forget ``shutdown(wait=False)`` on a broken pool leaves
    its management thread behind, which can deadlock interpreter exit.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        if process.is_alive():
            process.kill()
    pool.shutdown(wait=True, cancel_futures=True)


@pytest.mark.chaos_crash
class TestRealWorkerKill:
    """Actual SIGKILL'd pool workers: typed error, no hang, no leaks."""

    def _broken_pool(self):
        pool = ProcessPoolExecutor(max_workers=2, mp_context=get_context("spawn"))
        future = pool.submit(kill_current_worker)
        with pytest.raises(Exception):  # BrokenProcessPool, promptly
            future.result(timeout=60)
        return pool

    def test_sigkilled_worker_yields_typed_error_and_no_leaked_shm(self):
        source, target = _embeddings(n=64, d=16)
        shards = plan_shards(64, 64, chunk_rows=16)
        before = _shm_segments()
        pool = self._broken_pool()
        try:
            with pytest.raises(WorkerCrashedError) as excinfo:
                process_sharded_similarity(
                    source, target, "cosine", shards, pool=pool
                )
        finally:
            _reap(pool)
        error = excinfo.value
        assert "shard worker process died" in str(error)
        assert error.backend == "process"
        assert all(code not in (None, 0) for code in error.exitcodes)
        assert _shm_segments() - before == set()  # every segment unlinked

    def test_kill_mid_pool_lifetime_breaks_map_not_hangs(self):
        source, target = _embeddings(n=64, d=16)
        shards = plan_shards(64, 64, chunk_rows=16)
        pool = ProcessPoolExecutor(max_workers=2, mp_context=get_context("spawn"))
        try:
            pool.submit(int, 0).result(timeout=60)  # force worker spawn
            victim = next(iter(pool._processes.values()))
            os.kill(victim.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashedError):
                process_sharded_similarity(
                    source, target, "cosine", shards, pool=pool
                )
        finally:
            _reap(pool)

    def test_engine_discards_broken_pool_and_recovers_via_supervisor(self):
        source, target = _embeddings(n=48, d=8)
        engine = SimilarityEngine(
            backend="process", workers=2, process_threshold=0, chunk_rows=16
        )
        try:
            # Break the engine's own pool with a real kill, then run a
            # supervised matcher: first attempt dies typed, the thread
            # rung reruns it, and the chain records the flip.
            inner_pool = engine._process_executor()
            future = inner_pool.submit(kill_current_worker)
            with pytest.raises(Exception):
                future.result(timeout=60)
            matcher = DInf()
            matcher.engine = engine
            run = RunSupervisor(SupervisorPolicy()).run(
                matcher, source, target, name="DInf"
            )
            assert run.ok
            assert run.chain == ["DInf", "DInf+thread"]
            assert engine.backend == "thread"
            with SimilarityEngine(backend="thread") as reference:
                clean = DInf()
                clean.engine = reference
                np.testing.assert_array_equal(
                    run.result.pairs, clean.match(source, target).pairs
                )
        finally:
            engine.close()
