"""Capacity-preallocated stores and the append_row serving primitive."""

import numpy as np
import pytest

from repro.errors import DataIntegrityError
from repro.storage import EmbeddingStore


@pytest.fixture
def capped(tmp_path):
    data = np.arange(12, dtype=np.float32).reshape(4, 3)
    store = EmbeddingStore.create(tmp_path / "emb.store", (4, 3), "float32",
                                  capacity=8)
    store[:] = data
    store.update_checksum()
    return store, data


class TestCapacity:
    def test_logical_shape_hides_the_padding(self, capped):
        store, data = capped
        assert store.shape == (4, 3)
        assert store.capacity == 8
        np.testing.assert_array_equal(store.as_array(), data)

    def test_checksum_covers_logical_rows_only(self, capped):
        store, _ = capped
        report = store.verify()
        assert report["verified"] is True
        assert report["nbytes"] == 4 * 3 * 4

    def test_capacity_below_rows_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            EmbeddingStore.create(tmp_path / "bad.store", (4, 3), capacity=2)

    def test_plain_store_has_no_capacity_key(self, tmp_path):
        store = EmbeddingStore.write(tmp_path / "plain.store", np.ones((3, 2)))
        assert "capacity" not in store.header
        assert store.capacity == 3

    def test_open_validates_size_against_capacity(self, capped, tmp_path):
        store, _ = capped
        path = store.path
        store.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00")
        with pytest.raises(DataIntegrityError, match="truncated or padded"):
            EmbeddingStore.open(path)


class TestAppendRow:
    def test_append_extends_rows_and_survives_reopen(self, capped):
        store, data = capped
        row = store.append_row(np.array([9.0, 8.0, 7.0], dtype=np.float32))
        assert row == 4
        assert store.shape == (5, 3)
        store.update_checksum()
        path = store.path
        store.close()
        with EmbeddingStore.open(path, verify=True) as reopened:
            assert reopened.shape == (5, 3)
            assert reopened.capacity == 8
            np.testing.assert_array_equal(reopened.as_array()[:4], data)
            np.testing.assert_array_equal(reopened[4], [9.0, 8.0, 7.0])

    def test_append_unseals_until_resealed(self, capped):
        store, _ = capped
        assert store.seal_state == "sealed"
        store.append_row(np.zeros(3, dtype=np.float32))
        assert store.seal_state == "unsealed"
        with pytest.raises(DataIntegrityError, match="never sealed"):
            store.verify()
        store.update_checksum()
        assert store.verify()["verified"] is True

    def test_append_past_capacity_is_rejected(self, capped):
        store, _ = capped
        for _ in range(4):
            store.append_row(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError, match="full"):
            store.append_row(np.zeros(3, dtype=np.float32))
        assert store.shape == (8, 3)

    def test_append_validates_input(self, capped, tmp_path):
        store, _ = capped
        with pytest.raises(ValueError, match="shape"):
            store.append_row(np.zeros(5, dtype=np.float32))
        with pytest.raises(ValueError, match="non-finite"):
            store.append_row(np.array([1.0, np.nan, 2.0]))
        read_only = EmbeddingStore.open(store.path)
        with pytest.raises(ValueError, match="read-only"):
            read_only.append_row(np.zeros(3, dtype=np.float32))
        read_only.close()

    def test_plain_store_refuses_appends(self, tmp_path):
        # No capacity reserved at create time: file rows == logical rows.
        store = EmbeddingStore.create(tmp_path / "plain.store", (3, 2), "float32")
        with pytest.raises(ValueError, match="full"):
            store.append_row(np.zeros(2, dtype=np.float32))
