"""Tests for the crash-safe persistence primitives.

The atomic-writer contract is all-or-nothing: a clean exit replaces the
destination in one rename, any exception leaves the destination exactly
as it was and removes the temp sibling.  The checksum helpers are the
shared corruption detector every durable artifact embeds.
"""

import os

import pytest

from repro.errors import DataIntegrityError
from repro.storage.durable import (
    CHECKSUM_ALGORITHM,
    CHECKSUM_DIGEST_SIZE,
    atomic_write,
    atomic_writer,
    payload_checksum,
    verify_checksum,
)


class TestAtomicWrite:
    def test_round_trips_bytes(self, tmp_path):
        path = tmp_path / "artifact.bin"
        assert atomic_write(path, b"payload") == path
        assert path.read_bytes() == b"payload"

    def test_encodes_text_as_utf8(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write(path, "π = 3.14159\n")
        assert path.read_text(encoding="utf-8") == "π = 3.14159\n"

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "artifact.bin"
        atomic_write(path, b"x")
        assert path.read_bytes() == b"x"

    def test_replaces_existing_file_completely(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"a much longer previous payload")
        atomic_write(path, b"short")
        assert path.read_bytes() == b"short"

    def test_leaves_no_temp_siblings_behind(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write(path, b"payload")
        assert os.listdir(tmp_path) == ["artifact.bin"]


class TestAtomicWriterFailure:
    def test_exception_leaves_missing_target_missing(self, tmp_path):
        path = tmp_path / "artifact.bin"
        with pytest.raises(RuntimeError, match="crash"):
            with atomic_writer(path) as handle:
                handle.write(b"half a pay")
                raise RuntimeError("injected crash mid-write")
        assert not path.exists()
        assert os.listdir(tmp_path) == []  # temp sibling cleaned up

    def test_exception_leaves_previous_contents_intact(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"the previous complete file")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write(b"new but torn")
                raise RuntimeError("injected crash mid-write")
        assert path.read_bytes() == b"the previous complete file"
        assert os.listdir(tmp_path) == ["artifact.bin"]

    def test_nothing_visible_until_clean_exit(self, tmp_path):
        path = tmp_path / "artifact.bin"
        with atomic_writer(path) as handle:
            handle.write(b"payload")
            assert not path.exists()  # still the invisible temp sibling
        assert path.read_bytes() == b"payload"


class TestChecksums:
    def test_digest_is_deterministic_and_sized(self):
        digest = payload_checksum(b"embedding bytes")
        assert digest == payload_checksum(b"embedding bytes")
        assert len(digest) == 2 * CHECKSUM_DIGEST_SIZE  # hex
        assert digest != payload_checksum(b"embedding bytez")

    def test_accepts_memoryview(self):
        payload = b"zero-copy hashing"
        assert payload_checksum(memoryview(payload)) == payload_checksum(payload)

    def test_verify_returns_digest_on_match(self, tmp_path):
        payload = b"content"
        digest = payload_checksum(payload)
        assert verify_checksum(tmp_path / "f", digest, payload) == digest

    def test_verify_mismatch_names_path_and_both_digests(self, tmp_path):
        path = tmp_path / "store.bin"
        recorded = payload_checksum(b"what was written")
        with pytest.raises(DataIntegrityError) as excinfo:
            verify_checksum(path, recorded, b"what is on disk", artifact="store")
        message = str(excinfo.value)
        assert str(path) in message
        assert "store checksum mismatch" in message
        assert f"{CHECKSUM_ALGORITHM}:{recorded}" in message
        assert f"{CHECKSUM_ALGORITHM}:{payload_checksum(b'what is on disk')}" in message

    def test_mismatch_is_a_value_error_for_legacy_callers(self, tmp_path):
        with pytest.raises(ValueError):
            verify_checksum(tmp_path / "f", payload_checksum(b"a"), b"b")
