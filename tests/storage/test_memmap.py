"""Memmap embedding store: round-trip, validation, and zero-copy views."""

import json

import numpy as np
import pytest

from repro.errors import DataIntegrityError
from repro.storage import HEADER_BYTES, STORE_VERSION, EmbeddingStore
from repro.storage.memmap import STORE_MAGIC, _build_header


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _write(tmp_path, array, name="emb.npy"):
    path = tmp_path / name
    EmbeddingStore.write(path, array)
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_write_then_open_restores_exact_bytes(self, tmp_path, rng, dtype):
        array = rng.normal(size=(17, 5)).astype(dtype)
        path = _write(tmp_path, array)
        with EmbeddingStore.open(path) as store:
            assert store.shape == (17, 5)
            assert store.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(store.as_array(), array)

    def test_empty_store_round_trips(self, tmp_path):
        array = np.empty((0, 4), dtype=np.float32)
        path = _write(tmp_path, array)
        with EmbeddingStore.open(path) as store:
            assert store.n_rows == 0
            assert store.dim == 4
            assert len(store) == 0

    def test_create_fill_reopen(self, tmp_path, rng):
        path = tmp_path / "emb.npy"
        array = rng.normal(size=(9, 3)).astype(np.float32)
        with EmbeddingStore.create(path, (9, 3), dtype="float32") as store:
            store[:] = array
            store.flush()
        with EmbeddingStore.open(path) as store:
            np.testing.assert_array_equal(store.as_array(), array)

    def test_file_layout_is_header_plus_raw_rows(self, tmp_path, rng):
        array = rng.normal(size=(4, 2)).astype(np.float64)
        path = _write(tmp_path, array)
        raw = path.read_bytes()
        assert raw[: len(STORE_MAGIC)] == STORE_MAGIC
        header = json.loads(raw[len(STORE_MAGIC):HEADER_BYTES])
        assert header["version"] == STORE_VERSION
        assert header["dtype"] == "float64"
        assert header["shape"] == [4, 2]
        assert raw[HEADER_BYTES:] == array.tobytes()


class TestValidation:
    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            EmbeddingStore.write(tmp_path / "x.npy", np.zeros(5, dtype=np.float32))

    def test_unsupported_dtype_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="dtype"):
            EmbeddingStore.write(
                tmp_path / "x.npy", np.zeros((2, 2), dtype=np.int64)
            )

    def test_bad_magic_rejected(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(3, 2)).astype(np.float32))
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="embedding store"):
            EmbeddingStore.open(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "x.npy"
        header = _build_header((1, 1), np.dtype(np.float32))
        header = header.replace(b'"version": 1', b'"version": 9')
        path.write_bytes(header.ljust(HEADER_BYTES, b" ") + b"\x00" * 4)
        with pytest.raises(ValueError, match="version"):
            EmbeddingStore.open(path)

    def test_truncated_payload_rejected(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(8, 4)).astype(np.float32))
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(ValueError, match="truncated or padded"):
            EmbeddingStore.open(path)

    def test_padded_payload_rejected(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(8, 4)).astype(np.float32))
        path.write_bytes(path.read_bytes() + b"\x00" * 16)
        with pytest.raises(ValueError, match="truncated or padded"):
            EmbeddingStore.open(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "x.npy"
        path.write_bytes(STORE_MAGIC + b"{not json" + b" " * HEADER_BYTES)
        with pytest.raises(ValueError, match="header"):
            EmbeddingStore.open(path)


class TestViews:
    def test_rows_is_zero_copy(self, tmp_path, rng):
        array = rng.normal(size=(20, 6)).astype(np.float32)
        path = _write(tmp_path, array)
        with EmbeddingStore.open(path) as store:
            view = store.rows(slice(5, 15))
            assert np.shares_memory(view, store.as_array())
            np.testing.assert_array_equal(view, array[5:15])

    def test_rows_requires_a_slice(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(4, 2)).astype(np.float32))
        with EmbeddingStore.open(path) as store:
            with pytest.raises(TypeError, match="slice"):
                store.rows([0, 1])

    def test_row_shards_cover_exactly_once(self, tmp_path, rng):
        array = rng.normal(size=(23, 3)).astype(np.float64)
        path = _write(tmp_path, array)
        with EmbeddingStore.open(path) as store:
            bands = list(store.row_shards(chunk_rows=7))
            starts = [band.start for band, _ in bands]
            stops = [band.stop for band, _ in bands]
            assert starts == [0, 7, 14, 21]
            assert stops == [7, 14, 21, 23]
            rebuilt = np.concatenate([view for _, view in bands])
            np.testing.assert_array_equal(rebuilt, array)

    def test_closed_store_refuses_access(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(4, 2)).astype(np.float32))
        store = EmbeddingStore.open(path)
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.as_array()

    def test_read_only_mapping_rejects_writes(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(4, 2)).astype(np.float32))
        with EmbeddingStore.open(path) as store:
            with pytest.raises((ValueError, RuntimeError)):
                store.as_array()[0, 0] = 1.0


class TestChecksum:
    def test_write_records_a_checksum_that_verifies(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(6, 3)).astype(np.float32))
        with EmbeddingStore.open(path, verify=True) as store:
            assert store.checksum is not None
            report = store.verify()
        assert report["verified"] is True
        assert report["recorded"] == report["computed"] == store.checksum
        assert report["path"] == str(path)

    def test_flipped_payload_byte_fails_verification(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(6, 3)).astype(np.float32))
        raw = bytearray(path.read_bytes())
        raw[HEADER_BYTES + 5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataIntegrityError, match="checksum mismatch"):
            EmbeddingStore.open(path, verify=True)
        # The default open stays O(header): corruption inside the payload
        # is only caught when verification is requested.
        EmbeddingStore.open(path).close()

    def test_store_without_checksum_reports_unverified(self, tmp_path, rng):
        array = rng.normal(size=(5, 2)).astype(np.float32)
        path = tmp_path / "legacy.npy"
        # A pre-durability store: valid header, no checksum block.
        payload = array.tobytes()
        path.write_bytes(_build_header(array.shape, array.dtype) + payload)
        with EmbeddingStore.open(path, verify=True) as store:  # must not raise
            assert store.checksum is None
            assert store.seal_state == "legacy"
            report = store.verify()
        assert report["verified"] is False
        assert report["recorded"] is None
        assert report["state"] == "legacy"

    def test_create_then_seal_with_update_checksum(self, tmp_path, rng):
        path = tmp_path / "emb.npy"
        array = rng.normal(size=(7, 3)).astype(np.float32)
        with EmbeddingStore.create(path, (7, 3), dtype="float32") as store:
            assert store.checksum is None  # unsealed while being filled
            assert store.seal_state == "unsealed"
            store[:] = array
            digest = store.update_checksum()
            assert store.checksum == digest
            assert store.seal_state == "sealed"
        with EmbeddingStore.open(path, verify=True) as store:
            np.testing.assert_array_equal(store.as_array(), array)

    def test_unsealed_store_fails_verification(self, tmp_path):
        # A create()d store killed mid band-fill must NOT pass for a
        # healthy legacy store: its explicit "checksum": null marker
        # makes verification fail until update_checksum() seals it.
        path = tmp_path / "emb.npy"
        EmbeddingStore.create(path, (4, 2), dtype="float32").close()
        with pytest.raises(DataIntegrityError, match="never sealed"):
            EmbeddingStore.open(path, verify=True)
        with EmbeddingStore.open(path) as store:  # default open stays lazy
            assert store.seal_state == "unsealed"
            with pytest.raises(DataIntegrityError, match="never sealed"):
                store.verify()

    def test_update_checksum_rejects_read_only_store(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(3, 2)).astype(np.float32))
        with EmbeddingStore.open(path) as store:
            with pytest.raises(ValueError, match="read-only"):
                store.update_checksum()

    def test_empty_store_checksum_round_trips(self, tmp_path):
        path = _write(tmp_path, np.empty((0, 4), dtype=np.float32))
        with EmbeddingStore.open(path, verify=True) as store:
            assert store.verify()["verified"] is True


class TestTruncationDiagnostics:
    def test_truncation_error_reports_byte_accounting(self, tmp_path, rng):
        path = _write(tmp_path, rng.normal(size=(8, 4)).astype(np.float32))
        expected = path.stat().st_size
        with path.open("r+b") as handle:
            handle.truncate(expected - 8)
        with pytest.raises(DataIntegrityError) as excinfo:
            EmbeddingStore.open(path)
        message = str(excinfo.value)
        assert "truncated or padded" in message
        assert f"{expected - 8} bytes on disk" in message
        assert f"header promises {expected}" in message
        assert "-8 B" in message
        assert "repro store verify" in message

    def test_crash_before_rename_leaves_previous_store_intact(
        self, tmp_path, rng, monkeypatch
    ):
        path = tmp_path / "emb.npy"
        before = rng.normal(size=(4, 2)).astype(np.float32)
        EmbeddingStore.write(path, before).close()

        # Crash the protocol at the last possible moment: the payload is
        # fully written and fsynced, the rename never happens.
        def crashing_replace(src, dst):
            raise OSError("injected crash during os.replace")

        monkeypatch.setattr("repro.storage.durable.os.replace", crashing_replace)
        with pytest.raises(OSError, match="injected crash"):
            EmbeddingStore.write(path, rng.normal(size=(9, 9)).astype(np.float32))
        monkeypatch.undo()

        import os

        assert os.listdir(tmp_path) == ["emb.npy"]  # temp sibling removed
        with EmbeddingStore.open(path, verify=True) as store:
            np.testing.assert_array_equal(store.as_array(), before)
