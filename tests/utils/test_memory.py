"""Tests for the analytical memory tracker."""

import numpy as np
import pytest

from repro.utils.memory import MemoryTracker, matrix_bytes


class TestMatrixBytes:
    def test_single_matrix(self):
        assert matrix_bytes((10, 10)) == 800

    def test_multiple_shapes(self):
        assert matrix_bytes((2, 3), (4,)) == (6 + 4) * 8

    def test_dtype(self):
        assert matrix_bytes((10, 10), dtype=np.float32) == 400


class TestMemoryTracker:
    def test_peak_tracks_concurrent_total(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 100)
        tracker.allocate("b", 200)
        tracker.release("a")
        tracker.allocate("c", 50)
        assert tracker.peak_bytes == 300
        assert tracker.current_bytes == 250

    def test_reallocate_same_name_replaces(self):
        tracker = MemoryTracker()
        tracker.allocate("x", 100)
        tracker.allocate("x", 40)
        assert tracker.current_bytes == 40

    def test_release_unknown_is_noop(self):
        tracker = MemoryTracker()
        tracker.release("ghost")
        assert tracker.current_bytes == 0

    def test_negative_allocation_raises(self):
        tracker = MemoryTracker()
        with pytest.raises(ValueError, match="non-negative"):
            tracker.allocate("bad", -1)

    def test_allocate_array(self):
        tracker = MemoryTracker()
        tracker.allocate_array("arr", np.zeros((5, 5)))
        assert tracker.current_bytes == 200

    def test_peak_gib(self):
        tracker = MemoryTracker()
        tracker.allocate("big", 2**30)
        assert tracker.peak_gib == pytest.approx(1.0)

    def test_fits_within(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 100)
        assert tracker.fits_within(100)
        assert not tracker.fits_within(99)
