"""Tests for the thread-pool chunk scheduling utilities."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.utils.parallel import (
    DEFAULT_CHUNK_ELEMS,
    map_chunks,
    resolve_workers,
    row_chunks,
    rows_per_chunk,
)


class TestResolveWorkers:
    def test_literal_counts(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    @pytest.mark.parametrize("setting", [None, 0])
    def test_all_cores(self, setting):
        assert resolve_workers(setting) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)


class TestRowsPerChunk:
    def test_budget_respected(self):
        rows = rows_per_chunk(1000, chunk_elems=10_000)
        assert rows == 10

    def test_at_least_min_rows(self):
        assert rows_per_chunk(10**9, chunk_elems=16) == 1
        assert rows_per_chunk(10**9, chunk_elems=16, min_rows=5) == 5

    def test_default_budget(self):
        assert rows_per_chunk(1) == DEFAULT_CHUNK_ELEMS

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="chunk_elems"):
            rows_per_chunk(10, chunk_elems=0)


class TestRowChunks:
    def test_covers_range_exactly(self):
        chunks = row_chunks(10, 3)
        assert chunks == [slice(0, 3), slice(3, 6), slice(6, 9), slice(9, 10)]

    def test_single_chunk(self):
        assert row_chunks(5, 100) == [slice(0, 5)]

    def test_empty(self):
        assert row_chunks(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            row_chunks(10, 0)


class TestMapChunks:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_order_preserved(self, workers):
        items = list(range(20))
        assert map_chunks(lambda x: x * x, items, workers) == [x * x for x in items]

    def test_serial_path_uses_calling_thread(self):
        seen = []
        map_chunks(lambda _: seen.append(threading.current_thread()), [1, 2], 1)
        assert all(thread is threading.main_thread() for thread in seen)

    def test_external_pool_reused(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            result = map_chunks(lambda x: x + 1, [1, 2, 3], workers=1, pool=pool)
        assert result == [2, 3, 4]

    def test_parallel_actually_runs_in_workers(self):
        names = map_chunks(
            lambda _: threading.current_thread() is threading.main_thread(),
            list(range(8)),
            workers=4,
        )
        assert not any(names)
