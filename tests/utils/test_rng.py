"""Tests for deterministic RNG handling."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_is_deterministic(self):
        a = ensure_rng(None).random(5)
        b = ensure_rng(None).random(5)
        np.testing.assert_array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(17).random(5)
        b = ensure_rng(17).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passed_through(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        seed = np.int64(11)
        a = ensure_rng(seed).random(3)
        b = ensure_rng(11).random(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_consumes_parent_stream(self):
        parent = np.random.default_rng(0)
        spawn_rngs(parent, 2)
        # Parent stream advanced: spawning twice from the same parent
        # yields different children.
        children_a = [g.random(2) for g in spawn_rngs(parent, 2)]
        children_b = [g.random(2) for g in spawn_rngs(parent, 2)]
        assert not all(
            np.array_equal(x, y) for x, y in zip(children_a, children_b)
        )
