"""Tests for the stopwatch instrumentation."""

import time

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_starts_empty(self):
        watch = Stopwatch()
        assert watch.total == 0.0
        assert watch.seconds("anything") == 0.0

    def test_measures_elapsed(self):
        watch = Stopwatch()
        with watch.measure("sleep"):
            time.sleep(0.01)
        assert watch.seconds("sleep") >= 0.009

    def test_accumulates_same_phase(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("loop"):
                time.sleep(0.003)
        assert watch.seconds("loop") >= 0.008

    def test_total_sums_phases(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.002)
        with watch.measure("b"):
            time.sleep(0.002)
        assert abs(watch.total - (watch.seconds("a") + watch.seconds("b"))) < 1e-9

    def test_records_on_exception(self):
        watch = Stopwatch()
        try:
            with watch.measure("boom"):
                time.sleep(0.002)
                raise RuntimeError("expected")
        except RuntimeError:
            pass
        assert watch.seconds("boom") > 0.0

    def test_as_dict_snapshot(self):
        watch = Stopwatch()
        with watch.measure("x"):
            pass
        snapshot = watch.as_dict()
        snapshot["x"] = 999.0
        assert watch.seconds("x") != 999.0


class TestTimed:
    def test_sets_seconds(self):
        with timed() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009

    def test_zero_before_exit(self):
        with timed() as t:
            assert t.seconds == 0.0
