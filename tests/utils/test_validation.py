"""Tests for boundary validation of embeddings and score matrices."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_embedding_matrix,
    check_score_matrix,
    check_shape_compatible,
)


class TestCheckEmbeddingMatrix:
    def test_passes_valid(self):
        out = check_embedding_matrix(np.ones((3, 4)))
        assert out.shape == (3, 4)
        assert out.dtype == np.float64

    def test_coerces_lists(self):
        out = check_embedding_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_embedding_matrix(np.ones(5))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_embedding_matrix(np.ones((2, 2, 2)))

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_embedding_matrix(np.ones((0, 4)))

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_embedding_matrix(np.ones((4, 0)))

    def test_rejects_nan(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            check_embedding_matrix(bad)

    def test_rejects_inf(self):
        bad = np.ones((2, 2))
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            check_embedding_matrix(bad)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="myname"):
            check_embedding_matrix(np.ones(3), name="myname")


class TestCheckScoreMatrix:
    def test_passes_valid(self):
        out = check_score_matrix(np.zeros((2, 3)))
        assert out.shape == (2, 3)

    def test_rejects_nan(self):
        bad = np.zeros((2, 2))
        bad[0, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            check_score_matrix(bad)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="2-D"):
            check_score_matrix(np.zeros(4))


class TestShapeCompatible:
    def test_matching_dims_pass(self):
        check_shape_compatible(np.ones((2, 8)), np.ones((5, 8)))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="embedding dimension"):
            check_shape_compatible(np.ones((2, 8)), np.ones((5, 7)))


class TestNonFiniteDiagnostics:
    def test_reports_count_and_first_position(self):
        from repro.errors import DataIntegrityError

        bad = np.ones((4, 5))
        bad[1, 3] = np.nan
        bad[2, 0] = np.inf
        bad[3, 4] = -np.inf
        with pytest.raises(DataIntegrityError) as excinfo:
            check_embedding_matrix(bad, name="emb")
        err = excinfo.value
        assert err.bad_count == 3
        assert err.first_bad == (1, 3)
        assert "3 non-finite" in str(err)
        assert "(row 1, col 3)" in str(err)

    def test_score_matrix_same_diagnostics(self):
        from repro.errors import DataIntegrityError

        bad = np.zeros((2, 2))
        bad[0, 1] = np.nan
        with pytest.raises(DataIntegrityError) as excinfo:
            check_score_matrix(bad)
        assert excinfo.value.bad_count == 1
        assert excinfo.value.first_bad == (0, 1)

    def test_still_a_value_error(self):
        bad = np.full((2, 2), np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            check_score_matrix(bad)
