"""Tests for the DL-based entity-matching baseline."""

import numpy as np
import pytest

from repro.baselines.deep_em import DeepEMBaseline, DeepEMConfig, _pair_features


class TestPairFeatures:
    def test_shape(self, rng):
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(5, 8))
        assert _pair_features(a, b).shape == (5, 32)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError, match="row-aligned"):
            _pair_features(rng.normal(size=(5, 8)), rng.normal(size=(4, 8)))

    def test_components(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        features = _pair_features(a, b)
        np.testing.assert_array_equal(features[:, :3], a)
        np.testing.assert_array_equal(features[:, 3:6], b)
        np.testing.assert_allclose(features[:, 6:9], np.abs(a - b))
        np.testing.assert_allclose(features[:, 9:], a * b)


class TestDeepEMConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"hidden_dim": 0}, {"epochs": 0}, {"negatives_per_positive": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DeepEMConfig(**kwargs)


class TestDeepEMBaseline:
    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError, match="fitted"):
            DeepEMBaseline().predict_proba(rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))

    def test_fit_requires_pairs(self, rng):
        with pytest.raises(ValueError, match="seed pair"):
            DeepEMBaseline().fit(
                rng.normal(size=(4, 4)), rng.normal(size=(4, 4)), np.empty((0, 2))
            )

    def test_loss_decreases(self, rng):
        latent = rng.normal(size=(40, 8))
        source = latent + 0.1 * rng.normal(size=latent.shape)
        target = latent + 0.1 * rng.normal(size=latent.shape)
        seeds = np.stack([np.arange(40), np.arange(40)], axis=1)
        model = DeepEMBaseline(DeepEMConfig(epochs=30, seed=0))
        model.fit(source, target, seeds)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_separates_clean_pairs(self, rng):
        latent = rng.normal(size=(60, 8))
        source = latent + 0.05 * rng.normal(size=latent.shape)
        target = latent + 0.05 * rng.normal(size=latent.shape)
        seeds = np.stack([np.arange(60), np.arange(60)], axis=1)
        model = DeepEMBaseline(DeepEMConfig(epochs=60, seed=0))
        model.fit(source, target, seeds)
        pos = model.predict_proba(source[:10], target[:10])
        neg = model.predict_proba(source[:10], target[10:20])
        assert pos.mean() > neg.mean()

    def test_match_shape(self, rng):
        latent = rng.normal(size=(20, 6))
        seeds = np.stack([np.arange(20), np.arange(20)], axis=1)
        model = DeepEMBaseline(DeepEMConfig(epochs=5, seed=0))
        model.fit(latent, latent, seeds)
        pairs = model.match(latent[:8], latent[:12])
        assert pairs.shape == (8, 2)
        assert pairs[:, 1].max() < 12

    def test_paper_failure_mode_on_structural_embeddings(self, medium_task):
        """Section 4.3's negative result: the learned pair classifier,
        trained on scarce seeds with heavy class imbalance, does not beat
        even the simplest matcher (DInf) on the same embeddings."""
        from repro.core.greedy import DInf
        from repro.experiments.regimes import build_embeddings

        emb = build_embeddings(medium_task, "G", preset_name="dbp15k/x")
        model = DeepEMBaseline(DeepEMConfig(epochs=20, seed=0))
        model.fit(emb.source, emb.target, medium_task.seed_index_pairs())
        test = medium_task.test_index_pairs()
        src, tgt = emb.source[test[:, 0]], emb.target[test[:, 1]]
        pairs = model.match(src, tgt)
        em_accuracy = (pairs[:, 1] == np.arange(len(test))).mean()
        dinf_pairs = DInf().match(src, tgt).pairs
        dinf_accuracy = (dinf_pairs[:, 1] == np.arange(len(test))).mean()
        # No better than the trivial baseline, and clearly below the
        # dedicated matching algorithms (Hungarian) on the same input.
        assert em_accuracy <= dinf_accuracy + 0.05
        from repro.core.hungarian import Hungarian

        hun_pairs = Hungarian().match(src, tgt).pairs
        hun_accuracy = (hun_pairs[:, 1] == np.arange(len(test))).mean()
        assert em_accuracy < hun_accuracy
