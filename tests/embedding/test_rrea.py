"""Tests for the RREA-style encoder."""

import numpy as np
import pytest

from repro.embedding.gcn import GCNEncoder
from repro.embedding.rrea import RREAEncoder, relation_weighted_adjacency
from repro.similarity.metrics import cosine_similarity


def hits_at_1(embeddings, task):
    test = task.test_index_pairs()
    sim = cosine_similarity(embeddings.source[test[:, 0]], embeddings.target)
    return float((sim.argmax(axis=1) == test[:, 1]).mean())


class TestRelationWeightedAdjacency:
    def test_rows_normalised(self, small_task):
        adj = relation_weighted_adjacency(small_task.source)
        row_sums = np.asarray(adj.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-9)

    def test_rare_relations_weighted_higher(self):
        from repro.kg.graph import KnowledgeGraph

        # "common" labels 4 edges, "rare" labels 1.
        triples = [("a", "common", f"b{i}") for i in range(4)]
        triples.append(("a", "rare", "c"))
        graph = KnowledgeGraph(triples)
        adj = relation_weighted_adjacency(graph).toarray()
        a = graph.entity_id("a")
        rare_weight = adj[a, graph.entity_id("c")]
        common_weight = adj[a, graph.entity_id("b0")]
        assert rare_weight > common_weight

    def test_empty_graph_identity(self):
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph([], entities=["a", "b"])
        adj = relation_weighted_adjacency(graph)
        np.testing.assert_array_equal(adj.toarray(), np.eye(2))


class TestRREAEncoder:
    def test_output_dim_is_layers_times_dim(self, small_task):
        emb = RREAEncoder(dim=16, num_layers=2, bootstrap_rounds=0, seed=0).encode(small_task)
        assert emb.dim == 16 * 3  # (layers + 1) concatenated

    def test_stronger_than_gcn(self, medium_task):
        gcn = GCNEncoder(seed=0).encode(medium_task)
        rrea = RREAEncoder(seed=0).encode(medium_task)
        assert hits_at_1(rrea, medium_task) >= hits_at_1(gcn, medium_task)

    def test_bootstrap_grows_anchor_pool(self, medium_task):
        encoder = RREAEncoder(bootstrap_rounds=2, seed=0)
        encoder.encode(medium_task)
        sizes = encoder.bootstrap_pool_sizes
        assert len(sizes) == 3
        assert sizes[-1] >= sizes[0]

    def test_bootstrap_improves_or_holds(self, medium_task):
        no_boot = RREAEncoder(bootstrap_rounds=0, seed=0).encode(medium_task)
        boot = RREAEncoder(bootstrap_rounds=2, seed=0).encode(medium_task)
        assert hits_at_1(boot, medium_task) >= hits_at_1(no_boot, medium_task) - 0.05

    def test_deterministic(self, small_task):
        a = RREAEncoder(seed=4).encode(small_task)
        b = RREAEncoder(seed=4).encode(small_task)
        np.testing.assert_array_equal(a.source, b.source)

    def test_fine_tuning_records_losses(self, small_task):
        encoder = RREAEncoder(fine_tune_epochs=4, bootstrap_rounds=1, seed=0)
        encoder.encode(small_task)
        # Fine-tuning runs once per bootstrap round (2 rounds here).
        assert len(encoder.loss_history) == 8

    @pytest.mark.parametrize(
        "kwargs",
        [{"dim": 0}, {"num_layers": 0}, {"bootstrap_rounds": -1},
         {"bootstrap_threshold": 1.5}],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            RREAEncoder(**kwargs)

    def test_requires_seed_pairs(self, small_task):
        from repro.kg.pair import AlignmentSplit, AlignmentTask

        empty_split = AlignmentSplit((), (), small_task.split.all_links)
        no_seed_task = AlignmentTask(small_task.source, small_task.target, empty_split)
        with pytest.raises(ValueError, match="seed pair"):
            RREAEncoder().encode(no_seed_task)
