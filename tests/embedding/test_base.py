"""Tests for the UnifiedEmbeddings container."""

import numpy as np
import pytest

from repro.embedding.base import EmbeddingModel, UnifiedEmbeddings


class TestUnifiedEmbeddings:
    def test_construction(self, rng):
        emb = UnifiedEmbeddings(rng.normal(size=(4, 8)), rng.normal(size=(6, 8)))
        assert emb.dim == 8

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="embedding dimension"):
            UnifiedEmbeddings(rng.normal(size=(4, 8)), rng.normal(size=(6, 7)))

    def test_nan_rejected(self):
        bad = np.ones((2, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            UnifiedEmbeddings(bad, np.ones((2, 3)))

    def test_normalized_unit_rows(self, rng):
        emb = UnifiedEmbeddings(rng.normal(size=(5, 6)), rng.normal(size=(5, 6)))
        normed = emb.normalized()
        np.testing.assert_allclose(np.linalg.norm(normed.source, axis=1), 1.0)
        np.testing.assert_allclose(np.linalg.norm(normed.target, axis=1), 1.0)

    def test_normalized_preserves_direction(self, rng):
        source = rng.normal(size=(5, 6))
        emb = UnifiedEmbeddings(source, source.copy())
        normed = emb.normalized()
        cosines = np.sum(
            normed.source * source / np.linalg.norm(source, axis=1, keepdims=True),
            axis=1,
        )
        np.testing.assert_allclose(cosines, 1.0)

    def test_normalized_zero_row_stays_zero(self):
        source = np.zeros((2, 3))
        source[1] = [1.0, 0.0, 0.0]
        emb = UnifiedEmbeddings(source, source.copy())
        normed = emb.normalized()
        np.testing.assert_allclose(normed.source[0], 0.0)

    def test_protocol_recognises_encoders(self):
        from repro.embedding.name_encoder import NameEncoder
        from repro.embedding.oracle import OracleEncoder

        assert isinstance(NameEncoder(), EmbeddingModel)
        assert isinstance(OracleEncoder(), EmbeddingModel)
