"""Tests for the shared training machinery (Adam, negatives, margin loss)."""

import numpy as np
import pytest

from repro.embedding.trainer import AdamOptimizer, margin_loss_and_grad, sample_negatives


class TestAdamOptimizer:
    def test_decreases_quadratic(self):
        params = {"x": np.array([5.0])}
        optimizer = AdamOptimizer(learning_rate=0.1)
        for _ in range(300):
            grads = {"x": 2.0 * params["x"]}
            optimizer.update(params, grads)
        assert abs(params["x"][0]) < 0.1

    def test_unknown_grad_key_raises(self):
        optimizer = AdamOptimizer()
        with pytest.raises(KeyError, match="unknown parameters"):
            optimizer.update({"a": np.zeros(2)}, {"b": np.zeros(2)})

    def test_invalid_lr(self):
        with pytest.raises(ValueError, match="learning_rate"):
            AdamOptimizer(learning_rate=0.0)

    def test_updates_in_place(self):
        params = {"x": np.ones(3)}
        ref = params["x"]
        AdamOptimizer(learning_rate=0.1).update(params, {"x": np.ones(3)})
        assert params["x"] is ref

    def test_partial_grads_allowed(self):
        params = {"a": np.ones(2), "b": np.ones(2)}
        AdamOptimizer().update(params, {"a": np.ones(2)})
        np.testing.assert_array_equal(params["b"], np.ones(2))


class TestSampleNegatives:
    def test_shapes(self, rng):
        neg_t, neg_s = sample_negatives(10, 50, 60, 5, rng)
        assert neg_t.shape == (10, 5)
        assert neg_s.shape == (10, 5)

    def test_ranges(self, rng):
        neg_t, neg_s = sample_negatives(100, 7, 9, 3, rng)
        assert neg_t.min() >= 0 and neg_t.max() < 9
        assert neg_s.min() >= 0 and neg_s.max() < 7

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError, match="negatives_per_pair"):
            sample_negatives(5, 10, 10, 0, rng)


class TestMarginLoss:
    def _setup(self, rng, n=20, d=8, pairs=6, negs=4):
        source = rng.normal(size=(n, d))
        target = rng.normal(size=(n, d))
        seed_pairs = np.stack([np.arange(pairs), np.arange(pairs)], axis=1)
        neg_t, neg_s = sample_negatives(pairs, n, n, negs, rng)
        return source, target, seed_pairs, neg_t, neg_s

    def test_zero_loss_when_aligned_and_margin_satisfied(self, rng):
        # Seed pairs identical, negatives far away: every hinge inactive.
        d = 4
        base = rng.normal(size=(3, d))
        source = np.vstack([base, base + 100.0])
        target = np.vstack([base, base - 100.0])
        seed_pairs = np.stack([np.arange(3), np.arange(3)], axis=1)
        neg_t = np.full((3, 2), 4)
        neg_s = np.full((3, 2), 4)
        loss, d_src, d_tgt = margin_loss_and_grad(
            source, target, seed_pairs, neg_t, neg_s, margin=1.0
        )
        assert loss == 0.0
        np.testing.assert_array_equal(d_src, 0.0)
        np.testing.assert_array_equal(d_tgt, 0.0)

    def test_loss_positive_for_random_embeddings(self, rng):
        source, target, pairs, neg_t, neg_s = self._setup(rng)
        loss, _, _ = margin_loss_and_grad(source, target, pairs, neg_t, neg_s)
        assert loss > 0.0

    def test_gradient_matches_finite_differences(self, rng):
        source, target, pairs, neg_t, neg_s = self._setup(rng, n=10, d=3, pairs=3, negs=2)
        loss, d_src, d_tgt = margin_loss_and_grad(source, target, pairs, neg_t, neg_s)
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (3, 1)]:
            perturbed = source.copy()
            perturbed[idx] += eps
            loss_plus, _, _ = margin_loss_and_grad(perturbed, target, pairs, neg_t, neg_s)
            numeric = (loss_plus - loss) / eps
            assert numeric == pytest.approx(d_src[idx], abs=1e-3)
        for idx in [(0, 1), (2, 0)]:
            perturbed = target.copy()
            perturbed[idx] += eps
            loss_plus, _, _ = margin_loss_and_grad(source, perturbed, pairs, neg_t, neg_s)
            numeric = (loss_plus - loss) / eps
            assert numeric == pytest.approx(d_tgt[idx], abs=1e-3)

    def test_descent_reduces_loss(self, rng):
        source, target, pairs, neg_t, neg_s = self._setup(rng)
        loss0, d_src, d_tgt = margin_loss_and_grad(source, target, pairs, neg_t, neg_s)
        step = 0.5
        loss1, _, _ = margin_loss_and_grad(
            source - step * d_src, target - step * d_tgt, pairs, neg_t, neg_s
        )
        assert loss1 < loss0

    def test_invalid_margin(self, rng):
        source, target, pairs, neg_t, neg_s = self._setup(rng)
        with pytest.raises(ValueError, match="margin"):
            margin_loss_and_grad(source, target, pairs, neg_t, neg_s, margin=0.0)
