"""Tests for structural/name embedding fusion."""

import numpy as np
import pytest

from repro.embedding.base import UnifiedEmbeddings
from repro.embedding.fusion import fuse_embeddings
from repro.similarity.metrics import cosine_similarity


def make_views(rng, n=10, d1=6, d2=4):
    structural = UnifiedEmbeddings(rng.normal(size=(n, d1)), rng.normal(size=(n, d1)))
    name = UnifiedEmbeddings(rng.normal(size=(n, d2)), rng.normal(size=(n, d2)))
    return structural, name


class TestFuseEmbeddings:
    def test_output_dim_is_sum(self, rng):
        structural, name = make_views(rng)
        fused = fuse_embeddings(structural, name, 0.5)
        assert fused.dim == 10

    def test_weight_zero_equals_structure_only(self, rng):
        structural, name = make_views(rng)
        fused = fuse_embeddings(structural, name, 0.0)
        expected = cosine_similarity(
            structural.normalized().source, structural.normalized().target
        )
        got = cosine_similarity(fused.source, fused.target)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_weight_one_equals_names_only(self, rng):
        structural, name = make_views(rng)
        fused = fuse_embeddings(structural, name, 1.0)
        expected = cosine_similarity(name.normalized().source, name.normalized().target)
        got = cosine_similarity(fused.source, fused.target)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_cosine_is_weighted_average_of_views(self, rng):
        structural, name = make_views(rng)
        weight = 0.3
        fused = fuse_embeddings(structural, name, weight)
        sim_fused = cosine_similarity(fused.source, fused.target)
        sim_struct = cosine_similarity(
            structural.normalized().source, structural.normalized().target
        )
        sim_name = cosine_similarity(name.normalized().source, name.normalized().target)
        expected = (1 - weight) * sim_struct + weight * sim_name
        np.testing.assert_allclose(sim_fused, expected, atol=1e-9)

    def test_invalid_weight(self, rng):
        structural, name = make_views(rng)
        with pytest.raises(ValueError, match="name_weight"):
            fuse_embeddings(structural, name, 1.5)

    def test_row_count_mismatch_rejected(self, rng):
        structural, _ = make_views(rng, n=10)
        _, name = make_views(rng, n=12)
        with pytest.raises(ValueError, match="source entity count"):
            fuse_embeddings(structural, name)
