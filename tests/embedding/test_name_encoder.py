"""Tests for the character n-gram name encoder."""

import numpy as np
import pytest

from repro.embedding.name_encoder import NameEncoder


class TestEncodeName:
    def test_unit_norm(self):
        encoder = NameEncoder()
        for name in ("berlin", "a", "", "漢字"):
            vector = encoder.encode_name(name)
            assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_deterministic(self):
        a = NameEncoder().encode_name("paris")
        b = NameEncoder().encode_name("paris")
        np.testing.assert_array_equal(a, b)

    def test_identical_names_identical_vectors(self):
        encoder = NameEncoder()
        np.testing.assert_array_equal(
            encoder.encode_name("tokyo"), encoder.encode_name("tokyo")
        )

    def test_similar_names_more_similar_than_random(self):
        encoder = NameEncoder()
        base = encoder.encode_name("alexandria")
        near = encoder.encode_name("alexandrna")  # one substitution
        far = encoder.encode_name("qwzzkplm")
        assert base @ near > base @ far

    def test_similarity_decreases_with_edits(self):
        encoder = NameEncoder()
        base = encoder.encode_name("constantinople")
        one_edit = encoder.encode_name("constantinopla")
        many_edits = encoder.encode_name("konstxntinxplx")
        assert base @ one_edit > base @ many_edits

    def test_dim_respected(self):
        assert NameEncoder(dim=32).encode_name("rome").shape == (32,)

    @pytest.mark.parametrize("kwargs", [{"dim": 0}, {"ngram_sizes": ()},
                                        {"ngram_sizes": (0,)}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            NameEncoder(**kwargs)


class TestEncodeTask:
    def test_rows_align_with_entities(self, small_task):
        encoder = NameEncoder()
        emb = encoder.encode(small_task)
        assert emb.source.shape[0] == small_task.source.num_entities
        first = small_task.source.entities[0]
        expected = encoder.encode_name(small_task.display_name("source", first))
        np.testing.assert_array_equal(emb.source[0], expected)

    def test_gold_pairs_most_similar_with_clean_names(self):
        from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
        from repro.similarity.metrics import cosine_similarity

        task = generate_aligned_pair(
            KGPairConfig(num_entities=50, name_edit_rate=0.0, seed=9)
        )
        emb = NameEncoder().encode(task)
        pairs = task.test_index_pairs()
        sim = cosine_similarity(emb.source[pairs[:, 0]], emb.target)
        assert (sim.argmax(axis=1) == pairs[:, 1]).mean() > 0.9

    def test_unnamed_entities_fall_back_to_ids(self, small_task):
        # Internal ids never match across KGs, so they carry no signal —
        # that just means the vectors exist and are unit norm.
        task = small_task
        task_no_names = type(task)(
            task.source, task.target, task.split, name="nameless"
        )
        emb = NameEncoder().encode(task_no_names)
        np.testing.assert_allclose(np.linalg.norm(emb.source, axis=1), 1.0)
