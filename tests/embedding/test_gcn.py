"""Tests for the GCN encoder."""

import numpy as np
import pytest

from repro.embedding.gcn import GCNEncoder, seed_anchor_features
from repro.similarity.metrics import cosine_similarity


def hits_at_1(embeddings, task):
    test = task.test_index_pairs()
    sim = cosine_similarity(embeddings.source[test[:, 0]], embeddings.target)
    return float((sim.argmax(axis=1) == test[:, 1]).mean())


class TestSeedAnchorFeatures:
    def test_shapes(self, rng):
        pairs = np.array([[0, 1], [2, 3]])
        x_s, x_t = seed_anchor_features(5, 6, pairs, 8, rng)
        assert x_s.shape == (5, 8)
        assert x_t.shape == (6, 8)

    def test_seed_rows_match_across_sides(self, rng):
        pairs = np.array([[0, 1], [2, 3]])
        x_s, x_t = seed_anchor_features(5, 6, pairs, 8, rng)
        np.testing.assert_array_equal(x_s[0], x_t[1])
        np.testing.assert_array_equal(x_s[2], x_t[3])

    def test_non_seed_rows_zero(self, rng):
        pairs = np.array([[0, 1]])
        x_s, _ = seed_anchor_features(4, 4, pairs, 8, rng)
        np.testing.assert_array_equal(x_s[1:], 0.0)

    def test_repeated_seed_entity_accumulates(self, rng):
        # Non-1-to-1 seed links: entity 0 appears in two pairs.
        pairs = np.array([[0, 1], [0, 2]])
        x_s, x_t = seed_anchor_features(3, 3, pairs, 8, rng)
        np.testing.assert_allclose(x_s[0], x_t[1] + x_t[2])


class TestGCNEncoder:
    def test_output_shapes_and_norms(self, small_task):
        emb = GCNEncoder(dim=16, seed=0).encode(small_task)
        assert emb.source.shape == (small_task.source.num_entities, 16)
        norms = np.linalg.norm(emb.source, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_beats_random_guessing(self, medium_task):
        emb = GCNEncoder(seed=0).encode(medium_task)
        chance = 1.0 / medium_task.target.num_entities
        assert hits_at_1(emb, medium_task) > 10 * chance

    def test_deterministic(self, small_task):
        a = GCNEncoder(seed=3).encode(small_task)
        b = GCNEncoder(seed=3).encode(small_task)
        np.testing.assert_array_equal(a.source, b.source)

    def test_seed_changes_output(self, small_task):
        a = GCNEncoder(seed=1).encode(small_task)
        b = GCNEncoder(seed=2).encode(small_task)
        assert not np.array_equal(a.source, b.source)

    def test_fine_tuning_runs_and_records_loss(self, small_task):
        encoder = GCNEncoder(seed=0, fine_tune_epochs=5)
        encoder.encode(small_task)
        assert len(encoder.loss_history) == 5

    def test_fine_tuning_not_harmful(self, medium_task):
        plain = GCNEncoder(seed=0).encode(medium_task)
        tuned_encoder = GCNEncoder(seed=0, fine_tune_epochs=20)
        tuned = tuned_encoder.encode(medium_task)
        assert hits_at_1(tuned, medium_task) >= hits_at_1(plain, medium_task) - 0.1

    def test_requires_seed_pairs(self, small_task):

        from repro.kg.pair import AlignmentSplit, AlignmentTask

        empty_split = AlignmentSplit((), (), small_task.split.all_links)
        no_seed_task = AlignmentTask(
            small_task.source, small_task.target, empty_split
        )
        with pytest.raises(ValueError, match="seed pair"):
            GCNEncoder().encode(no_seed_task)

    @pytest.mark.parametrize("kwargs", [{"dim": 0}, {"num_layers": 0},
                                        {"fine_tune_epochs": -1}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            GCNEncoder(**kwargs)
