"""Tests for the oracle embedding sampler."""

import numpy as np
import pytest

from repro.embedding.oracle import OracleConfig, OracleEncoder
from repro.similarity.metrics import cosine_similarity


def hits_at_1(emb, task):
    pairs = task.test_index_pairs()
    sim = cosine_similarity(emb.source[pairs[:, 0]], emb.target)
    return float((sim.argmax(axis=1) == pairs[:, 1]).mean())


class TestOracleConfig:
    def test_defaults_valid(self):
        OracleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"dim": 0}, {"noise": -0.1}, {"cluster_size": 0},
         {"cluster_spread": -0.1}, {"noise_dispersion": -0.1},
         {"smoothing": 1.0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OracleConfig(**kwargs)


class TestOracleEncoder:
    def test_shapes(self, medium_task):
        emb = OracleEncoder(OracleConfig(dim=32)).encode(medium_task)
        assert emb.source.shape == (medium_task.source.num_entities, 32)
        assert emb.target.shape == (medium_task.target.num_entities, 32)

    def test_zero_noise_perfect_alignment(self, medium_task):
        emb = OracleEncoder(
            OracleConfig(noise=0.0, duplicate_jitter=0.0)
        ).encode(medium_task)
        assert hits_at_1(emb, medium_task) == 1.0

    def test_noise_degrades_quality_monotonically(self, medium_task):
        scores = [
            hits_at_1(OracleEncoder(OracleConfig(noise=n, seed=0)).encode(medium_task),
                      medium_task)
            for n in (0.1, 0.6, 1.6)
        ]
        assert scores[0] > scores[1] > scores[2]

    def test_deterministic(self, medium_task):
        a = OracleEncoder(OracleConfig(seed=2)).encode(medium_task)
        b = OracleEncoder(OracleConfig(seed=2)).encode(medium_task)
        np.testing.assert_array_equal(a.source, b.source)

    def test_seed_override(self, medium_task):
        a = OracleEncoder(OracleConfig(seed=2), seed=5).encode(medium_task)
        b = OracleEncoder(OracleConfig(seed=2), seed=6).encode(medium_task)
        assert not np.array_equal(a.source, b.source)

    def test_smoothing_compresses_similarities(self, medium_task):
        def spread(smoothing):
            emb = OracleEncoder(
                OracleConfig(noise=0.3, smoothing=smoothing, seed=0)
            ).encode(medium_task)
            sim = cosine_similarity(emb.source, emb.target)
            return sim.std()

        assert spread(0.8) < spread(0.0)

    def test_cluster_crowding_raises_offdiagonal_similarity(self, medium_task):
        def mean_top5_gap(cluster_size):
            emb = OracleEncoder(
                OracleConfig(noise=0.2, cluster_size=cluster_size,
                             cluster_spread=0.2, seed=0)
            ).encode(medium_task)
            pairs = medium_task.test_index_pairs()
            sim = cosine_similarity(emb.source[pairs[:, 0]], emb.target)
            top2 = np.sort(sim, axis=1)[:, -2:]
            return float((top2[:, 1] - top2[:, 0]).mean())

        # Clusters shrink the gap between the best and second-best score.
        assert mean_top5_gap(8) < mean_top5_gap(1)

    def test_non_one_to_one_copies_share_latents(self):
        from repro.datasets.non_one_to_one import (
            NonOneToOneConfig, generate_non_one_to_one_task,
        )

        task = generate_non_one_to_one_task(NonOneToOneConfig(num_entities=80, seed=3))
        emb = OracleEncoder(OracleConfig(noise=0.1, seed=0)).encode(task)
        # Two target copies of the same base entity are mutually similar.
        sims_within = []
        sims_across = []
        groups: dict[str, list[int]] = {}
        for idx, name in enumerate(task.target.entities):
            groups.setdefault(name.split("_")[0], []).append(idx)
        multi = [ids for ids in groups.values() if len(ids) > 1][:20]
        for ids in multi:
            sims_within.append(float(emb.target[ids[0]] @ emb.target[ids[1]]))
            other = (ids[0] + 7) % task.target.num_entities
            sims_across.append(float(emb.target[ids[0]] @ emb.target[other]))
        assert np.mean(sims_within) > np.mean(sims_across)

    def test_unmatchable_entities_less_similar_than_gold(self):
        from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
        from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities

        base = generate_aligned_pair(KGPairConfig(num_entities=80, seed=4))
        task = add_unmatchable_entities(base, UnmatchableConfig(seed=1))
        emb = OracleEncoder(OracleConfig(noise=0.3, seed=0)).encode(task)
        gold = task.test_index_pairs()
        gold_sims = np.einsum(
            "ij,ij->i", emb.source[gold[:, 0]], emb.target[gold[:, 1]]
        )
        unmatchable_ids = [task.source.entity_id(e) for e in task.unmatchable_source]
        candidates = task.candidate_target_ids()
        unmatchable_best = cosine_similarity(
            emb.source[unmatchable_ids], emb.target[candidates]
        ).max(axis=1)
        assert gold_sims.mean() > unmatchable_best.mean()
