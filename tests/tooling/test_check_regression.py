"""Unit coverage for the bench-regression gate's family logic.

``benchmarks/check_regression.py`` is a script, not a package module;
it is loaded here by file path.  The tests pin (a) the key-name ->
family classification, including the precedence that keeps
``p99_seconds`` out of the generic timing family, (b) the latency gate
band (>40% *and* >20 ms), and (c) that every failure line names the
family that tripped — the property the CI log diagnosis relies on.
"""

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


class TestFamilyClassification:
    @pytest.mark.parametrize("path, family", [
        ("soak.p99_seconds", "latency"),
        ("soak.p999_seconds", "latency"),
        ("soak.phases.insert.p99_seconds", "latency"),
        ("single_query.p50_seconds", "timing"),
        ("single_query.p95_seconds", "timing"),
        ("sweep.total_seconds", "timing"),
        ("batched.queries_per_second", "rate"),
        ("soak.sustained_per_second", "rate"),
        ("points.100k.peak_rss_bytes", "rss"),
        ("soak.errors", None),
        ("soak.max_version_lag", None),
        ("soak.n_base", None),
    ])
    def test_each_key_lands_in_exactly_one_family(self, path, family):
        assert check_regression.family_of(path) == family

    def test_latency_outranks_timing(self):
        """p99_seconds contains "seconds" but must gate as latency."""
        leaves = {"a.p99_seconds": 1.0, "a.p50_seconds": 1.0}
        assert set(check_regression.family_paths(leaves, "latency")) \
            == {"a.p99_seconds"}
        assert set(check_regression.family_paths(leaves, "timing")) \
            == {"a.p50_seconds"}


class TestLatencyGate:
    def test_regression_beyond_both_bands_fails_naming_the_family(self):
        failures = check_regression.evaluate(
            {"soak.p99_seconds": 0.005}, {"soak.p99_seconds": 0.200}
        )
        assert len(failures) == 1  # latency only — no timing double report
        assert "[latency]" in failures[0]
        assert "soak.p99_seconds" in failures[0]

    def test_p999_is_gated_by_the_same_family(self):
        failures = check_regression.evaluate(
            {"soak.p999_seconds": 0.010}, {"soak.p999_seconds": 0.500}
        )
        assert len(failures) == 1 and "[latency]" in failures[0]

    def test_below_absolute_floor_never_fails(self):
        """4x worse but only +15 ms: tail jitter, not a regression."""
        failures = check_regression.evaluate(
            {"soak.p99_seconds": 0.005}, {"soak.p99_seconds": 0.020}
        )
        assert failures == []

    def test_below_relative_band_never_fails(self):
        """+50 ms on a 500 ms tail is +10%: within the 40% band."""
        failures = check_regression.evaluate(
            {"soak.p99_seconds": 0.500}, {"soak.p99_seconds": 0.550}
        )
        assert failures == []

    def test_improvement_never_fails(self):
        failures = check_regression.evaluate(
            {"soak.p99_seconds": 0.200}, {"soak.p99_seconds": 0.001}
        )
        assert failures == []

    def test_missing_fresh_value_is_tagged(self):
        failures = check_regression.evaluate({"soak.p99_seconds": 0.01}, {})
        assert len(failures) == 1
        assert failures[0].startswith("MISSING") and "[latency]" in failures[0]


class TestOtherFamiliesNameThemselves:
    def test_timing_failure_is_tagged(self):
        failures = check_regression.evaluate(
            {"sweep.total_seconds": 1.0}, {"sweep.total_seconds": 2.0}
        )
        assert len(failures) == 1 and "[timing]" in failures[0]

    def test_rate_failure_is_tagged(self):
        failures = check_regression.evaluate(
            {"batched.queries_per_second": 1000.0},
            {"batched.queries_per_second": 10.0},
        )
        assert len(failures) == 1 and "[rate]" in failures[0]

    def test_rss_failure_is_tagged(self):
        failures = check_regression.evaluate(
            {"points.peak_rss_bytes": 100 * 2**20},
            {"points.peak_rss_bytes": 900 * 2**20},
        )
        assert len(failures) == 1 and "[rss]" in failures[0]

    def test_ungated_leaves_never_fail(self):
        failures = check_regression.evaluate(
            {"soak.errors": 0.0, "soak.requests": 813.0},
            {"soak.errors": 50.0, "soak.requests": 2.0},
        )
        assert failures == []

    def test_clean_comparison_is_silent(self):
        leaves = {
            "soak.p99_seconds": 0.018,
            "soak.p999_seconds": 0.022,
            "single.p50_seconds": 0.006,
            "soak.sustained_per_second": 80.0,
            "scale.peak_rss_bytes": 2.0**30,
        }
        assert check_regression.evaluate(leaves, dict(leaves)) == []


class TestInjectedBaselineRegression:
    """The acceptance scenario: a synthetic p99 regression in
    BENCH_soak.json must trip the gate, naming the latency family."""

    def test_synthetic_p99_regression_against_committed_baseline(self):
        import json

        baseline_doc = json.loads(
            (_SCRIPT.parent / "results" / "BENCH_soak.json").read_text("utf-8")
        )
        fresh = check_regression.flatten(baseline_doc)
        # Inject: the fresh run's p99 collapses to 10x baseline + 100 ms.
        baseline = dict(fresh)
        fresh["soak.p99_seconds"] = baseline["soak.p99_seconds"] * 10 + 0.1
        failures = check_regression.evaluate(baseline, fresh)
        assert any(
            "[latency]" in line and "soak.p99_seconds" in line
            for line in failures
        )
