"""``repro soak`` end to end: real daemon subprocess, report, SLO gate."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.index import IVFIndex
from repro.loadgen import SoakReport, WorkloadSpec
from repro.storage import EmbeddingStore

pytestmark = [pytest.mark.serve, pytest.mark.soak]

N, DIM = 96, 6


@pytest.fixture
def artifacts(tmp_path):
    rng = np.random.default_rng(3)
    base = rng.normal(size=(N, DIM)).astype(np.float64)
    store = EmbeddingStore.create(
        tmp_path / "emb.store", base.shape, "float64", capacity=N + 64
    )
    store[:] = base
    store.update_checksum()
    store.close()
    IVFIndex(n_clusters=4).train(base).add(base).save(tmp_path / "ivf.json")
    return tmp_path / "emb.store", tmp_path / "ivf.json"


def test_soak_cli_runs_and_writes_report(artifacts, tmp_path, capsys):
    store, index = artifacts
    report_path = tmp_path / "soak_report.json"
    exit_code = main([
        "soak", "--store", str(store), "--index", str(index),
        "--duration", "1.5", "--qps", "30", "--seed", "5",
        "--workers", "4", "--report", str(report_path),
        "--slo-p99-ms", "2000",
    ])
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert "soak SLO passed" in out
    report = SoakReport.load(report_path)
    assert report.errors == 0 and report.timeouts == 0
    assert report.completed == report.scheduled > 0
    assert report.spec["seed"] == 5
    # The CLI-run stream matches an offline expansion of the same spec:
    # the daemon's base geometry fully determines it.
    spec = WorkloadSpec(seed=5, qps=30, duration_seconds=1.5)
    offline = spec.generate(N, DIM)
    from repro.loadgen import stream_fingerprint
    assert report.stream_fingerprint == stream_fingerprint(offline)


def test_soak_cli_spec_file_with_overrides(artifacts, tmp_path, capsys):
    store, index = artifacts
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(
        WorkloadSpec(seed=1, qps=500, duration_seconds=60).to_json(),
        encoding="utf-8",
    )
    report_path = tmp_path / "report.json"
    exit_code = main([
        "soak", "--store", str(store), "--index", str(index),
        "--spec", str(spec_path), "--duration", "1.0", "--qps", "20",
        "--report", str(report_path),
    ])
    assert exit_code == 0, capsys.readouterr().out
    document = json.loads(report_path.read_text(encoding="utf-8"))
    assert document["spec"]["qps"] == 20.0  # flag overrode the file
    assert document["spec"]["duration_seconds"] == 1.0
    assert document["spec"]["seed"] == 1  # file value survived


def test_soak_cli_slo_breach_exits_nonzero(artifacts, capsys):
    store, index = artifacts
    exit_code = main([
        "soak", "--store", str(store), "--index", str(index),
        "--duration", "1.0", "--qps", "20",
        "--slo-p99-ms", "0.000001",  # unattainable: force the gate to trip
    ])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "soak SLO FAILED" in captured.err
    assert "exceeds SLO" in captured.err


def test_soak_cli_requires_a_target(capsys):
    assert main(["soak", "--duration", "1"]) == 2
    assert "--url or both --store and --index" in capsys.readouterr().err


def test_soak_cli_rejects_bad_spec(artifacts, tmp_path, capsys):
    store, index = artifacts
    bad = tmp_path / "bad.json"
    bad.write_text('{"qps": -1}', encoding="utf-8")
    exit_code = main([
        "soak", "--store", str(store), "--index", str(index),
        "--spec", str(bad),
    ])
    assert exit_code == 2
    assert "bad workload spec" in capsys.readouterr().err
