"""WorkloadSpec: validation, JSON round trip, and stream determinism."""

import numpy as np
import pytest

from repro.loadgen.spec import (
    KINDS,
    StreamSummary,
    WorkloadSpec,
    stream_fingerprint,
)

N, DIM = 300, 8


class TestValidation:
    @pytest.mark.parametrize("field, value", [
        ("qps", 0.0),
        ("qps", -1.0),
        ("duration_seconds", 0.0),
        ("zipf_alpha", -0.1),
        ("k", 0),
        ("query_weight", -0.5),
    ])
    def test_bad_values_are_rejected(self, field, value):
        with pytest.raises(ValueError):
            WorkloadSpec(**{field: value})

    def test_all_zero_weights_are_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkloadSpec(query_weight=0, insert_weight=0,
                         delete_weight=0, explain_weight=0)

    def test_future_schema_version_is_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            WorkloadSpec(schema_version=99)

    def test_unknown_json_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown WorkloadSpec fields"):
            WorkloadSpec.from_dict({"seed": 1, "surprise": True})


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = WorkloadSpec(seed=42, qps=123.0, duration_seconds=7.5,
                            zipf_alpha=0.8, k=3, insert_weight=0.25)
        assert WorkloadSpec.from_json(spec.to_json()) == spec

    def test_load_from_file(self, tmp_path):
        spec = WorkloadSpec(seed=9)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert WorkloadSpec.load(path) == spec

    def test_non_object_document_is_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            WorkloadSpec.from_json("[1, 2]")


class TestStream:
    def test_same_seed_same_stream(self):
        spec = WorkloadSpec(seed=5, qps=200, duration_seconds=2.0)
        first, second = spec.generate(N, DIM), spec.generate(N, DIM)
        assert first == second
        assert stream_fingerprint(first) == stream_fingerprint(second)

    def test_different_seed_different_stream(self):
        base = WorkloadSpec(seed=5, qps=200, duration_seconds=2.0)
        other = WorkloadSpec(seed=6, qps=200, duration_seconds=2.0)
        assert stream_fingerprint(base.generate(N, DIM)) != \
            stream_fingerprint(other.generate(N, DIM))

    def test_arrivals_are_open_loop_and_sorted(self):
        spec = WorkloadSpec(seed=1, qps=500, duration_seconds=2.0)
        arrivals = [request.arrival for request in spec.generate(N, DIM)]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 2.0 for a in arrivals)
        # Poisson count concentrates around qps * duration.
        assert 0.7 * 1000 < len(arrivals) < 1.3 * 1000

    def test_mix_ratios_are_respected(self):
        spec = WorkloadSpec(seed=3, qps=1000, duration_seconds=4.0,
                            query_weight=0.6, insert_weight=0.2,
                            delete_weight=0.1, explain_weight=0.1)
        summary = StreamSummary.of(spec.generate(N, DIM))
        fractions = {
            kind: summary.per_kind[kind] / summary.n_requests for kind in KINDS
        }
        assert fractions["query"] == pytest.approx(0.6, abs=0.08)
        assert fractions["insert"] == pytest.approx(0.2, abs=0.05)
        assert fractions["explain"] == pytest.approx(0.1, abs=0.05)

    def test_zipf_skew_concentrates_reads(self):
        spec = WorkloadSpec(seed=2, qps=2000, duration_seconds=2.0,
                            zipf_alpha=1.2, insert_weight=0,
                            delete_weight=0, explain_weight=0)
        requests = spec.generate(N, DIM)
        counts = np.bincount(
            [r.entity_id for r in requests], minlength=N
        )
        top_share = np.sort(counts)[::-1][: N // 20].sum() / counts.sum()
        assert top_share > 0.35  # top 5% of entities take >35% of reads

    def test_zero_alpha_is_roughly_uniform(self):
        spec = WorkloadSpec(seed=2, qps=2000, duration_seconds=2.0,
                            zipf_alpha=0.0, insert_weight=0,
                            delete_weight=0, explain_weight=0)
        counts = np.bincount(
            [r.entity_id for r in spec.generate(N, DIM)], minlength=N
        )
        top_share = np.sort(counts)[::-1][: N // 20].sum() / counts.sum()
        assert top_share < 0.15

    def test_writes_never_conflict_with_reads(self):
        """Inserts pin fresh ids; deletes only hit soak-owned ids, once."""
        spec = WorkloadSpec(seed=4, qps=500, duration_seconds=4.0,
                            insert_weight=0.3, delete_weight=0.3)
        requests = spec.generate(N, DIM)
        inserted: set[int] = set()
        deleted: set[int] = set()
        for request in requests:
            if request.kind in ("query", "explain"):
                assert 0 <= request.entity_id < N
            elif request.kind == "insert":
                assert request.entity_id >= N
                assert request.entity_id not in inserted
                assert len(request.vector) == DIM
                inserted.add(request.entity_id)
            else:
                assert request.entity_id in inserted
                assert request.entity_id not in deleted  # each victim once
                deleted.add(request.entity_id)

    def test_insert_ids_are_sequential_from_base(self):
        spec = WorkloadSpec(seed=4, qps=300, duration_seconds=2.0,
                            insert_weight=0.5)
        pinned = [r.entity_id for r in spec.generate(N, DIM)
                  if r.kind == "insert"]
        assert pinned == list(range(N, N + len(pinned)))

    def test_generate_rejects_degenerate_geometry(self):
        spec = WorkloadSpec()
        with pytest.raises(ValueError, match="n_entities"):
            spec.generate(0, DIM)
        with pytest.raises(ValueError, match="dim"):
            spec.generate(N, 0)
