"""SoakReport: percentile math, schema versioning, JSON round trip."""

import numpy as np
import pytest

from repro.loadgen.report import (
    REPORT_SCHEMA_VERSION,
    PhaseStats,
    SoakReport,
    latency_summary,
)


def make_report(**overrides) -> SoakReport:
    base = dict(
        schema_version=REPORT_SCHEMA_VERSION,
        spec={"seed": 0, "qps": 50.0},
        stream_fingerprint="ab" * 16,
        scheduled=100,
        completed=100,
        ok=99,
        errors=1,
        timeouts=0,
        offered_qps=50.0,
        sustained_qps=48.5,
        wall_seconds=2.06,
        latency=latency_summary([0.001, 0.002, 0.003]),
        phases={
            "query": PhaseStats(count=90, ok=90, errors=0, timeouts=0,
                                latency=latency_summary([0.001] * 90)),
            "insert": PhaseStats(count=10, ok=9, errors=1, timeouts=0,
                                 latency=latency_summary([0.002] * 10)),
        },
        max_version_lag=0,
        max_dispatch_lag_seconds=0.004,
    )
    base.update(overrides)
    return SoakReport(**base)


class TestLatencySummary:
    def test_empty_population_is_all_zero(self):
        summary = latency_summary([])
        assert set(summary) == {
            "p50_seconds", "p95_seconds", "p99_seconds", "p999_seconds",
            "mean_seconds", "max_seconds",
        }
        assert all(value == 0.0 for value in summary.values())

    def test_percentiles_are_ordered_and_bounded(self):
        rng = np.random.default_rng(0)
        samples = list(rng.exponential(0.01, size=2000))
        summary = latency_summary(samples)
        assert summary["p50_seconds"] <= summary["p95_seconds"]
        assert summary["p95_seconds"] <= summary["p99_seconds"]
        assert summary["p99_seconds"] <= summary["p999_seconds"]
        assert summary["p999_seconds"] <= summary["max_seconds"] == max(samples)

    def test_single_sample_collapses(self):
        summary = latency_summary([0.042])
        assert summary["p50_seconds"] == summary["p999_seconds"] == 0.042


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        report = make_report()
        assert SoakReport.from_dict(report.to_dict()) == report

    def test_file_round_trip(self, tmp_path):
        report = make_report()
        path = tmp_path / "soak.json"
        report.save(path)
        assert SoakReport.load(path) == report

    def test_unknown_schema_version_is_rejected(self):
        document = make_report().to_dict()
        document["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            SoakReport.from_dict(document)

    def test_non_object_file_is_rejected(self, tmp_path):
        path = tmp_path / "soak.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ValueError, match="SoakReport"):
            SoakReport.load(path)


class TestRendering:
    def test_summary_lines_carry_the_headline_numbers(self):
        lines = "\n".join(make_report().summary_lines())
        assert "100/100 completed" in lines
        assert "1 errors" in lines
        assert "offered 50.0" in lines
        assert "query" in lines and "insert" in lines
