"""SoakRunner against a scriptable in-process fake daemon.

The real-daemon path is exercised by ``benchmarks/test_soak.py`` (and
the ``soak`` CLI test); these tests pin the runner's *accounting* —
outcome classification, per-phase aggregation, version-lag tracking,
open-loop scheduling — against an HTTP server whose behaviour is under
the test's control (injected errors, stalls, stale versions).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.loadgen import Request, SoakRunner, WorkloadSpec, stream_fingerprint
from repro.obs import events as obs_events

N, DIM = 64, 4


class _FakeState:
    """Mutable knobs + counters shared between test and handler."""

    def __init__(self) -> None:
        self.version = 0
        self.version_skew = 0  # queries report version - skew (stale reads)
        self.fail_kinds: set[str] = set()
        self.stall_kinds: dict[str, float] = {}
        self.lock = threading.Lock()
        self.hits: list[str] = []


class _Handler(BaseHTTPRequestHandler):
    state: _FakeState

    def log_message(self, *args) -> None:
        pass

    def _reply(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _serve(self, kind: str, payload: dict) -> None:
        state = self.state
        with state.lock:
            state.hits.append(kind)
        stall = state.stall_kinds.get(kind)
        if stall:
            time.sleep(stall)
        if kind in state.fail_kinds:
            self._reply(500, {"error": "injected"})
            return
        self._reply(200, payload)

    def do_GET(self) -> None:
        state = self.state
        if self.path == "/stats":
            self._serve("stats", {"ntotal": N, "dim": DIM})
        elif self.path.startswith("/entity/"):
            self._serve("explain", {"query": 0, "version": state.version})
        else:
            self._reply(404, {"error": "unknown"})

    def do_POST(self) -> None:
        state = self.state
        length = int(self.headers.get("Content-Length", 0))
        self.rfile.read(length)
        if self.path == "/query":
            with state.lock:
                version = max(0, state.version - state.version_skew)
            self._serve("query", {"matches": [], "version": version})
        elif self.path == "/insert":
            with state.lock:
                state.version += 1
                version = state.version
            self._serve("insert", {"entity_id": 1, "version": version})
        elif self.path == "/delete":
            with state.lock:
                state.version += 1
                version = state.version
            self._serve("delete", {"deleted": True, "version": version})
        else:
            self._reply(404, {"error": "unknown"})


@pytest.fixture
def fake_daemon():
    state = _FakeState()
    handler = type("BoundHandler", (_Handler,), {"state": state})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", state
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


SPEC = WorkloadSpec(seed=11, qps=400.0, duration_seconds=0.5, k=3)


class TestRun:
    def test_full_stream_completes_and_aggregates(self, fake_daemon):
        url, state = fake_daemon
        runner = SoakRunner(url, workers=8)
        report = runner.run(SPEC)
        assert report.completed == report.scheduled > 50
        assert report.errors == 0 and report.timeouts == 0
        assert report.ok == report.completed
        assert report.sustained_qps > 0
        assert report.wall_seconds > 0
        assert sum(stats.count for stats in report.phases.values()) \
            == report.completed
        # The stream replayed is exactly what the spec describes.
        expected = stream_fingerprint(SPEC.generate(N, DIM))
        assert report.stream_fingerprint == expected
        assert report.spec == SPEC.to_dict()

    def test_probe_discovers_geometry_from_stats(self, fake_daemon):
        url, state = fake_daemon
        stats = SoakRunner(url).probe()
        assert (stats["ntotal"], stats["dim"]) == (N, DIM)

    def test_pregenerated_stream_skips_the_probe(self, fake_daemon):
        url, state = fake_daemon
        requests = SPEC.generate(N, DIM)
        SoakRunner(url, workers=4).run(SPEC, requests=requests)
        assert "stats" not in state.hits

    def test_events_stream_the_run(self, fake_daemon):
        url, _ = fake_daemon
        sink = obs_events.MemorySink()
        with obs_events.emitting(sink):
            SoakRunner(url, workers=4).run(SPEC)
        names = sink.names()
        assert names[0] == "soak.start"
        assert names[-1] == "soak.finish"
        assert names.count("soak.request") == len(SPEC.generate(N, DIM))


class TestOutcomes:
    def test_http_errors_are_counted_per_phase(self, fake_daemon):
        url, state = fake_daemon
        state.fail_kinds.add("insert")
        report = SoakRunner(url, workers=8).run(SPEC)
        inserts = report.phases["insert"]
        assert inserts.errors == inserts.count > 0
        assert report.errors == inserts.errors
        assert report.phases["query"].errors == 0

    def test_stalls_past_the_deadline_are_timeouts(self, fake_daemon):
        url, state = fake_daemon
        state.stall_kinds["explain"] = 0.8
        spec = WorkloadSpec(seed=2, qps=40.0, duration_seconds=0.5,
                            explain_weight=5.0)
        report = SoakRunner(url, workers=8, request_timeout=0.2).run(spec)
        explains = report.phases["explain"]
        assert explains.timeouts == explains.count > 0
        assert report.timeouts == explains.timeouts

    def test_connection_refused_counts_as_error(self):
        runner = SoakRunner("http://127.0.0.1:9", workers=2,
                            request_timeout=0.5)
        requests = [Request(arrival=0.0, kind="query", entity_id=0, k=1)]
        report = runner.run(SPEC, requests=requests)
        assert report.errors == 1


class TestVersionLag:
    def test_stale_query_versions_surface_as_lag(self, fake_daemon):
        url, state = fake_daemon
        state.version_skew = 2
        requests = [
            Request(arrival=0.00, kind="insert", entity_id=N, vector=(0.0,) * DIM),
            Request(arrival=0.05, kind="insert", entity_id=N + 1,
                    vector=(0.0,) * DIM),
            Request(arrival=0.30, kind="query", entity_id=0, k=1),
        ]
        report = SoakRunner(url, workers=1).run(SPEC, requests=requests)
        # Two acked writes (v1, v2), query served from v0 => lag 2.
        assert report.max_version_lag == 2

    def test_fresh_reads_report_zero_lag(self, fake_daemon):
        url, _ = fake_daemon
        report = SoakRunner(url, workers=4).run(SPEC)
        assert report.max_version_lag == 0


class TestValidation:
    def test_bad_construction_is_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SoakRunner("http://x", workers=0)
        with pytest.raises(ValueError, match="request_timeout"):
            SoakRunner("http://x", request_timeout=0)
