"""Smoke tests for the figure generators (at reduced scale)."""

from repro.experiments.figures import (
    FigureResult,
    figure4_top5_std,
    figure6_csls_k,
    figure7_sinkhorn_l,
)


class TestFigureResult:
    def test_add_and_read(self):
        figure = FigureResult(title="t")
        figure.add_point("s", 1, 0.5)
        figure.add_point("s", 2, 0.6)
        assert figure.ys("s") == [0.5, 0.6]


class TestFigure4:
    def test_series_per_setting(self):
        figure = figure4_top5_std(scale=0.25)
        labels = [x for x, _ in figure.series["top5_std"]]
        assert "R-DBP" in labels and "N-DBP" in labels

    def test_values_positive(self):
        figure = figure4_top5_std(scale=0.25)
        assert all(y > 0 for _, y in figure.series["top5_std"])


class TestFigure6:
    def test_series_per_preset(self):
        figure = figure6_csls_k(ks=(1, 5), presets=("dbp15k/zh_en",), scale=0.25)
        assert "D-Z" in figure.series
        assert len(figure.series["D-Z"]) == 2

    def test_f1_in_range(self):
        figure = figure6_csls_k(ks=(1, 10), presets=("dbp15k/zh_en",), scale=0.25)
        assert all(0.0 <= y <= 1.0 for _, y in figure.series["D-Z"])


class TestFigure7:
    def test_f1_rises_with_l(self):
        figure = figure7_sinkhorn_l(
            ls=(1, 100), presets=("dbp15k/zh_en",), scale=0.4,
        )
        ys = figure.ys("D-Z")
        assert ys[-1] >= ys[0] - 0.03
