"""Tests for validation-based hyper-parameter tuning."""

import pytest

from repro.experiments.regimes import build_embeddings
from repro.experiments.tuning import suggested_grids, tune_all, tune_matcher


@pytest.fixture(scope="module")
def tuning_setting():
    from repro.datasets.zoo import load_preset

    task = load_preset("dbp15k/zh_en", scale=0.4)
    embeddings = build_embeddings(task, "R", preset_name="dbp15k/zh_en")
    return task, embeddings


class TestTuneMatcher:
    def test_returns_best_of_grid(self, tuning_setting):
        task, embeddings = tuning_setting
        outcome = tune_matcher(
            "Sink.", task, embeddings,
            grid=[{"iterations": 1}, {"iterations": 50}],
        )
        assert outcome.best_options in ({"iterations": 1}, {"iterations": 50})
        assert len(outcome.trials) == 2
        assert outcome.best_f1 == max(t.f1 for t in outcome.trials)

    def test_ties_prefer_earlier_config(self, tuning_setting):
        task, embeddings = tuning_setting
        # Identical configs tie exactly: the first (cheaper-by-convention)
        # entry must win.
        outcome = tune_matcher(
            "CSLS", task, embeddings, grid=[{"k": 1}, {"k": 1}],
        )
        assert outcome.best_options == {"k": 1}
        assert outcome.trials[0].f1 == outcome.trials[1].f1

    def test_empty_grid_rejected(self, tuning_setting):
        task, embeddings = tuning_setting
        with pytest.raises(ValueError, match="grid"):
            tune_matcher("CSLS", task, embeddings, grid=[])

    def test_no_validation_links_rejected(self, tuning_setting):
        _, embeddings = tuning_setting
        from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair

        no_valid = generate_aligned_pair(
            KGPairConfig(num_entities=200, validation_fraction=0.0, seed=3)
        )
        emb = build_embeddings(no_valid, "R", preset_name="dbp15k/x")
        with pytest.raises(ValueError, match="validation"):
            tune_matcher("CSLS", no_valid, emb, grid=[{"k": 1}])

    def test_trials_record_time(self, tuning_setting):
        task, embeddings = tuning_setting
        outcome = tune_matcher("CSLS", task, embeddings, grid=[{"k": 1}])
        assert outcome.trials[0].seconds >= 0.0


class TestTuneAll:
    def test_suggested_grids_cover_tunables(self):
        grids = suggested_grids()
        assert {"CSLS", "Sink.", "RInf-pb", "RL"} <= set(grids)

    def test_tune_subset(self, tuning_setting):
        task, embeddings = tuning_setting
        outcomes = tune_all(task, embeddings, matchers=("CSLS",))
        assert set(outcomes) == {"CSLS"}
        assert "k" in outcomes["CSLS"].best_options

    def test_unknown_matcher_rejected(self, tuning_setting):
        task, embeddings = tuning_setting
        with pytest.raises(ValueError, match="no suggested grid"):
            tune_all(task, embeddings, matchers=("Magic",))
