"""Tests for experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig(preset="dbp15k/zh_en")
        assert config.input_regime == "R"
        assert "DInf" in config.matchers

    def test_invalid_regime(self):
        with pytest.raises(ValueError, match="input_regime"):
            ExperimentConfig(preset="x", input_regime="Z")

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            ExperimentConfig(preset="x", scale=-1.0)

    def test_empty_matchers(self):
        with pytest.raises(ValueError, match="matchers"):
            ExperimentConfig(preset="x", matchers=())

    def test_options_for_unknown_matcher_rejected(self):
        with pytest.raises(ValueError, match="not in this experiment"):
            ExperimentConfig(
                preset="x", matchers=("DInf",),
                matcher_options={"CSLS": {"k": 2}},
            )

    def test_options_for_returns_copy(self):
        config = ExperimentConfig(
            preset="x", matchers=("CSLS",), matcher_options={"CSLS": {"k": 2}},
        )
        opts = config.options_for("CSLS")
        opts["k"] = 99
        assert config.options_for("CSLS")["k"] == 2

    def test_options_for_missing_is_empty(self):
        config = ExperimentConfig(preset="x")
        assert config.options_for("DInf") == {}
