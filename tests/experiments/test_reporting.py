"""Tests for table formatting."""

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == ""
        assert format_table([], title="T") == "T\n"

    def test_headers_from_first_row(self):
        text = format_table([{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]

    def test_floats_formatted(self):
        text = format_table([{"x": 0.123456}])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_custom_float_format(self):
        text = format_table([{"x": 0.5}], float_format="{:.1f}")
        assert "0.5" in text

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in text.splitlines()[0]

    def test_title_on_top(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment(self):
        text = format_table([{"name": "x", "value": 1}, {"name": "longer", "value": 2}])
        lines = text.splitlines()
        # All rows same width per column: separator line width equals header.
        assert len(lines[1]) == len(lines[2])

    def test_none_rendered_empty(self):
        text = format_table([{"a": None, "b": 1}])
        assert text.splitlines()[-1].split() == ["1"]


class TestGenerateReport:
    def test_invalid_scale(self, tmp_path):
        import pytest

        from repro.experiments.report import generate_report

        with pytest.raises(ValueError, match="scale"):
            generate_report(tmp_path, scale=0.0)

    def test_render_figure(self):
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import render_figure

        figure = FigureResult(title="Fig")
        figure.add_point("s", 1, 0.25)
        text = render_figure(figure)
        assert "Fig" in text and "1:0.250" in text
