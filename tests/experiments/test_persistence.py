"""Tests for embeddings/results persistence."""

import numpy as np
import pytest

from repro.embedding.base import UnifiedEmbeddings
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    load_embeddings,
    load_result,
    save_embeddings,
    save_result,
)
from repro.experiments.runner import run_experiment


class TestEmbeddingsRoundtrip:
    def test_roundtrip_exact(self, rng, tmp_path):
        emb = UnifiedEmbeddings(rng.normal(size=(10, 8)), rng.normal(size=(12, 8)))
        path = save_embeddings(emb, tmp_path / "emb.npz")
        loaded = load_embeddings(path)
        np.testing.assert_array_equal(loaded.source, emb.source)
        np.testing.assert_array_equal(loaded.target, emb.target)

    def test_extension_appended(self, rng, tmp_path):
        emb = UnifiedEmbeddings(rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))
        path = save_embeddings(emb, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_bad_archive_rejected(self, tmp_path):
        np.savez(tmp_path / "bad.npz", other=np.ones(3))
        with pytest.raises(ValueError, match="missing"):
            load_embeddings(tmp_path / "bad.npz")

    def test_creates_parent_dirs(self, rng, tmp_path):
        emb = UnifiedEmbeddings(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        path = save_embeddings(emb, tmp_path / "deep" / "dir" / "emb.npz")
        assert path.exists()


class TestResultRoundtrip:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("DInf", "CSLS"), scale=0.2,
        )
        return run_experiment(config)

    def test_roundtrip_metrics(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        for name in ("DInf", "CSLS"):
            assert loaded.f1(name) == result.f1(name)
            assert loaded.runs[name].seconds == result.runs[name].seconds
            assert loaded.runs[name].peak_bytes == result.runs[name].peak_bytes

    def test_roundtrip_config(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.config.preset == result.config.preset
        assert loaded.config.matchers == result.config.matchers
        assert loaded.top5_std == result.top5_std

    def test_json_is_readable(self, result, tmp_path):
        import json

        path = save_result(result, tmp_path / "result.json")
        payload = json.loads(path.read_text())
        assert "runs" in payload and "config" in payload

    def test_improvements_recomputable(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.improvement_over()["DInf"] == pytest.approx(0.0)
