"""Tests for multi-seed aggregation."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.repeats import AggregateStat, run_repeated


@pytest.fixture(scope="module")
def repeated():
    config = ExperimentConfig(
        preset="dbp15k/zh_en", input_regime="R",
        matchers=("DInf", "Hun."), scale=0.3,
    )
    return run_repeated(config, seeds=(0, 1, 2))


class TestAggregateStat:
    def test_of(self):
        stat = AggregateStat.of([0.2, 0.4, 0.6])
        assert stat.mean == pytest.approx(0.4)
        assert stat.minimum == 0.2
        assert stat.maximum == 0.6

    def test_single_value(self):
        stat = AggregateStat.of([0.5])
        assert stat.std == 0.0


class TestRunRepeated:
    def test_one_value_per_seed(self, repeated):
        for matcher in ("DInf", "Hun."):
            assert len(repeated.f1_by_seed[matcher]) == 3

    def test_seeds_produce_variation(self, repeated):
        values = repeated.f1_by_seed["DInf"]
        assert len(set(values)) > 1  # embedding noise reseeded

    def test_stat_bounds(self, repeated):
        stat = repeated.stat("Hun.")
        assert 0.0 <= stat.minimum <= stat.mean <= stat.maximum <= 1.0

    def test_win_rate(self, repeated):
        assert repeated.win_rate("Hun.", "DInf") >= 2 / 3

    def test_consistent_order(self, repeated):
        assert repeated.consistent_order("Hun.", "DInf", min_rate=0.6)

    def test_as_rows(self, repeated):
        rows = repeated.as_rows()
        assert {row["matcher"] for row in rows} == {"DInf", "Hun."}
        assert all("mean F1" in row for row in rows)

    def test_empty_seeds_rejected(self):
        config = ExperimentConfig(preset="dbp15k/zh_en", matchers=("DInf",))
        with pytest.raises(ValueError, match="seeds"):
            run_repeated(config, seeds=())
