"""Smoke tests for the table generators (at reduced scale).

The full-scale shape assertions live in the benchmark suite; here we
check the plumbing — rows present, keys consistent, raw results wired.
"""

import pytest

from repro.experiments.tables import (
    table3_dataset_statistics,
    table4_structure_only,
    table7_unmatchable,
    table8_non_one_to_one,
)

_FAST_MATCHERS = ("DInf", "CSLS", "Hun.")


class TestTable3:
    def test_one_row_per_preset(self):
        table = table3_dataset_statistics(scale=0.2)
        from repro.datasets.zoo import list_presets

        assert len(table.rows) == len(list_presets())

    def test_row_keys(self):
        table = table3_dataset_statistics(scale=0.2)
        assert {"preset", "#Entities", "#Triples"} <= set(table.rows[0])

    def test_fb_preset_reports_non_one_to_one(self):
        table = table3_dataset_statistics(scale=0.2)
        fb_rows = [r for r in table.rows if r["preset"] == "fb_dbp_mul"]
        assert fb_rows[0]["#non-1-to-1"] > 0


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return table4_structure_only(scale=0.25, matchers=_FAST_MATCHERS)

    def test_row_per_matcher(self, table):
        assert [row["matcher"] for row in table.rows] == list(_FAST_MATCHERS)

    def test_all_cells_filled(self, table):
        for row in table.rows:
            for key, value in row.items():
                if ":" in key and not key.endswith("Imp."):
                    assert isinstance(value, float)

    def test_results_accessible(self, table):
        result = table.result("R", "dbp15k/zh_en")
        assert result.f1("DInf") >= 0.0

    def test_improvement_column_for_non_baseline(self, table):
        csls_row = table.rows[1]
        assert "R-DBP:Imp." in csls_row
        dinf_row = table.rows[0]
        assert "R-DBP:Imp." not in dinf_row


class TestTable7:
    def test_reports_both_regimes(self):
        table = table7_unmatchable(scale=0.25, matchers=("DInf", "Hun."))
        row = table.rows[0]
        g_keys = [k for k in row if k.startswith("G:")]
        r_keys = [k for k in row if k.startswith("R:")]
        assert len(g_keys) == 4  # 3 datasets + time
        assert len(r_keys) == 4


class TestTable8:
    def test_reports_precision_recall(self):
        table = table8_non_one_to_one(scale=0.5, matchers=("DInf", "CSLS"))
        row = table.rows[0]
        assert {"G:P", "G:R", "G:F1", "R:P", "R:R", "R:F1"} <= set(row)

    def test_recall_below_precision(self):
        # One prediction per source vs multi-target gold: recall < precision.
        table = table8_non_one_to_one(scale=0.5, matchers=("DInf",))
        row = table.rows[0]
        assert row["G:R"] < row["G:P"]
