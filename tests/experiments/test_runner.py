"""Tests for the experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(
        preset="dbp15k/zh_en", input_regime="R",
        matchers=("DInf", "CSLS", "Hun."), scale=0.2, seed=0,
    )
    return run_experiment(config)


class TestRunExperiment:
    def test_all_matchers_present(self, small_result):
        assert set(small_result.runs) == {"DInf", "CSLS", "Hun."}

    def test_metrics_in_range(self, small_result):
        for run in small_result.runs.values():
            assert 0.0 <= run.metrics.f1 <= 1.0
            assert run.seconds >= 0.0
            assert run.peak_bytes > 0

    def test_one_to_one_pr_equal(self, small_result):
        # Classic setting: every query answered -> P == R.
        for name in ("DInf", "CSLS"):
            metrics = small_result.runs[name].metrics
            assert metrics.precision == pytest.approx(metrics.recall)

    def test_improvement_over_baseline(self, small_result):
        improvements = small_result.improvement_over("DInf")
        assert improvements["DInf"] == pytest.approx(0.0)

    def test_top5_std_recorded(self, small_result):
        assert small_result.top5_std > 0.0

    def test_task_reuse(self):
        from repro.datasets.zoo import load_preset

        task = load_preset("dbp15k/zh_en", scale=0.2)
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R", matchers=("DInf",), scale=0.2,
        )
        a = run_experiment(config, task=task)
        b = run_experiment(config)
        assert a.f1("DInf") == pytest.approx(b.f1("DInf"))

    def test_matcher_options_forwarded(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("Sink.",), matcher_options={"Sink.": {"iterations": 1}},
            scale=0.2,
        )
        result = run_experiment(config)
        assert "Sink." in result.runs

    def test_rl_is_fitted(self):
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R", matchers=("RL",), scale=0.2,
        )
        result = run_experiment(config)
        assert 0.0 <= result.f1("RL") <= 1.0

    def test_unmatchable_setting_breaks_pr_equality(self):
        config = ExperimentConfig(
            preset="dbp15k_plus/zh_en", input_regime="R",
            matchers=("DInf", "Hun."), scale=0.3,
        )
        result = run_experiment(config)
        dinf = result.runs["DInf"].metrics
        # DInf answers unmatchable queries too: precision < recall.
        assert dinf.precision < dinf.recall
        hun = result.runs["Hun."].metrics
        assert hun.precision >= dinf.precision


class TestGoldLocalPairsDiagnostics:
    def test_inconsistent_split_names_entity_and_chains_cause(self):

        from repro.datasets.zoo import load_preset
        from repro.experiments.runner import _gold_local_pairs

        task = load_preset("dbp15k/zh_en", scale=0.2)
        queries = task.test_query_ids()[:-1]  # drop one gold source
        candidates = task.candidate_target_ids()
        with pytest.raises(ValueError) as excinfo:
            _gold_local_pairs(task, queries, candidates)
        dropped = int(task.test_query_ids()[-1])
        assert str(dropped) in str(excinfo.value)
        assert "query" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, KeyError)


class TestSparseCandidates:
    """run_experiment(candidates=...) routes the sweep onto the sparse path."""

    @pytest.fixture(scope="class")
    def task_and_config(self):
        from repro.datasets.zoo import load_preset

        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("DInf", "CSLS", "RInf-wr"), scale=0.1, seed=0,
        )
        return load_preset("dbp15k/zh_en", scale=0.1), config

    def test_exact_candidates_match_dense_f1(self, task_and_config):
        from repro.index import IndexConfig

        task, config = task_and_config
        dense = run_experiment(config, task=task)
        sparse = run_experiment(
            config, task=task, candidates=IndexConfig(kind="exact", k=50)
        )
        for name in config.matchers:
            assert abs(dense.f1(name) - sparse.f1(name)) <= 0.01, name
        # Score-spread diagnostics exist on the sparse path too.
        assert sparse.top5_std > 0.0

    def test_ivf_candidates_stay_competitive(self, task_and_config):
        from repro.index import IndexConfig

        task, config = task_and_config
        dense = run_experiment(config, task=task)
        sparse = run_experiment(
            config, task=task,
            candidates=IndexConfig(kind="ivf", k=50, nprobe=4, n_clusters=8),
        )
        for name in config.matchers:
            assert sparse.f1(name) >= dense.f1(name) - 0.02, name

    def test_dense_only_matcher_densifies_once(self, task_and_config):
        from repro.index import IndexConfig
        from repro.obs.metrics import get_metrics

        task, _ = task_and_config
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("Sink.",), scale=0.1, seed=0,
        )
        registry = get_metrics()
        before = registry.counter("sparse.densify")
        result = run_experiment(
            config, task=task, candidates=IndexConfig(kind="exact", k=50)
        )
        assert registry.counter("sparse.densify") == before + 1
        assert 0.0 <= result.f1("Sink.") <= 1.0

    def test_hungarian_runs_sparse_on_candidates(self, task_and_config):
        from repro.index import IndexConfig
        from repro.obs.metrics import get_metrics

        task, _ = task_and_config
        config = ExperimentConfig(
            preset="dbp15k/zh_en", input_regime="R",
            matchers=("Hun.",), scale=0.1, seed=0,
        )
        registry = get_metrics()
        densifies = registry.counter("sparse.densify")
        solves = registry.counter("hungarian.sparse.solves")
        result = run_experiment(
            config, task=task, candidates=IndexConfig(kind="exact", k=50)
        )
        assert registry.counter("sparse.densify") == densifies
        assert registry.counter("hungarian.sparse.solves") == solves + 1
        assert 0.0 <= result.f1("Hun.") <= 1.0
