"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_choices(self):
        args = build_parser().parse_args(["tables", "4"])
        assert args.which == "4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "9"])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match", "dbp15k/zh_en"])
        assert args.regime == "R"
        assert args.matcher == "DInf"

    def test_unknown_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "x", "--matcher", "Magic"])


class TestCommands:
    def test_datasets_list(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "dbp15k/zh_en" in out
        assert "fb_dbp_mul" in out

    def test_datasets_export(self, tmp_path, capsys):
        assert main([
            "datasets", "export", "dbp15k/zh_en",
            "--scale", "0.1", "-o", str(tmp_path / "dz"),
        ]) == 0
        assert (tmp_path / "dz" / "rel_triples_1").exists()
        assert (tmp_path / "dz" / "test_links").exists()

    def test_tables_3_prints(self, capsys):
        assert main(["tables", "3", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Avg. degree" in out

    def test_tables_output_directory(self, tmp_path, capsys):
        assert main([
            "tables", "3", "--scale", "0.2", "-o", str(tmp_path),
        ]) == 0
        assert (tmp_path / "table3.txt").exists()

    def test_figures_6_prints(self, capsys):
        assert main(["figures", "6", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_match_command(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--regime", "R",
            "--matcher", "CSLS", "--scale", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CSLS on dbp15k/zh_en" in out
        assert "F1=" in out

    def test_match_with_fitted_matcher(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--matcher", "RL", "--scale", "0.2",
        ]) == 0
        assert "RL on" in capsys.readouterr().out

    def test_report_command(self, tmp_path, capsys):
        assert main(["report", "-o", str(tmp_path / "rep"), "--scale", "0.15"]) == 0
        report = tmp_path / "rep" / "REPORT.md"
        assert report.exists()
        content = report.read_text()
        assert "Table 4" in content
        assert "Figure 7" in content
        assert (tmp_path / "rep" / "table6.txt").exists()


class TestSupervisedMatch:
    def test_parser_accepts_robustness_flags(self):
        args = build_parser().parse_args([
            "match", "dbp15k/zh_en", "--timeout", "30",
            "--memory-budget", "512", "--on-error", "fallback", "--retries", "2",
        ])
        assert args.timeout == 30.0
        assert args.memory_budget == 512.0
        assert args.on_error == "fallback"
        assert args.retries == 2

    def test_on_error_raise_exits_nonzero_with_summary(self, capsys):
        # A 100-byte budget fails every matcher; raise -> one-line summary.
        code = main([
            "match", "dbp15k/zh_en", "--matcher", "DInf", "--scale", "0.2",
            "--memory-budget", "0.0001", "--on-error", "raise",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line
        assert "match failed" in err
        assert "ResourceBudgetExceeded" in err

    def test_on_error_skip_also_exits_nonzero(self, capsys):
        code = main([
            "match", "dbp15k/zh_en", "--matcher", "DInf", "--scale", "0.2",
            "--memory-budget", "0.0001", "--on-error", "skip",
        ])
        assert code == 1
        assert "match failed" in capsys.readouterr().err

    def test_fallback_degrades_and_reports(self, capsys):
        from repro.datasets.zoo import load_preset

        task = load_preset("dbp15k/zh_en", scale=0.2)
        n = len(task.test_query_ids())
        m = len(task.candidate_target_ids())
        # Fits the similarity matrix (Greedy) but not Hun.'s padded cost.
        budget_mib = 2.5 * n * m * 8 / 2**20
        code = main([
            "match", "dbp15k/zh_en", "--matcher", "Hun.", "--scale", "0.2",
            "--memory-budget", str(budget_mib), "--on-error", "fallback",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "Greedy" in out
        assert "F1=" in out


class TestIndexCommands:
    def test_match_accepts_index_flags(self):
        args = build_parser().parse_args([
            "match", "dbp15k/zh_en", "--index", "ivf",
            "--k", "30", "--nprobe", "2", "--clusters", "8",
        ])
        assert args.index == "ivf"
        assert args.k == 30
        assert args.nprobe == 2

    def test_match_rejects_unknown_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "x", "--index", "annoy"])

    def test_match_with_ivf_index_reports_recall(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--regime", "R", "--matcher", "CSLS",
            "--scale", "0.2", "--index", "ivf", "--k", "30", "--nprobe", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "index: kind=ivf" in out
        assert "recall=" in out
        assert "F1=" in out

    def test_match_with_exact_index(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--regime", "R", "--matcher", "DInf",
            "--scale", "0.2", "--index", "exact", "--k", "20",
        ]) == 0
        assert "kind=exact" in capsys.readouterr().out

    def test_index_build_and_stats_round_trip(self, tmp_path, capsys):
        path = tmp_path / "zh_en.index.json"
        assert main([
            "index", "build", "dbp15k/zh_en", "--regime", "R",
            "--scale", "0.2", "--clusters", "4", "-o", str(path),
        ]) == 0
        assert path.exists()
        build_out = capsys.readouterr().out
        assert "ntotal" in build_out
        assert main(["index", "stats", str(path)]) == 0
        stats_out = capsys.readouterr().out
        assert "n_clusters" in stats_out


class TestExplainCommand:
    def test_explain_prints_decision_report(self, capsys):
        assert main([
            "explain", "dbp15k/zh_en", "--query", "3", "--scale", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Decision report for" in out
        assert "greedy ->" in out
        assert "CSLS ->" in out

    def test_explain_rejects_out_of_range_query(self, capsys):
        assert main([
            "explain", "dbp15k/zh_en", "--query", "100000", "--scale", "0.2",
        ]) == 1
        assert "--query must be in" in capsys.readouterr().err

    def test_explain_honours_top_k(self, capsys):
        assert main([
            "explain", "dbp15k/zh_en", "--query", "0", "--scale", "0.2",
            "--top-k", "3",
        ]) == 0
        out = capsys.readouterr().out
        # Header + choices + column header + 3 candidate rows (+ notes).
        candidate_rows = [
            line for line in out.splitlines() if line.startswith("  t")
        ]
        assert len(candidate_rows) == 3


class TestLedgerAndEventsFlags:
    ARGS = ["match", "dbp15k/zh_en", "--matcher", "CSLS", "--scale", "0.2"]

    def test_match_ledger_appends_ok_record(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        path = tmp_path / "runs.jsonl"
        assert main([*self.ARGS, "--ledger", str(path)]) == 0
        records = RunLedger(path).records()
        assert len(records) == 1
        record = records[0]
        assert record["status"] == "ok"
        assert record["matcher"] == "CSLS"
        out = capsys.readouterr().out
        assert f"F1={record['metrics']['f1']:.3f}" in out

    def test_match_ledger_records_skip_failure(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        path = tmp_path / "runs.jsonl"
        assert main([
            *self.ARGS, "--ledger", str(path),
            "--memory-budget", "0.0001", "--on-error", "skip",
        ]) == 1
        capsys.readouterr()
        (record,) = RunLedger(path).records()
        assert record["status"] == "failed"
        assert record["metrics"] is None
        assert record["error"]["type"] == "ResourceBudgetExceeded"

    def test_match_ledger_links_profile_document(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger = tmp_path / "runs.jsonl"
        profile = tmp_path / "prof.json"
        assert main([
            *self.ARGS, "--ledger", str(ledger), "--profile", str(profile),
        ]) == 0
        capsys.readouterr()
        (record,) = RunLedger(ledger).records()
        assert record["profile_path"] == str(profile)
        assert profile.exists()

    def test_match_events_dash_streams_to_stderr(self, capsys):
        assert main([*self.ARGS, "--events", "-"]) == 0
        err = capsys.readouterr().err
        assert "engine.scores_ready" in err

    def test_match_events_path_writes_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert main([*self.ARGS, "--events", str(path)]) == 0
        capsys.readouterr()
        names = [
            json.loads(line)["name"]
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert "engine.scores_ready" in names


class TestRunsCommands:
    def _seeded_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger, build_record

        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        for matcher, f1 in (("DInf", 0.5), ("CSLS", 0.6)):
            ledger.append(build_record(
                fingerprint="abc", preset="dbp15k/zh_en", regime="R",
                task="dbp15k/zh_en", matcher=matcher, seed=0, scale=0.5,
                metric="cosine", status="ok",
                metrics={"precision": f1, "recall": f1, "f1": f1},
                ranking={"hits@1": f1, "mrr": f1},
            ))
        return path

    def test_runs_list_prints_one_line_per_record(self, tmp_path, capsys):
        path = self._seeded_ledger(tmp_path)
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "DInf" in lines[0] and "f1=0.500" in lines[0]
        assert "CSLS" in lines[1]

    def test_runs_list_filters_by_status(self, tmp_path, capsys):
        path = self._seeded_ledger(tmp_path)
        assert main([
            "runs", "list", "--ledger", str(path), "--status", "failed",
        ]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_runs_list_missing_ledger_fails(self, tmp_path, capsys):
        assert main([
            "runs", "list", "--ledger", str(tmp_path / "no.jsonl"),
        ]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_runs_show_accepts_unique_prefix(self, tmp_path, capsys):
        import json

        from repro.obs.ledger import RunLedger

        path = self._seeded_ledger(tmp_path)
        run_id = RunLedger(path).records()[0]["run_id"]
        assert main(["runs", "show", run_id[:8], "--ledger", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["run_id"] == run_id
        assert document["matcher"] == "DInf"

    def test_runs_show_unknown_id_fails(self, tmp_path, capsys):
        path = self._seeded_ledger(tmp_path)
        assert main(["runs", "show", "zzzz", "--ledger", str(path)]) == 1
        assert "no record" in capsys.readouterr().err

    def test_runs_diff_reports_deltas_and_additions(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger, build_record

        old = self._seeded_ledger(tmp_path)
        new = tmp_path / "new" / "runs.jsonl"
        ledger = RunLedger(new)
        for matcher, f1 in (("DInf", 0.5), ("CSLS", 0.4), ("Hun.", 0.7)):
            ledger.append(build_record(
                fingerprint="abc", preset="dbp15k/zh_en", regime="R",
                task="dbp15k/zh_en", matcher=matcher, seed=0, scale=0.5,
                metric="cosine", status="ok",
                metrics={"precision": f1, "recall": f1, "f1": f1},
                ranking={"hits@1": f1},
            ))
        assert main(["runs", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "! dbp15k/zh_en/R/CSLS: f1 0.600 -> 0.400 (-0.200)" in out
        assert "= dbp15k/zh_en/R/DInf" in out
        assert "+ dbp15k/zh_en/R/Hun." in out



class TestDurabilityCommands:
    """``runs fsck``, ``store verify``, and ``match --resume/--durable``."""

    MATCH = ["match", "dbp15k/zh_en", "--matcher", "CSLS", "--scale", "0.2"]

    def _ledger(self, tmp_path, torn=False):
        from repro.obs.ledger import RunLedger, build_record

        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        for matcher in ("DInf", "CSLS"):
            ledger.append(build_record(
                fingerprint="abc", preset="dbp15k/zh_en", regime="R",
                task="dbp15k/zh_en", matcher=matcher, seed=0, scale=0.5,
                metric="cosine", status="ok",
                metrics={"precision": 0.5, "recall": 0.5, "f1": 0.5},
                ranking={"hits@1": 0.5},
            ))
        if torn:
            with path.open("ab") as handle:
                handle.write(b'{"schema": "repro.run_ledger", "vers')
        return path

    def test_fsck_clean_ledger_exits_zero(self, tmp_path, capsys):
        path = self._ledger(tmp_path)
        assert main(["runs", "fsck", "--ledger", str(path)]) == 0
        assert "clean (2 records)" in capsys.readouterr().out

    def test_fsck_missing_ledger_exits_one(self, tmp_path, capsys):
        assert main(["runs", "fsck", "--ledger", str(tmp_path / "no.jsonl")]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_fsck_reports_torn_tail_without_repair(self, tmp_path, capsys):
        path = self._ledger(tmp_path, torn=True)
        size_before = path.stat().st_size
        assert main(["runs", "fsck", "--ledger", str(path)]) == 1
        err = capsys.readouterr().err
        assert "torn final line" in err and "--repair" in err
        assert path.stat().st_size == size_before

    def test_fsck_repair_truncates_into_bak_sidecar(self, tmp_path, capsys):
        path = self._ledger(tmp_path, torn=True)
        assert main(["runs", "fsck", "--ledger", str(path), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "2 records remain" in out
        backup = path.with_name("runs.jsonl.bak")
        assert backup.exists()
        assert backup.read_bytes().startswith(b'{"schema"')
        # The ledger is clean again.
        assert main(["runs", "fsck", "--ledger", str(path)]) == 0

    def test_fsck_mid_file_corruption_exits_two(self, tmp_path, capsys):
        path = self._ledger(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"garbage\n")
        path.write_bytes(b"".join(lines))
        assert main(["runs", "fsck", "--ledger", str(path), "--repair"]) == 2
        assert "UNREPAIRABLE" in capsys.readouterr().err

    def test_runs_list_survives_torn_tail_with_warning(self, tmp_path, capsys):
        path = self._ledger(tmp_path, torn=True)
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2
        assert "torn final line" in captured.err
        assert "fsck --repair" in captured.err

    def test_store_verify_ok(self, tmp_path, capsys):
        import numpy as np

        from repro.storage import EmbeddingStore

        path = tmp_path / "emb.bin"
        EmbeddingStore.write(
            path, np.random.default_rng(0).normal(size=(6, 3)).astype(np.float32)
        ).close()
        assert main(["store", "verify", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_store_verify_detects_corruption(self, tmp_path, capsys):
        import numpy as np

        from repro.storage import HEADER_BYTES, EmbeddingStore

        path = tmp_path / "emb.bin"
        EmbeddingStore.write(
            path, np.random.default_rng(0).normal(size=(6, 3)).astype(np.float32)
        ).close()
        raw = bytearray(path.read_bytes())
        raw[HEADER_BYTES + 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert main(["store", "verify", str(path)]) == 1
        err = capsys.readouterr().err
        assert "CORRUPT" in err and "checksum mismatch" in err

    def test_store_verify_missing_file(self, tmp_path, capsys):
        assert main(["store", "verify", str(tmp_path / "no.bin")]) == 1
        assert "cannot open" in capsys.readouterr().err

    def test_store_verify_unsealed_store_fails(self, tmp_path, capsys):
        from repro.storage import EmbeddingStore

        path = tmp_path / "emb.bin"
        EmbeddingStore.create(path, (4, 2)).close()
        assert main(["store", "verify", str(path)]) == 1
        assert "UNSEALED" in capsys.readouterr().err

    def test_store_verify_legacy_store_without_checksum(self, tmp_path, capsys):
        import numpy as np

        from repro.storage import EmbeddingStore
        from repro.storage.memmap import _build_header

        array = np.ones((4, 2), dtype=np.float32)
        path = tmp_path / "emb.bin"
        # Pre-durability store: valid header, no checksum key at all.
        path.write_bytes(_build_header(array.shape, array.dtype) + array.tobytes())
        assert main(["store", "verify", str(path)]) == 0
        assert "no checksum recorded" in capsys.readouterr().out

    def test_match_resume_requires_ledger(self, capsys):
        assert main([*self.MATCH, "--resume"]) == 2
        assert "--resume requires --ledger" in capsys.readouterr().err

    def test_match_resume_mid_file_corruption_is_a_friendly_error(
        self, tmp_path, capsys
    ):
        path = self._ledger(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"garbage\n")
        path.write_bytes(b"".join(lines))
        assert main([*self.MATCH, "--ledger", str(path), "--resume"]) == 1
        err = capsys.readouterr().err
        assert "corrupt ledger" in err and "fsck" in err

    def test_match_resume_appends_cleanly_after_torn_tail(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        path = self._ledger(tmp_path, torn=True)
        # Resume against the crashed ledger: the torn tail is healed into
        # a .bak sidecar and the new record lands as its own line.
        assert main([*self.MATCH, "--ledger", str(path), "--resume"]) == 0
        records = RunLedger(path).records()  # strict: fully valid again
        assert len(records) == 3
        assert records[-1]["matcher"] == "CSLS"
        assert path.with_name("runs.jsonl.bak").exists()

    def test_match_resume_skips_satisfied_cell(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        path = tmp_path / "runs.jsonl"
        assert main([*self.MATCH, "--ledger", str(path), "--durable"]) == 0
        (record,) = RunLedger(path).records()
        capsys.readouterr()
        assert main([*self.MATCH, "--ledger", str(path), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert record["run_id"][:12] in out
        assert len(RunLedger(path).records()) == 1  # nothing re-appended

    def test_match_resume_with_empty_ledger_runs(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main([*self.MATCH, "--ledger", str(path), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "skipped" not in out and "F1=" in out
