"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_choices(self):
        args = build_parser().parse_args(["tables", "4"])
        assert args.which == "4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "9"])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match", "dbp15k/zh_en"])
        assert args.regime == "R"
        assert args.matcher == "DInf"

    def test_unknown_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "x", "--matcher", "Magic"])


class TestCommands:
    def test_datasets_list(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "dbp15k/zh_en" in out
        assert "fb_dbp_mul" in out

    def test_datasets_export(self, tmp_path, capsys):
        assert main([
            "datasets", "export", "dbp15k/zh_en",
            "--scale", "0.1", "-o", str(tmp_path / "dz"),
        ]) == 0
        assert (tmp_path / "dz" / "rel_triples_1").exists()
        assert (tmp_path / "dz" / "test_links").exists()

    def test_tables_3_prints(self, capsys):
        assert main(["tables", "3", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Avg. degree" in out

    def test_tables_output_directory(self, tmp_path, capsys):
        assert main([
            "tables", "3", "--scale", "0.2", "-o", str(tmp_path),
        ]) == 0
        assert (tmp_path / "table3.txt").exists()

    def test_figures_6_prints(self, capsys):
        assert main(["figures", "6", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_match_command(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--regime", "R",
            "--matcher", "CSLS", "--scale", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CSLS on dbp15k/zh_en" in out
        assert "F1=" in out

    def test_match_with_fitted_matcher(self, capsys):
        assert main([
            "match", "dbp15k/zh_en", "--matcher", "RL", "--scale", "0.2",
        ]) == 0
        assert "RL on" in capsys.readouterr().out

    def test_report_command(self, tmp_path, capsys):
        assert main(["report", "-o", str(tmp_path / "rep"), "--scale", "0.15"]) == 0
        report = tmp_path / "rep" / "REPORT.md"
        assert report.exists()
        content = report.read_text()
        assert "Table 4" in content
        assert "Figure 7" in content
        assert (tmp_path / "rep" / "table6.txt").exists()
