"""Resumable sweeps: policy, ledger bookkeeping, kill-resume round trip.

The acceptance scenario: a sweep killed after N of M cells, restarted
with ``resume=`` pointing at the same ledger, skips the N finished cells
(with ``matcher.skipped`` events), completes only the remaining cells,
and the final per-cell metrics are bitwise-identical to an uninterrupted
run — determinism is what makes resuming sound.
"""

import json

import pytest

from repro.core.registry import create_matcher
from repro.experiments import ResumePolicy, satisfied_cells
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import events as obs_events
from repro.obs.ledger import RunLedger, build_record, config_fingerprint

MATCHERS = ("DInf", "CSLS", "Greedy")


def _config(**overrides):
    defaults = dict(
        preset="dbp15k/zh_en", input_regime="R",
        matchers=MATCHERS, scale=0.2, seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _record(fingerprint, matcher, status="ok", f1=0.5):
    error = None if status == "ok" else {"type": "MatcherError", "message": "boom"}
    metrics = None if status == "failed" else {
        "precision": f1, "recall": f1, "f1": f1,
    }
    return build_record(
        fingerprint=fingerprint, preset="dbp15k/zh_en", regime="R",
        task="dbp15k/zh_en", matcher=matcher, seed=0, scale=0.2,
        metric="cosine", status=status, metrics=metrics,
        ranking={"hits@1": f1}, error=error,
    )


class TestResumePolicy:
    def test_ok_is_always_satisfied(self):
        assert ResumePolicy().satisfied_by("ok")
        assert ResumePolicy(rerun_failed=False, rerun_degraded=False).satisfied_by("ok")

    def test_failed_and_degraded_rerun_by_default(self):
        policy = ResumePolicy()
        assert not policy.satisfied_by("failed")
        assert not policy.satisfied_by("degraded")

    def test_flags_accept_prior_failures_as_final(self):
        policy = ResumePolicy(rerun_failed=False, rerun_degraded=False)
        assert policy.satisfied_by("failed")
        assert policy.satisfied_by("degraded")

    def test_unknown_status_never_satisfies(self):
        assert not ResumePolicy().satisfied_by("mystery")


class TestSatisfiedCells:
    def test_matches_fingerprint_and_keeps_latest(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record("fp-a", "DInf", status="failed"))
        ledger.append(_record("fp-a", "DInf", status="ok"))  # later retry won
        ledger.append(_record("fp-a", "CSLS", status="ok"))
        ledger.append(_record("fp-b", "Greedy", status="ok"))  # other config
        satisfied = satisfied_cells(ledger, "fp-a")
        assert set(satisfied) == {"DInf", "CSLS"}
        assert satisfied["DInf"]["status"] == "ok"

    def test_later_failure_invalidates_earlier_success(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record("fp", "DInf", status="ok"))
        ledger.append(_record("fp", "DInf", status="failed"))
        assert satisfied_cells(ledger, "fp") == {}
        relaxed = satisfied_cells(ledger, "fp", ResumePolicy(rerun_failed=False))
        assert set(relaxed) == {"DInf"}

    def test_reads_torn_ledger_tolerantly(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record("fp", "DInf"))
        with ledger.path.open("ab") as handle:
            handle.write(json.dumps(_record("fp", "CSLS")).encode()[:25])
        satisfied = satisfied_cells(ledger, "fp")
        assert set(satisfied) == {"DInf"}  # the torn cell never completed

    def test_missing_ledger_satisfies_nothing(self, tmp_path):
        assert satisfied_cells(RunLedger(tmp_path / "absent.jsonl"), "fp") == {}


class TestKillResumeRoundTrip:
    def _interrupting_factory(self, kill_on):
        """A registry factory that simulates SIGKILL at one cell."""

        def factory(name, **kwargs):
            if name == kill_on:
                raise KeyboardInterrupt(f"injected kill at cell {name!r}")
            return create_matcher(name, **kwargs)

        return factory

    def test_interrupted_sweep_resumes_and_matches_uninterrupted(self, tmp_path):
        config = _config()

        # The ground truth: one uninterrupted sweep.
        baseline_ledger = RunLedger(tmp_path / "baseline.jsonl")
        baseline = run_experiment(config, ledger=baseline_ledger)
        assert set(baseline.runs) == set(MATCHERS)

        # The crash: killed while starting cell 2 of 3.  The durable
        # ledger already holds cell 1; tear its tail for good measure —
        # the crash may have interrupted an append as well.
        ledger = RunLedger(tmp_path / "runs.jsonl", durable=True)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(
                config, ledger=ledger,
                matcher_factory=self._interrupting_factory("CSLS"),
            )
        with ledger.path.open("ab") as handle:
            handle.write(b'{"schema": "repro.run_l')
        assert [r["matcher"] for r in ledger.records(strict=False)] == ["DInf"]

        # Recovery: fsck the torn tail away, then resume off the ledger.
        report = ledger.fsck(repair=True)
        assert report.repaired and report.n_records == 1
        with obs_events.emitting(obs_events.MemorySink()) as sink:
            resumed = run_experiment(config, ledger=ledger, resume=ledger)

        # Only the unfinished cells ran; cell 1 was skipped via its record.
        assert set(resumed.skipped) == {"DInf"}
        assert set(resumed.runs) == {"CSLS", "Greedy"}
        skipped_events = [e for e in sink.events if e.name == "matcher.skipped"]
        assert [e.attrs["matcher"] for e in skipped_events] == ["DInf"]
        assert skipped_events[0].attrs["status"] == "ok"
        started = [
            e.attrs["matcher"] for e in sink.events if e.name == "matcher.start"
        ]
        assert started == ["CSLS", "Greedy"]

        # Bitwise-identical numbers: the re-run cells against the
        # uninterrupted result, and the combined ledger per cell.
        for name in ("CSLS", "Greedy"):
            assert resumed.runs[name].metrics == baseline.runs[name].metrics
        final = {key[2]: rec for key, rec in ledger.latest_cells().items()}
        reference = {
            key[2]: rec for key, rec in baseline_ledger.latest_cells().items()
        }
        assert set(final) == set(MATCHERS)
        for name in MATCHERS:
            assert final[name]["metrics"] == reference[name]["metrics"]
            assert final[name]["ranking"] == reference[name]["ranking"]
        assert resumed.skipped["DInf"]["metrics"] == reference["DInf"]["metrics"]

    def test_fully_satisfied_sweep_skips_every_cell(self, tmp_path):
        config = _config(matchers=("DInf", "CSLS"))
        ledger = RunLedger(tmp_path / "runs.jsonl")
        run_experiment(config, ledger=ledger)
        resumed = run_experiment(config, resume=ledger)
        assert set(resumed.skipped) == {"DInf", "CSLS"}
        assert resumed.runs == {}

    def test_resume_ignores_other_configs_records(self, tmp_path):
        config = _config(matchers=("DInf",))
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record("some-other-fingerprint", "DInf"))
        resumed = run_experiment(config, resume=ledger)
        assert resumed.skipped == {}
        assert set(resumed.runs) == {"DInf"}

    def test_resume_policy_controls_failed_cells(self, tmp_path):
        config = _config(matchers=("DInf",))
        fingerprint = config_fingerprint(config)
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record(fingerprint, "DInf", status="failed"))
        rerun = run_experiment(config, resume=ledger)
        assert set(rerun.runs) == {"DInf"}  # default: failures re-run
        accepted = run_experiment(
            config, resume=ledger, resume_policy=ResumePolicy(rerun_failed=False)
        )
        assert set(accepted.skipped) == {"DInf"}
        assert accepted.runs == {}
