"""Tests for the calibrated embedding regimes."""

import numpy as np
import pytest

from repro.experiments.regimes import (
    REGIME_GEOMETRY,
    build_embeddings,
    family_of_preset,
    structural_geometry,
)
from repro.similarity.metrics import cosine_similarity


def hits_at_1(emb, task):
    pairs = task.test_index_pairs()
    sim = cosine_similarity(emb.source[pairs[:, 0]], emb.target)
    return float((sim.argmax(axis=1) == pairs[:, 1]).mean())


class TestFamilyOfPreset:
    def test_zoo_keys(self):
        assert family_of_preset("srprs/en_fr") == "sparse"
        assert family_of_preset("dbp15k/zh_en") == "dense"
        assert family_of_preset("dwy100k/dbp_wd") == "dense"
        assert family_of_preset("fb_dbp_mul") == "multi"

    def test_display_names(self):
        assert family_of_preset("S-F") == "sparse"
        assert family_of_preset("D-Z") == "dense"
        assert family_of_preset("FB_DBP_MUL") == "multi"


class TestStructuralGeometry:
    def test_all_regimes_registered(self):
        regimes = {key[0] for key in REGIME_GEOMETRY}
        assert regimes == {"R", "G"}

    def test_unknown_regime_raises(self, small_task):
        with pytest.raises(ValueError, match="unknown structural regime"):
            structural_geometry("Z", small_task, "dense")

    def test_degree_scaling(self, small_task):
        dense = structural_geometry("R", small_task, "dense")
        # small_task has avg degree ~4 < reference 4.5: noise scaled up.
        assert dense.noise >= REGIME_GEOMETRY[("R", "dense")].noise


class TestBuildEmbeddings:
    def test_structural_regimes_shapes(self, medium_task):
        for regime in ("R", "G"):
            emb = build_embeddings(medium_task, regime, preset_name="dbp15k/x")
            assert emb.source.shape[0] == medium_task.source.num_entities

    def test_r_stronger_than_g(self, medium_task):
        r = build_embeddings(medium_task, "R", preset_name="dbp15k/x")
        g = build_embeddings(medium_task, "G", preset_name="dbp15k/x")
        assert hits_at_1(r, medium_task) > hits_at_1(g, medium_task)

    def test_name_regime_uses_name_encoder(self, medium_task):
        from repro.embedding.name_encoder import NameEncoder

        emb = build_embeddings(medium_task, "N", preset_name="dbp15k/x")
        expected = NameEncoder().encode(medium_task)
        np.testing.assert_array_equal(emb.source, expected.source)

    def test_fused_regime_dim(self, medium_task):
        n = build_embeddings(medium_task, "N", preset_name="dbp15k/x")
        nr = build_embeddings(medium_task, "NR", preset_name="dbp15k/x")
        r = build_embeddings(medium_task, "R", preset_name="dbp15k/x")
        assert nr.dim == n.dim + r.dim

    def test_trained_regimes_run(self, small_task):
        for regime in ("gcn", "rrea"):
            emb = build_embeddings(small_task, regime, preset_name="dbp15k/x")
            assert emb.source.shape[0] == small_task.source.num_entities

    def test_unknown_regime(self, small_task):
        with pytest.raises(ValueError):
            build_embeddings(small_task, "bert")

    def test_seed_controls_structural_noise(self, medium_task):
        a = build_embeddings(medium_task, "R", seed=1, preset_name="dbp15k/x")
        b = build_embeddings(medium_task, "R", seed=2, preset_name="dbp15k/x")
        assert not np.array_equal(a.source, b.source)
