"""Property-based tests: the engine is a pure scheduling change.

The determinism contract of :class:`SimilarityEngine` is that chunking
and threading are invisible to the numerics: for any metric, worker
count, and (odd) chunk size, the engine's float64 output equals the
serial :func:`similarity_matrix` result, and float32 output matches to
single-precision tolerance.  The same must hold for the chunked top-k
helpers the engine schedules.

Float64 equality is asserted bitwise under the default chunk policy
(where the grid is a single chunk and even the BLAS calls are shared)
and to 1e-12 across arbitrary grids (where matmul summation order may
legitimately differ in the last bits); worker count must never change a
single bit for a fixed grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.csls import csls_scores
from repro.similarity.chunked import chunked_csls_top_k, chunked_top_k
from repro.similarity.engine import SimilarityEngine
from repro.similarity.metrics import similarity_matrix
from repro.similarity.topk import top_k_values

METRICS = ("cosine", "euclidean", "manhattan")
WORKER_COUNTS = (1, 2, 4)
ODD_CHUNKS = (1, 3, 7, 19)


def embedding_pairs(max_rows=16, max_dim=6):
    shape = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(1, max_dim)
    )
    return shape.flatmap(
        lambda s: st.tuples(
            arrays(np.float64, (s[0], s[2]),
                   elements=st.floats(-10, 10, allow_nan=False)),
            arrays(np.float64, (s[1], s[2]),
                   elements=st.floats(-10, 10, allow_nan=False)),
        )
    )


class TestEngineEqualsSerial:
    @pytest.mark.parametrize("metric", METRICS)
    @given(embedding_pairs())
    @settings(max_examples=25, deadline=None)
    def test_default_policy_bitwise_float64(self, metric, matrices):
        source, target = matrices
        serial = similarity_matrix(source, target, metric=metric)
        for workers in WORKER_COUNTS:
            with SimilarityEngine(workers=workers) as engine:
                np.testing.assert_array_equal(
                    engine.similarity(source, target, metric=metric), serial
                )

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("chunk_rows", ODD_CHUNKS)
    @given(embedding_pairs())
    @settings(max_examples=10, deadline=None)
    def test_odd_grids_workers_invisible(self, metric, chunk_rows, matrices):
        source, target = matrices
        per_worker = []
        for workers in WORKER_COUNTS:
            with SimilarityEngine(workers=workers, chunk_rows=chunk_rows) as engine:
                per_worker.append(engine.similarity(source, target, metric=metric))
        # Fixed grid -> bitwise identical across worker counts ...
        for other in per_worker[1:]:
            np.testing.assert_array_equal(per_worker[0], other)
        # ... and equal to the serial result up to summation order.
        np.testing.assert_allclose(
            per_worker[0],
            similarity_matrix(source, target, metric=metric),
            atol=1e-12,
        )

    @pytest.mark.parametrize("metric", METRICS)
    @given(embedding_pairs())
    @settings(max_examples=15, deadline=None)
    def test_float32_allclose(self, metric, matrices):
        # Euclidean needs a looser bound: the kernel expands
        # ||u-v||^2 = ||u||^2 + ||v||^2 - 2 u.v, so for nearly-equal rows
        # the float32 cancellation error is ~ulp(||u||^2 + ||v||^2) —
        # up to ~1e-4 at these input ranges — and the final sqrt
        # amplifies it to ~sqrt(1e-4) = 1e-2 when the true distance is
        # near zero.  Cosine is bounded by 1 and Manhattan sums exact
        # absolute differences, so 5e-4 holds for both.
        atol = 2e-2 if metric == "euclidean" else 5e-4
        source, target = matrices
        serial = similarity_matrix(source, target, metric=metric)
        for workers in WORKER_COUNTS:
            with SimilarityEngine(workers=workers, dtype=np.float32) as engine:
                scores = engine.similarity(source, target, metric=metric)
            assert scores.dtype == np.float32
            np.testing.assert_allclose(scores, serial, atol=atol)


class TestChunkedEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chunk_size", ODD_CHUNKS)
    @given(embedding_pairs(), st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_top_k_float64(self, workers, chunk_size, matrices, k):
        source, target = matrices
        _, scores = chunked_top_k(
            source, target, k=k, chunk_size=chunk_size, workers=workers
        )
        dense = similarity_matrix(source, target)
        np.testing.assert_allclose(
            scores, top_k_values(dense, min(k, target.shape[0])), atol=1e-12
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("reuse_blocks", [False, True])
    @given(embedding_pairs(), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_csls_top_k_float64(self, workers, reuse_blocks, matrices, csls_k):
        source, target = matrices
        indices, scores = chunked_csls_top_k(
            source, target, k=2, csls_k=csls_k, chunk_size=5,
            workers=workers, reuse_blocks=reuse_blocks,
        )
        dense = csls_scores(similarity_matrix(source, target), k=csls_k)
        np.testing.assert_allclose(
            scores, top_k_values(dense, min(2, target.shape[0])), atol=1e-9
        )

    @given(embedding_pairs(), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_csls_block_reuse_is_invisible(self, matrices, k):
        # The satellite fix: replaying pass-1 blocks must be numerically
        # identical to recomputing them in pass 2.
        source, target = matrices
        kept = chunked_csls_top_k(
            source, target, k=k, chunk_size=3, reuse_blocks=True
        )
        recomputed = chunked_csls_top_k(
            source, target, k=k, chunk_size=3, reuse_blocks=False
        )
        np.testing.assert_array_equal(kept[0], recomputed[0])
        np.testing.assert_array_equal(kept[1], recomputed[1])

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @given(embedding_pairs(), st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_top_k_float32(self, workers, matrices, k):
        source, target = matrices
        _, scores = chunked_top_k(
            source, target, k=k, chunk_size=3, workers=workers, dtype=np.float32
        )
        assert scores.dtype == np.float32
        dense = similarity_matrix(source, target)
        np.testing.assert_allclose(
            scores, top_k_values(dense, min(k, target.shape[0])), atol=5e-4
        )
