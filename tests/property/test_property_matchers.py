"""Property-based tests over all matching algorithms.

These check the structural invariants every matcher must satisfy on any
finite score matrix: pairs index into the matrix, greedy-family matchers
answer every source, constrained matchers respect 1-to-1, and reported
scores equal the matrix entries at the matched cells (for the matchers
that score with the raw matrix).
"""

import numpy as np
import pytest
import scipy.optimize
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.registry import create_matcher
from repro.utils.rng import ensure_rng

score_matrices = st.tuples(st.integers(2, 10), st.integers(2, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape, elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False)
    )
)

# Low-cardinality integer scores: dense ties and degenerate (constant)
# rows are the norm, not the exception — the regime where assignment
# solvers disagree if tie-breaking is buggy.
tied_score_matrices = st.tuples(st.integers(2, 9), st.integers(2, 9)).flatmap(
    lambda shape: arrays(
        np.float64, shape, elements=st.integers(0, 3).map(float)
    )
)

GREEDY_FAMILY = ("DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb", "Sink.", "RL")
CONSTRAINED = ("Hun.", "SMat")
ALL_MATCHERS = GREEDY_FAMILY + CONSTRAINED


@pytest.mark.parametrize("name", ALL_MATCHERS)
class TestUniversalInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_pairs_index_into_matrix(self, name, scores):
        matcher = create_matcher(name)
        result = matcher.match_scores(scores)
        if len(result.pairs):
            assert result.pairs[:, 0].min() >= 0
            assert result.pairs[:, 0].max() < scores.shape[0]
            assert result.pairs[:, 1].min() >= 0
            assert result.pairs[:, 1].max() < scores.shape[1]

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_at_most_one_answer_per_source(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        sources = result.pairs[:, 0].tolist()
        assert len(sources) == len(set(sources))

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, name, scores):
        a = create_matcher(name).match_scores(scores)
        b = create_matcher(name).match_scores(scores)
        assert a.as_set() == b.as_set()


@pytest.mark.parametrize("name", GREEDY_FAMILY)
class TestGreedyFamilyInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_every_source_answered(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        assert sorted(result.pairs[:, 0].tolist()) == list(range(scores.shape[0]))


@pytest.mark.parametrize("name", CONSTRAINED)
class TestConstrainedInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_one_to_one(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        targets = result.pairs[:, 1].tolist()
        assert len(targets) == len(set(targets))

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_matches_min_side(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        assert len(result.pairs) <= min(scores.shape)


class TestScoreReporting:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_dinf_scores_are_matrix_entries(self, scores):
        result = create_matcher("DInf").match_scores(scores)
        np.testing.assert_allclose(
            result.scores, scores[result.pairs[:, 0], result.pairs[:, 1]]
        )

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_hungarian_total_optimal_vs_greedy_permutation(self, scores):
        # The Hungarian total is at least the total of any specific
        # permutation (identity, when square).
        if scores.shape[0] != scores.shape[1]:
            return
        result = create_matcher("Hun.").match_scores(scores)
        identity_total = np.trace(scores)
        assert result.scores.sum() >= identity_total - 1e-9


class TestHungarianDifferential:
    """Native Hungarian vs scipy: equal optimum on every matrix."""

    @given(scores=score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_total_equals_scipy(self, scores):
        result = create_matcher("Hun.").match_scores(scores)
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        np.testing.assert_allclose(
            result.scores.sum(), scores[rows, cols].sum(), atol=1e-8
        )

    @given(scores=tied_score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_total_equals_scipy_under_heavy_ties(self, scores):
        # With ties the chosen *assignments* may legitimately differ; the
        # optimum total must not.
        result = create_matcher("Hun.").match_scores(scores)
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        np.testing.assert_allclose(
            result.scores.sum(), scores[rows, cols].sum(), atol=1e-8
        )
        assert len(result.pairs) == min(scores.shape)

    @given(size=st.integers(2, 8), value=st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_constant_matrix_degenerate_case(self, size, value):
        # Fully degenerate: every assignment is optimal; both solvers
        # must still produce a complete one with the same total.
        scores = np.full((size, size), value)
        result = create_matcher("Hun.").match_scores(scores)
        assert len(result.pairs) == size
        np.testing.assert_allclose(result.scores.sum(), size * value, atol=1e-8)


class TestStableMatchBlockingPairs:
    """Gale-Shapley output admits zero blocking pairs.

    The blocking-pair count here is computed independently of the
    library's own ``is_stable`` helper, so a shared bug cannot hide.
    """

    @staticmethod
    def _blocking_pairs(scores, pairs):
        match_of_source = {int(r): int(c) for r, c in pairs}
        match_of_target = {int(c): int(r) for r, c in pairs}
        blocking = []
        for i in range(scores.shape[0]):
            for j in range(scores.shape[1]):
                if match_of_source.get(i) == j:
                    continue
                i_prefers = (
                    i not in match_of_source
                    or scores[i, j] > scores[i, match_of_source[i]]
                )
                j_prefers = (
                    j not in match_of_target
                    or scores[i, j] > scores[match_of_target[j], j]
                )
                if i_prefers and j_prefers:
                    blocking.append((i, j))
        return blocking

    @given(scores=score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_zero_blocking_pairs(self, scores):
        result = create_matcher("SMat").match_scores(scores)
        assert self._blocking_pairs(scores, result.pairs) == []

    @given(scores=tied_score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_zero_blocking_pairs_under_ties(self, scores):
        # Blocking requires *strict* preference on both sides, so ties
        # never block; the matching must still be stable.
        result = create_matcher("SMat").match_scores(scores)
        assert self._blocking_pairs(scores, result.pairs) == []


def _embedding_pair(seed, n_source, n_target, dim=8):
    """Continuous Gaussian embeddings: ties are measure-zero, so the
    equivariance checks below are exact set comparisons."""
    rng = ensure_rng(seed)
    return (
        rng.standard_normal((n_source, dim)),
        rng.standard_normal((n_target, dim)),
    )


@pytest.mark.parametrize("name", ["DInf", "CSLS", "RInf-wr"])
class TestPermutationEquivariance:
    """Shuffling entity order must only relabel the matching.

    If ``match(S, T)`` emits (r, c), then ``match(S[p], T[q])`` must emit
    the same entity pairs under the new labels: these matchers score
    entities by geometry (and, for CSLS/RInf, neighbourhood statistics
    that are themselves order-free), never by row index.
    """

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_source=st.integers(3, 12),
        n_target=st.integers(3, 12),
        perm_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_row_and_column_shuffle(self, name, seed, n_source, n_target, perm_seed):
        source, target = _embedding_pair(seed, n_source, n_target)
        perm_rng = ensure_rng(perm_seed)
        p = perm_rng.permutation(n_source)
        q = perm_rng.permutation(n_target)

        base = create_matcher(name).match(source, target)
        shuffled = create_matcher(name).match(source[p], target[q])
        # Shuffled row r is original entity p[r] (and likewise columns),
        # so mapping the shuffled pairs through (p, q) recovers the
        # original matching.
        relabelled = {(int(p[r]), int(q[c])) for r, c in shuffled.pairs}
        assert relabelled == base.as_set()

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 10))
    @settings(max_examples=15, deadline=None)
    def test_identity_shuffle_is_noop(self, name, seed, n):
        source, target = _embedding_pair(seed, n, n)
        a = create_matcher(name).match(source, target)
        b = create_matcher(name).match(source.copy(), target.copy())
        assert a.as_set() == b.as_set()


class TestRInfPermutationEquivariance:
    """RInf is equivariant whenever its preferences are tie-free.

    Equation 2 pins every column champion's preference at exactly 1.0,
    so a source that tops two columns creates *structural* ties in a row
    of P_st, and the stable rank sort then breaks them by index order —
    which a shuffle changes.  Champions are distinct (ties measure-zero)
    when the two spaces are nearly aligned, the regime entity-alignment
    embeddings actually live in; there RInf must be fully equivariant.
    """

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 12))
    @settings(max_examples=25, deadline=None)
    def test_row_and_column_shuffle_on_aligned_spaces(self, seed, n):
        rng = ensure_rng(seed)
        source = rng.standard_normal((n, 8))
        target = source + 0.01 * rng.standard_normal((n, 8))
        p = rng.permutation(n)
        q = rng.permutation(n)

        base = create_matcher("RInf").match(source, target)
        shuffled = create_matcher("RInf").match(source[p], target[q])
        relabelled = {(int(p[r]), int(q[c])) for r, c in shuffled.pairs}
        assert relabelled == base.as_set()
