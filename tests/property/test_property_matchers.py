"""Property-based tests over all matching algorithms.

These check the structural invariants every matcher must satisfy on any
finite score matrix: pairs index into the matrix, greedy-family matchers
answer every source, constrained matchers respect 1-to-1, and reported
scores equal the matrix entries at the matched cells (for the matchers
that score with the raw matrix).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.registry import create_matcher

score_matrices = st.tuples(st.integers(2, 10), st.integers(2, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape, elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False)
    )
)

GREEDY_FAMILY = ("DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb", "Sink.", "RL")
CONSTRAINED = ("Hun.", "SMat")
ALL_MATCHERS = GREEDY_FAMILY + CONSTRAINED


@pytest.mark.parametrize("name", ALL_MATCHERS)
class TestUniversalInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_pairs_index_into_matrix(self, name, scores):
        matcher = create_matcher(name)
        result = matcher.match_scores(scores)
        if len(result.pairs):
            assert result.pairs[:, 0].min() >= 0
            assert result.pairs[:, 0].max() < scores.shape[0]
            assert result.pairs[:, 1].min() >= 0
            assert result.pairs[:, 1].max() < scores.shape[1]

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_at_most_one_answer_per_source(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        sources = result.pairs[:, 0].tolist()
        assert len(sources) == len(set(sources))

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, name, scores):
        a = create_matcher(name).match_scores(scores)
        b = create_matcher(name).match_scores(scores)
        assert a.as_set() == b.as_set()


@pytest.mark.parametrize("name", GREEDY_FAMILY)
class TestGreedyFamilyInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_every_source_answered(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        assert sorted(result.pairs[:, 0].tolist()) == list(range(scores.shape[0]))


@pytest.mark.parametrize("name", CONSTRAINED)
class TestConstrainedInvariants:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_one_to_one(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        targets = result.pairs[:, 1].tolist()
        assert len(targets) == len(set(targets))

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_matches_min_side(self, name, scores):
        result = create_matcher(name).match_scores(scores)
        assert len(result.pairs) <= min(scores.shape)


class TestScoreReporting:
    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_dinf_scores_are_matrix_entries(self, scores):
        result = create_matcher("DInf").match_scores(scores)
        np.testing.assert_allclose(
            result.scores, scores[result.pairs[:, 0], result.pairs[:, 1]]
        )

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_hungarian_total_optimal_vs_greedy_permutation(self, scores):
        # The Hungarian total is at least the total of any specific
        # permutation (identity, when square).
        if scores.shape[0] != scores.shape[1]:
            return
        result = create_matcher("Hun.").match_scores(scores)
        identity_total = np.trace(scores)
        assert result.scores.sum() >= identity_total - 1e-9
