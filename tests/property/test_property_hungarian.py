"""Property-based verification of the native Hungarian solver.

The strongest invariant available: on every random cost matrix the
native Jonker-Volgenant solver must reach exactly the optimum scipy's
C implementation reaches.
"""

import numpy as np
import scipy.optimize
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.hungarian import solve_assignment_max, solve_assignment_min

square_costs = st.integers(1, 12).flatmap(
    lambda n: arrays(
        np.float64, (n, n),
        elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    )
)

rect_scores = st.tuples(st.integers(1, 10), st.integers(1, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape,
        elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    )
)


class TestSolverOptimality:
    @given(cost=square_costs)
    @settings(max_examples=100, deadline=None)
    def test_total_cost_matches_scipy(self, cost):
        n = cost.shape[0]
        ours = solve_assignment_min(cost)
        rows, cols = scipy.optimize.linear_sum_assignment(cost)
        np.testing.assert_allclose(
            cost[np.arange(n), ours].sum(), cost[rows, cols].sum(), atol=1e-8
        )

    @given(cost=square_costs)
    @settings(max_examples=100, deadline=None)
    def test_output_is_permutation(self, cost):
        assignment = solve_assignment_min(cost)
        assert sorted(assignment.tolist()) == list(range(cost.shape[0]))

    @given(cost=square_costs, shift=st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, cost, shift):
        # Adding a constant to every cost does not change the optimum set
        # of totals (assignment may differ under ties, totals agree).
        n = cost.shape[0]
        base = solve_assignment_min(cost)
        shifted = solve_assignment_min(cost + shift)
        base_total = cost[np.arange(n), base].sum()
        shifted_total = cost[np.arange(n), shifted].sum()
        np.testing.assert_allclose(base_total, shifted_total, atol=1e-7)


class TestRectangularMax:
    @given(scores=rect_scores)
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy_total(self, scores):
        pairs, pair_scores = solve_assignment_max(scores)
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        np.testing.assert_allclose(
            pair_scores.sum(), scores[rows, cols].sum(), atol=1e-8
        )

    @given(scores=rect_scores)
    @settings(max_examples=50, deadline=None)
    def test_pair_count_is_min_side(self, scores):
        pairs, _ = solve_assignment_max(scores)
        assert len(pairs) == min(scores.shape)
