"""Property-based corruption testing of every durable artifact.

One invariant, three artifacts: however a store file, an IVF index
document, or a ledger file is truncated or bit-flipped, the reader
either returns correct data or raises a *typed* error naming the
artifact — never a raw ``json.JSONDecodeError``/``UnicodeDecodeError``,
never a hang, and never a silently wrong answer.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataIntegrityError
from repro.index import IVFIndex
from repro.obs.ledger import RunLedger, build_record
from repro.storage import HEADER_BYTES, EmbeddingStore

flip_masks = st.integers(1, 255)  # XOR with a nonzero mask always changes the byte


def _store_bytes(tmp_path, n_rows=6, dim=4):
    path = tmp_path / "emb.bin"
    rng = np.random.default_rng(0)
    array = rng.normal(size=(n_rows, dim)).astype(np.float32)
    EmbeddingStore.write(path, array).close()
    return path, array


def _ivf_bytes(tmp_path):
    path = tmp_path / "index.ivf.json"
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(20, 6))
    IVFIndex(n_clusters=3).train(vectors).add(vectors).save(path)
    return path


def _ledger_bytes(tmp_path):
    path = tmp_path / "runs.jsonl"
    ledger = RunLedger(path)
    for matcher in ("DInf", "CSLS", "Hun."):
        ledger.append(build_record(
            fingerprint="fp", preset="dbp15k/zh_en", regime="R",
            task="dbp15k/zh_en", matcher=matcher, seed=0, scale=0.5,
            metric="cosine", status="ok",
            metrics={"precision": 0.5, "recall": 0.5, "f1": 0.5},
            ranking={"hits@1": 0.5},
        ))
    return path


class TestStoreCorruption:
    @settings(max_examples=30, deadline=None)
    @given(offset_fraction=st.floats(0.0, 1.0, exclude_max=True))
    def test_any_truncation_raises_typed(self, tmp_path_factory, offset_fraction):
        path, _ = _store_bytes(tmp_path_factory.mktemp("store"))
        size = path.stat().st_size
        with path.open("r+b") as handle:
            handle.truncate(int(offset_fraction * size))
        try:
            EmbeddingStore.open(path, verify=True).close()
            raise AssertionError("a truncated store must not open")
        except DataIntegrityError as error:
            assert str(path) in str(error)

    @settings(max_examples=30, deadline=None)
    @given(offset=st.integers(0, 6 * 4 * 4 - 1), mask=flip_masks)
    def test_any_payload_bit_flip_fails_verification(
        self, tmp_path_factory, offset, mask
    ):
        path, array = _store_bytes(tmp_path_factory.mktemp("store"))
        raw = bytearray(path.read_bytes())
        raw[HEADER_BYTES + offset] ^= mask
        path.write_bytes(bytes(raw))
        try:
            EmbeddingStore.open(path, verify=True).close()
            raise AssertionError("a flipped payload must not verify")
        except DataIntegrityError as error:
            assert "checksum mismatch" in str(error)

    @settings(max_examples=30, deadline=None)
    @given(offset=st.integers(0, HEADER_BYTES - 1), mask=flip_masks)
    def test_any_header_bit_flip_raises_typed(self, tmp_path_factory, offset, mask):
        path, array = _store_bytes(tmp_path_factory.mktemp("store"))
        raw = bytearray(path.read_bytes())
        raw[offset] ^= mask
        path.write_bytes(bytes(raw))
        # A flip in the padding region leaves the header parseable but
        # then the recorded checksum still matches — that open must
        # return the exact original data; any other flip must be typed.
        try:
            with EmbeddingStore.open(path, verify=True) as store:
                np.testing.assert_array_equal(store.as_array(), array)
        except DataIntegrityError:
            pass  # typed, names the path — the contract


class TestIVFCorruption:
    @settings(max_examples=25, deadline=None)
    @given(offset_fraction=st.floats(0.0, 1.0, exclude_max=True))
    def test_any_truncation_raises_typed(self, tmp_path_factory, offset_fraction):
        path = _ivf_bytes(tmp_path_factory.mktemp("ivf"))
        size = path.stat().st_size
        offset = int(offset_fraction * size)
        if offset >= size - 1:  # only the trailing newline removed
            return
        with path.open("r+b") as handle:
            handle.truncate(offset)
        try:
            IVFIndex.load(path)
            raise AssertionError("a truncated index must not load")
        except json.JSONDecodeError:
            raise AssertionError("raw JSONDecodeError escaped IVFIndex.load")
        except DataIntegrityError as error:
            assert "IVF index" in str(error)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_bit_flip_raises_typed_or_roundtrips(self, tmp_path_factory, data):
        path = _ivf_bytes(tmp_path_factory.mktemp("ivf"))
        raw = bytearray(path.read_bytes())
        offset = data.draw(st.integers(0, len(raw) - 2))  # spare the newline
        raw[offset] ^= data.draw(flip_masks)
        path.write_bytes(bytes(raw))
        try:
            IVFIndex.load(path)
            raise AssertionError("a flipped index document must not load")
        except json.JSONDecodeError:
            raise AssertionError("raw JSONDecodeError escaped IVFIndex.load")
        except UnicodeDecodeError:
            raise AssertionError("raw UnicodeDecodeError escaped IVFIndex.load")
        except (DataIntegrityError, ValueError):
            pass  # typed: bad JSON, bad format/version, or checksum mismatch


class TestLedgerCorruption:
    @settings(max_examples=30, deadline=None)
    @given(offset_fraction=st.floats(0.0, 1.0))
    def test_any_truncation_recovers_the_complete_prefix(
        self, tmp_path_factory, offset_fraction
    ):
        path = _ledger_bytes(tmp_path_factory.mktemp("ledger"))
        raw = path.read_bytes()
        offset = int(offset_fraction * len(raw))
        line_starts = [0]
        for i, byte in enumerate(raw):
            if byte == ord("\n"):
                line_starts.append(i + 1)
        complete = sum(1 for start in line_starts[1:] if start <= offset)
        if offset < len(raw) and raw[offset] == ord("\n"):
            # Cutting exactly the newline leaves an unterminated but
            # fully valid final line, which the scanner counts complete.
            complete += 1
        path.write_bytes(raw[:offset])
        ledger = RunLedger(path)
        # Pure truncation is always a torn tail, never mid-file
        # corruption: the tolerant reader recovers every record whose
        # final newline survived, and fsck can repair the rest.
        records = ledger.records(strict=False)
        assert len(records) == complete
        report = ledger.fsck(repair=True)
        assert report.error is None
        assert len(ledger.records()) == complete

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_bit_flip_is_typed_or_still_valid(self, tmp_path_factory, data):
        path = _ledger_bytes(tmp_path_factory.mktemp("ledger"))
        raw = bytearray(path.read_bytes())
        offset = data.draw(st.integers(0, len(raw) - 1))
        raw[offset] ^= data.draw(flip_masks)
        path.write_bytes(bytes(raw))
        ledger = RunLedger(path)
        try:
            records = ledger.records(strict=False)
            assert len(records) in (2, 3)  # a flipped digit can stay valid
        except json.JSONDecodeError:
            raise AssertionError("raw JSONDecodeError escaped the ledger reader")
        except ValueError as error:
            # Typed and located: the message always carries path:lineno.
            assert f"{path}:" in str(error)
