"""Property-based tests for the IVF index.

The load-bearing invariant: with every list probed, IVF is *exactly*
brute force — clustering only partitions the scan, the rescoring is
exact.  Hypothesis hunts for geometries (ties, duplicates, degenerate
clusters) where the partition could leak candidates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index import IVFIndex
from repro.similarity.chunked import chunked_top_k


def index_problems(max_targets=24, max_queries=8, max_dim=5):
    """(queries, targets, n_clusters, k) with k <= n_targets."""
    shape = st.tuples(
        st.integers(2, max_targets),   # targets
        st.integers(1, max_queries),   # queries
        st.integers(1, max_dim),       # dim
    )

    def build(s):
        n_targets, n_queries, dim = s
        elements = st.floats(-5, 5, allow_nan=False, width=32)
        return st.tuples(
            arrays(np.float64, (n_queries, dim), elements=elements),
            arrays(np.float64, (n_targets, dim), elements=elements),
            st.integers(1, 6),           # requested clusters (clamped)
            st.integers(1, n_targets),   # k
        )

    return shape.flatmap(build)


class TestFullProbeExactness:
    @given(index_problems())
    @settings(max_examples=40, deadline=None)
    def test_nprobe_equals_clusters_is_brute_force(self, problem):
        queries, targets, n_clusters, k = problem
        index = IVFIndex(n_clusters=n_clusters).train(targets).add(targets)
        found = index.search(queries, k=k, nprobe=index.n_clusters)
        _, exact_scores = chunked_top_k(queries, targets, k)
        # With every list probed, no row comes up short and both scans
        # return their k best scores in descending order.  Compare the
        # *scores*, not the ids: equal-score ties may legitimately
        # resolve to different target ids between the two scans.
        assert found.k_max == k
        np.testing.assert_array_equal(found.row_counts, k)
        np.testing.assert_allclose(
            found.scores.reshape(len(queries), k), exact_scores, atol=1e-9
        )

    @given(index_problems())
    @settings(max_examples=40, deadline=None)
    def test_partial_probe_is_a_subset_of_brute_force_scores(self, problem):
        queries, targets, n_clusters, k = problem
        index = IVFIndex(n_clusters=n_clusters).train(targets).add(targets)
        found = index.search(queries, k=k, nprobe=1)
        # Every returned score is a true similarity against its target.
        from repro.similarity.metrics import similarity_matrix

        dense = similarity_matrix(queries, targets)
        rows = found.row_of_entry()
        np.testing.assert_allclose(
            found.scores, dense[rows, found.indices], atol=1e-9
        )
