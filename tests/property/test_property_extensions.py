"""Property-based tests for the extension matchers and chunked similarity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.blocking import BlockedMatcher
from repro.core.greedy import DInf
from repro.core.multi import MultiAnswerMatcher
from repro.core.threshold import ThresholdMatcher
from repro.similarity.chunked import chunked_top_k
from repro.similarity.metrics import similarity_matrix
from repro.similarity.topk import top_k_values

score_matrices = st.tuples(st.integers(2, 10), st.integers(2, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape,
        elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False),
    )
)

embedding_pairs = st.tuples(
    st.integers(2, 15), st.integers(2, 15), st.integers(2, 6)
).flatmap(
    lambda dims: st.tuples(
        arrays(np.float64, (dims[0], dims[2]),
               elements=st.floats(-5, 5, allow_nan=False)),
        arrays(np.float64, (dims[1], dims[2]),
               elements=st.floats(-5, 5, allow_nan=False)),
    )
)


class TestThresholdProperties:
    @given(scores=score_matrices, threshold=st.floats(-2, 2, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_output_subset_of_inner(self, scores, threshold):
        inner = DInf().match_scores(scores)
        filtered = ThresholdMatcher(DInf(), threshold).match_scores(scores)
        assert filtered.as_set() <= inner.as_set()

    @given(scores=score_matrices,
           low=st.floats(-2, 0, allow_nan=False),
           high=st.floats(0, 2, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_threshold(self, scores, low, high):
        loose = ThresholdMatcher(DInf(), low).match_scores(scores)
        strict = ThresholdMatcher(DInf(), high).match_scores(scores)
        assert strict.as_set() <= loose.as_set()

    @given(scores=score_matrices)
    @settings(max_examples=25, deadline=None)
    def test_surviving_scores_at_threshold(self, scores):
        threshold = float(np.median(scores))
        result = ThresholdMatcher(DInf(), threshold).match_scores(scores)
        assert np.all(result.scores >= threshold)


class TestMultiAnswerProperties:
    @given(scores=score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_includes_greedy_choice(self, scores):
        greedy = DInf().match_scores(scores).as_set()
        multi = MultiAnswerMatcher().match_scores(scores).as_set()
        assert greedy <= multi

    @given(scores=score_matrices,
           tight=st.floats(0.7, 1.0, exclude_max=False, allow_nan=False),
           loose=st.floats(0.1, 0.7, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_mass_ratio(self, scores, tight, loose):
        few = MultiAnswerMatcher(mass_ratio=tight).match_scores(scores).as_set()
        many = MultiAnswerMatcher(mass_ratio=loose).match_scores(scores).as_set()
        assert few <= many

    @given(scores=score_matrices, top_k=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_answers_bounded_by_top_k(self, scores, top_k):
        result = MultiAnswerMatcher(top_k=top_k).match_scores(scores)
        per_source = np.bincount(result.pairs[:, 0], minlength=scores.shape[0])
        assert per_source.max() <= top_k
        assert per_source.min() >= 1  # never abstains entirely


class TestBlockingProperties:
    @given(data=embedding_pairs, blocks=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_valid_output(self, data, blocks):
        source, target = data
        # Degenerate all-zero inputs are rejected upstream; skip them.
        if not np.any(source) or not np.any(target):
            return
        result = BlockedMatcher(DInf(), num_blocks=blocks).match(source, target)
        if len(result.pairs):
            assert result.pairs[:, 0].max() < source.shape[0]
            assert result.pairs[:, 1].max() < target.shape[0]
        sources = result.pairs[:, 0].tolist()
        assert len(sources) == len(set(sources))

    @given(data=embedding_pairs)
    @settings(max_examples=30, deadline=None)
    def test_single_block_is_inner(self, data):
        source, target = data
        blocked = BlockedMatcher(DInf(), num_blocks=1).match(source, target)
        plain = DInf().match(source, target)
        assert blocked.as_set() == plain.as_set()


class TestChunkedProperties:
    @given(data=embedding_pairs, k=st.integers(1, 6),
           chunk=st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_chunk_size_irrelevant(self, data, k, chunk):
        source, target = data
        indices, scores = chunked_top_k(source, target, k=k, chunk_size=chunk)
        dense = similarity_matrix(source, target)
        expected = top_k_values(dense, k)
        np.testing.assert_allclose(scores, expected, atol=1e-9)
