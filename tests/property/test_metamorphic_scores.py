"""Metamorphic properties of the score transforms.

Each test applies a known-output-preserving change to the input score
matrix and asserts the transform's behaviour follows the algebra:

* CSLS is affine-equivariant — ``CSLS(aS + b) = a CSLS(S)`` for a > 0,
  so the induced ranking (and the greedy prediction) cannot move;
* RInf's preference ranks depend only on score *order*, which positive
  affine maps preserve;
* the Sinkhorn operator is shift-invariant, temperature-covariant under
  scaling, and drives the kernel towards a doubly-stochastic matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.csls import csls_scores
from repro.core.registry import create_matcher
from repro.core.rinf import preference_scores, rank_matrix, reciprocal_rank_scores
from repro.core.sinkhorn import sinkhorn_scores

# Binary-fraction grid values (v / 2^9) with power-of-two scales and
# dyadic shifts: every affine map below is then computed *exactly* in
# float64, so the transforms must preserve tie structure bit-for-bit —
# no rounding can create or break a tie.
grid_matrices = st.tuples(st.integers(2, 9), st.integers(2, 9)).flatmap(
    lambda shape: arrays(
        np.float64, shape, elements=st.integers(-512, 512).map(lambda v: v / 512.0)
    )
)

square_grid_matrices = st.integers(2, 8).flatmap(
    lambda n: arrays(
        np.float64, (n, n), elements=st.integers(-512, 512).map(lambda v: v / 512.0)
    )
)

scales = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])
shifts = st.sampled_from([-2.0, -0.5, 0.0, 0.75, 3.0])

#: Figure 7's iteration sweep plus the defaults-neighbourhood temperatures.
FIGURE7_ITERATIONS = (1, 5, 10, 50, 100)
TEMPERATURES = (0.02, 0.05, 0.1, 1.0)


class TestCSLSAffineEquivariance:
    @given(scores=grid_matrices, a=scales, b=shifts)
    @settings(max_examples=50, deadline=None)
    def test_matrix_scales_linearly(self, scores, a, b):
        # CSLS(aS + b) = a CSLS(S): the shift cancels between 2S and the
        # two neighbourhood means, the scale factors out.
        np.testing.assert_allclose(
            csls_scores(a * scores + b), a * csls_scores(scores), atol=1e-9
        )

    @given(scores=grid_matrices, a=scales, b=shifts)
    @settings(max_examples=50, deadline=None)
    def test_prediction_unchanged(self, scores, a, b):
        base = create_matcher("CSLS").match_scores(scores)
        transformed = create_matcher("CSLS").match_scores(a * scores + b)
        assert transformed.as_set() == base.as_set()

    @given(scores=grid_matrices, a=scales, b=shifts, k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_holds_for_any_neighbourhood_width(self, scores, a, b, k):
        if k > min(scores.shape):
            k = min(scores.shape)
        np.testing.assert_allclose(
            csls_scores(a * scores + b, k=k), a * csls_scores(scores, k=k), atol=1e-9
        )


class TestRInfAffineInvariance:
    @given(scores=grid_matrices, a=scales, b=shifts)
    @settings(max_examples=50, deadline=None)
    def test_preference_ranks_unchanged(self, scores, a, b):
        # p = S - max + 1 maps to a(p - 1) + 1 under aS + b: strictly
        # increasing in p, so both directions' rank matrices are frozen.
        p_st, p_ts = preference_scores(scores)
        q_st, q_ts = preference_scores(a * scores + b)
        np.testing.assert_array_equal(rank_matrix(q_st, axis=1), rank_matrix(p_st, axis=1))
        np.testing.assert_array_equal(rank_matrix(q_ts, axis=0), rank_matrix(p_ts, axis=0))

    @given(scores=grid_matrices, a=scales, b=shifts)
    @settings(max_examples=50, deadline=None)
    def test_reciprocal_matrix_identical(self, scores, a, b):
        np.testing.assert_array_equal(
            reciprocal_rank_scores(a * scores + b), reciprocal_rank_scores(scores)
        )

    @given(scores=grid_matrices, a=scales, b=shifts)
    @settings(max_examples=25, deadline=None)
    def test_prediction_unchanged(self, scores, a, b):
        base = create_matcher("RInf").match_scores(scores)
        transformed = create_matcher("RInf").match_scores(a * scores + b)
        assert transformed.as_set() == base.as_set()


class TestSinkhornDoublyStochastic:
    # Row sums converge geometrically at a temperature-dependent rate:
    # near-tied assignments (gap ~ temperature) are the slow cases, so
    # the tolerance after l=100 widens as the temperature drops.
    ROW_TOLERANCE = {0.02: 0.1, 0.05: 0.05, 0.1: 0.03, 1.0: 1e-9}

    @pytest.mark.parametrize("temperature", TEMPERATURES)
    @given(scores=square_grid_matrices)
    @settings(max_examples=10, deadline=None)
    def test_converged_kernel_doubly_stochastic(self, temperature, scores):
        kernel = sinkhorn_scores(scores, iterations=100, temperature=temperature)
        np.testing.assert_allclose(kernel.sum(axis=0), 1.0, atol=1e-9)
        np.testing.assert_allclose(
            kernel.sum(axis=1), 1.0, atol=self.ROW_TOLERANCE[temperature]
        )
        assert (kernel >= 0).all()

    @pytest.mark.parametrize("iterations", FIGURE7_ITERATIONS)
    @given(scores=square_grid_matrices)
    @settings(max_examples=10, deadline=None)
    def test_column_sums_exact_after_any_iteration_count(self, iterations, scores):
        # Each iteration ends on the column normalisation, so column sums
        # are unit at every l of Figure 7's sweep; row sums only converge.
        kernel = sinkhorn_scores(scores, iterations=iterations, temperature=0.1)
        np.testing.assert_allclose(kernel.sum(axis=0), 1.0, atol=1e-9)

    @given(scores=square_grid_matrices)
    @settings(max_examples=20, deadline=None)
    def test_row_deviation_shrinks_with_iterations(self, scores):
        def deviation(iterations):
            kernel = sinkhorn_scores(scores, iterations=iterations, temperature=0.1)
            return np.abs(kernel.sum(axis=1) - 1.0).max()

        assert deviation(100) <= deviation(1) + 1e-9

    @given(scores=square_grid_matrices, b=shifts)
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance(self, scores, b):
        # A constant shift adds b/temperature to the log kernel and is
        # removed by the very first normalisation.
        np.testing.assert_allclose(
            sinkhorn_scores(scores + b, iterations=10, temperature=0.1),
            sinkhorn_scores(scores, iterations=10, temperature=0.1),
            atol=1e-9,
        )

    @given(scores=square_grid_matrices, a=scales)
    @settings(max_examples=25, deadline=None)
    def test_scale_temperature_covariance(self, scores, a):
        # Scaling the scores by a is the same operation as dividing the
        # temperature by a: only S / temperature enters the kernel.
        np.testing.assert_allclose(
            sinkhorn_scores(a * scores, iterations=10, temperature=a * 0.1),
            sinkhorn_scores(scores, iterations=10, temperature=0.1),
            atol=1e-9,
        )
