"""Property-based tests for the KG substrate and dataset generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair, generate_kg
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import split_links

triple_lists = st.lists(
    st.tuples(
        st.text(alphabet="abcdef", min_size=1, max_size=3),
        st.sampled_from(["r0", "r1"]),
        st.text(alphabet="abcdef", min_size=1, max_size=3),
    ),
    max_size=30,
)


class TestGraphProperties:
    @given(triples=triple_lists)
    @settings(max_examples=100, deadline=None)
    def test_degree_sum_is_twice_triples(self, triples):
        graph = KnowledgeGraph(triples)
        assert graph.degrees().sum() == 2 * graph.num_triples

    @given(triples=triple_lists)
    @settings(max_examples=100, deadline=None)
    def test_vocab_covers_triples(self, triples):
        graph = KnowledgeGraph(triples)
        for triple in graph.triples():
            assert graph.has_entity(triple.subject)
            assert graph.has_entity(triple.object)

    @given(triples=triple_lists)
    @settings(max_examples=50, deadline=None)
    def test_adjacency_diag_and_symmetry(self, triples):
        graph = KnowledgeGraph(triples)
        if graph.num_entities == 0:
            return
        adj = graph.adjacency()
        assert (adj != adj.T).nnz == 0


class TestSplitProperties:
    @given(
        n=st.integers(1, 60),
        train=st.floats(0, 0.7),
        valid=st.floats(0, 0.3),
        seed=st.integers(0, 100),
        disjoint=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_is_partition(self, n, train, valid, seed, disjoint):
        links = [(f"s{i}", f"t{i}") for i in range(n)]
        split = split_links(links, train, valid, seed=seed, entity_disjoint=disjoint)
        assert sorted(split.all_links) == sorted(links)
        assert not (set(split.train) & set(split.test))


class TestGeneratorProperties:
    @given(
        n=st.integers(10, 80),
        degree=st.floats(1.5, 6.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_kg_size_and_connectivity(self, n, degree, seed):
        import networkx as nx

        graph = generate_kg(n, 4, degree, seed=seed)
        assert graph.num_entities == n
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(n))
        for head, _, tail in graph.triple_ids:
            nx_graph.add_edge(int(head), int(tail))
        assert nx.is_connected(nx_graph)

    @given(
        n=st.integers(10, 60),
        heterogeneity=st.floats(0, 0.5),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_aligned_pair_links_bijective(self, n, heterogeneity, seed):
        task = generate_aligned_pair(
            KGPairConfig(num_entities=n, heterogeneity=heterogeneity, seed=seed)
        )
        links = task.split.all_links
        sources = [s for s, _ in links]
        targets = [t for _, t in links]
        assert len(set(sources)) == n
        assert len(set(targets)) == n
