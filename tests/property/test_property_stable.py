"""Property-based verification of Gale-Shapley stability."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.stable import gale_shapley, is_stable

score_matrices = st.tuples(st.integers(1, 10), st.integers(1, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape,
        elements=st.floats(0, 1, allow_nan=False, allow_infinity=False),
    )
)


class TestStabilityInvariant:
    @given(scores=score_matrices)
    @settings(max_examples=100, deadline=None)
    def test_output_always_stable(self, scores):
        pairs, _ = gale_shapley(scores)
        assert is_stable(scores, pairs)

    @given(scores=score_matrices)
    @settings(max_examples=100, deadline=None)
    def test_matching_is_injective_both_ways(self, scores):
        pairs, _ = gale_shapley(scores)
        assert len(set(pairs[:, 0].tolist())) == len(pairs)
        assert len(set(pairs[:, 1].tolist())) == len(pairs)

    @given(scores=score_matrices)
    @settings(max_examples=100, deadline=None)
    def test_matches_min_side_when_preferences_total(self, scores):
        # Every source ranks every target, so deferred acceptance fills
        # the smaller side completely.
        pairs, _ = gale_shapley(scores)
        assert len(pairs) == min(scores.shape)

    @given(
        scores=st.tuples(st.integers(1, 8), st.integers(1, 8)).flatmap(
            lambda shape: arrays(
                np.float64, shape,
                # Well-spaced grid values: the affine transform below must
                # not create or break ties through float rounding.
                elements=st.integers(0, 1000).map(lambda v: v / 1000.0),
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_transform_invariance(self, scores):
        # Stability depends only on preference *order*: applying a strictly
        # increasing transform leaves the matching unchanged.
        pairs_raw, _ = gale_shapley(scores)
        pairs_scaled, _ = gale_shapley(3.0 * scores + 7.0)
        assert {tuple(p) for p in pairs_raw} == {tuple(p) for p in pairs_scaled}
