"""Property-based tests for evaluation metrics and score transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.csls import csls_scores
from repro.core.sinkhorn import sinkhorn_scores
from repro.eval.metrics import evaluate_pairs

pair_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30
)

score_matrices = st.tuples(st.integers(2, 10), st.integers(2, 10)).flatmap(
    lambda shape: arrays(
        np.float64, shape,
        elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False),
    )
)


class TestMetricProperties:
    @given(predicted=pair_lists, gold=pair_lists)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, predicted, gold):
        metrics = evaluate_pairs(predicted, gold)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert 0.0 <= metrics.f1 <= 1.0

    @given(predicted=pair_lists, gold=pair_lists)
    @settings(max_examples=100, deadline=None)
    def test_f1_between_p_and_r(self, predicted, gold):
        metrics = evaluate_pairs(predicted, gold)
        low = min(metrics.precision, metrics.recall)
        high = max(metrics.precision, metrics.recall)
        assert low - 1e-12 <= metrics.f1 <= high + 1e-12

    @given(gold=pair_lists)
    @settings(max_examples=50, deadline=None)
    def test_self_evaluation_perfect(self, gold):
        if not gold:
            return
        metrics = evaluate_pairs(gold, gold)
        assert metrics.f1 == 1.0

    @given(predicted=pair_lists, gold=pair_lists)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_of_correct_count(self, predicted, gold):
        a = evaluate_pairs(predicted, gold)
        b = evaluate_pairs(gold, predicted)
        assert a.num_correct == b.num_correct


class TestTransformProperties:
    @given(scores=score_matrices)
    @settings(max_examples=50, deadline=None)
    def test_csls_preserves_finiteness(self, scores):
        assert np.all(np.isfinite(csls_scores(scores, k=1)))

    @given(scores=score_matrices, shift=st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_csls_shift_invariant_decisions(self, scores, shift):
        # Adding a constant to all scores shifts phi identically, so the
        # rescaled matrix changes by a constant: argmax decisions hold.
        base = csls_scores(scores, k=1)
        shifted = csls_scores(scores + shift, k=1)
        np.testing.assert_allclose(shifted - base, shift * 0.0 + (shifted - base)[0, 0],
                                   atol=1e-9)

    @given(scores=score_matrices)
    @settings(max_examples=30, deadline=None)
    def test_sinkhorn_rows_and_columns_near_stochastic(self, scores):
        out = sinkhorn_scores(scores, iterations=30, temperature=0.5)
        np.testing.assert_allclose(out.sum(axis=0), 1.0, atol=1e-6)
        # Rows approach uniform mass n_source/n_target distribution.
        assert np.all(out >= 0)

    @given(scores=score_matrices)
    @settings(max_examples=30, deadline=None)
    def test_sinkhorn_finite(self, scores):
        out = sinkhorn_scores(scores, iterations=50, temperature=0.02)
        assert np.all(np.isfinite(out))
