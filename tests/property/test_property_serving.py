"""Property-based tests for the serving delta layer.

The DESIGN.md §12 contract, hunted by Hypothesis over arbitrary
insert/delete sequences: at full ``nprobe``, querying the delta-layered
state returns *bitwise* the same top-k (entity ids and scores) as a
from-scratch :class:`IVFIndex` rebuilt over the surviving vectors;
tombstoned ids never appear; compaction — forced, either kind — is a
no-op on results.  Vectors are drawn from a binary-fraction grid so
duplicate rows and exact score ties are common: the tie-order half of
the contract is what random floats would never exercise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import IVFIndex
from repro.serve.state import ServingState
from repro.storage import EmbeddingStore

pytestmark = pytest.mark.serve

DIM = 4

#: Grid-valued vectors (v / 32): coarse enough that Hypothesis lands
#: duplicates and exact ties, exact in float64 so tie-break order is
#: the only thing separating candidates.
grid_vector = st.lists(
    st.integers(-32, 32).map(lambda v: v / 32.0), min_size=DIM, max_size=DIM
)

#: An op is ("insert", vector) or ("delete", rank) where rank picks one
#: of the currently-live ids (modulo their count at apply time).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), grid_vector),
        st.tuples(st.just("delete"), st.integers(0, 255)),
    ),
    max_size=12,
)

serving_cases = st.fixed_dictionaries(
    {
        "base": st.lists(grid_vector, min_size=2, max_size=12),
        "ops": operations,
        "queries": st.lists(grid_vector, min_size=1, max_size=3),
        "n_clusters": st.integers(1, 4),
        "k": st.integers(1, 6),
    }
)


def build_state(tmp_path, base, n_clusters, **kwargs):
    """A ServingState over a capacity-padded store + fresh index."""
    base = np.asarray(base, dtype=np.float64)
    store_path = tmp_path / "emb.store"
    store = EmbeddingStore.create(
        store_path, base.shape, "float64", capacity=base.shape[0] + 64
    )
    store[:] = base
    store.update_checksum()
    store.close()
    index = IVFIndex(n_clusters=n_clusters).train(base).add(base)
    index_path = tmp_path / "ivf.json"
    index.save(index_path)
    return ServingState.load(store_path, index_path, **kwargs)


def apply_ops(state, ops):
    """Run the op sequence; return the surviving (id -> vector) model.

    The model dict preserves insertion order — the same relative order
    the serving state keeps positions in — so a rebuild over
    ``list(model.values())`` reproduces the serving tie order exactly.
    """
    model = {
        int(eid): vec
        for eid, vec in zip(
            state.live_entity_ids(),
            state.snapshot.index.reconstruct(
                np.array(
                    [state.snapshot.id_pos[int(e)] for e in state.live_entity_ids()]
                )
            ),
        )
    }
    deleted = set()
    for kind, payload in ops:
        if kind == "insert":
            vector = np.asarray(payload, dtype=np.float64)
            eid = state.insert(vector)
            model[eid] = vector
        else:
            live = sorted(model)
            if not live:
                continue
            victim = live[payload % len(live)]
            assert state.delete(victim)
            del model[victim]
            deleted.add(victim)
    return model, deleted


def rebuild_results(model, queries, n_clusters, k):
    """Cold-rebuild ground truth: ids and scores per query row."""
    survivor_ids = np.array(list(model), dtype=np.int64)
    vectors = np.array(list(model.values()), dtype=np.float64)
    index = IVFIndex(n_clusters=n_clusters).train(vectors).add(vectors)
    found = index.search(queries, k=k, nprobe=index.n_clusters, stable=True)
    return [
        (survivor_ids[found.row(row)[0]], found.row(row)[1])
        for row in range(queries.shape[0])
    ]


@settings(max_examples=30, deadline=None)
@given(case=serving_cases)
def test_delta_layer_matches_cold_rebuild(tmp_path_factory, case):
    tmp_path = tmp_path_factory.mktemp("serve")
    state = build_state(tmp_path, case["base"], case["n_clusters"])
    model, deleted = apply_ops(state, case["ops"])
    queries = np.asarray(case["queries"], dtype=np.float64)
    k = case["k"]

    results = state.query(queries, k=k)
    if not model:
        for result in results:
            assert len(result.entity_ids) == 0
        return
    expected = rebuild_results(model, queries, case["n_clusters"], k)
    for result, (want_ids, want_scores) in zip(results, expected):
        np.testing.assert_array_equal(result.entity_ids, want_ids)
        np.testing.assert_array_equal(result.scores, want_scores)
        assert not (set(int(e) for e in result.entity_ids) & deleted)


@settings(max_examples=30, deadline=None)
@given(case=serving_cases)
def test_compaction_is_a_noop_on_results(tmp_path_factory, case):
    tmp_path = tmp_path_factory.mktemp("serve")
    state = build_state(tmp_path, case["base"], case["n_clusters"])
    model, _ = apply_ops(state, case["ops"])
    if not model:
        return
    queries = np.asarray(case["queries"], dtype=np.float64)
    k = case["k"]

    before = state.query(queries, k=k)
    # Append compaction (delta -> lists, no retrain), then re-cluster.
    state.compact(recluster=False)
    migrated = state.query(queries, k=k)
    state.compact(recluster=True)
    reclustered = state.query(queries, k=k)
    for old, mid, new in zip(before, migrated, reclustered):
        np.testing.assert_array_equal(old.entity_ids, mid.entity_ids)
        np.testing.assert_array_equal(old.scores, mid.scores)
        np.testing.assert_array_equal(old.entity_ids, new.entity_ids)
        np.testing.assert_array_equal(old.scores, new.scores)


@settings(max_examples=20, deadline=None)
@given(case=serving_cases)
def test_automatic_compaction_preserves_the_contract(tmp_path_factory, case):
    """A tiny max_delta forces mid-sequence compactions; results hold."""
    tmp_path = tmp_path_factory.mktemp("serve")
    state = build_state(tmp_path, case["base"], case["n_clusters"], max_delta=2)
    model, deleted = apply_ops(state, case["ops"])
    if not model:
        return
    queries = np.asarray(case["queries"], dtype=np.float64)
    k = case["k"]

    results = state.query(queries, k=k)
    expected = rebuild_results(model, queries, case["n_clusters"], k)
    for result, (want_ids, want_scores) in zip(results, expected):
        np.testing.assert_array_equal(result.entity_ids, want_ids)
        np.testing.assert_array_equal(result.scores, want_scores)
