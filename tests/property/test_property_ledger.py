"""Property-based tests for the run ledger's schema contract.

Two invariants hold for arbitrary well-formed inputs: a record built
from any valid field combination validates and survives the JSONL round
trip bit-for-bit, and any single structural mutation (dropped required
key, retyped value, illegal status combination) is rejected by
:func:`validate_record` — the writer and every reader share that gate,
so no corruption can silently enter a comparison.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.obs.ledger import (
    _RECORD_KEYS,
    RECORD_STATUSES,
    RunLedger,
    build_record,
    validate_record,
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-/.",
    min_size=1,
    max_size=20,
)

unit_floats = st.floats(0.0, 1.0, allow_nan=False)


@st.composite
def records(draw):
    status = draw(st.sampled_from(RECORD_STATUSES))
    f1 = draw(unit_floats)
    metrics = None
    if status != "failed":
        metrics = {"precision": f1, "recall": f1, "f1": f1}
    error = None
    if status != "ok":
        error = {"type": draw(names), "message": draw(st.text(max_size=30))}
    return build_record(
        fingerprint=draw(names),
        preset=draw(names),
        regime=draw(st.sampled_from(["R", "G", "N", "NR", "pipeline"])),
        task=draw(names),
        matcher=draw(names),
        seed=draw(st.integers(-1, 10_000)),
        scale=draw(st.floats(0.01, 2.0, allow_nan=False)),
        metric=draw(st.sampled_from(["cosine", "euclidean", "inner"])),
        status=status,
        metrics=metrics,
        ranking={"hits@1": draw(unit_floats), "mrr": draw(unit_floats)},
        top5_std=draw(unit_floats),
        seconds=draw(st.floats(0, 1e4, allow_nan=False)),
        cpu_seconds=draw(st.none() | st.floats(0, 1e4, allow_nan=False)),
        peak_bytes=draw(st.integers(0, 2**40)),
        attempts=draw(st.integers(1, 9)),
        fallback=draw(st.none() | names),
        chain=draw(st.lists(names, max_size=4)),
        error=error,
        engine=draw(st.none() | st.fixed_dictionaries({"hits": st.integers(0, 100)})),
        profile_path=draw(st.none() | names),
    )


class TestRoundTrip:
    @given(record=records())
    @settings(max_examples=60, deadline=None)
    def test_build_validate_serialise_round_trip(self, record):
        assert validate_record(record) is record
        assert json.loads(json.dumps(record)) == record

    @given(batch=st.lists(records(), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_ledger_file_round_trip(self, batch, tmp_path_factory):
        path = tmp_path_factory.mktemp("ledger") / "runs.jsonl"
        ledger = RunLedger(path)
        for record in batch:
            ledger.append(record)
        assert ledger.records() == batch


class TestMutationRejection:
    @given(record=records(), key=st.sampled_from(sorted(_RECORD_KEYS)))
    @settings(max_examples=80, deadline=None)
    def test_any_dropped_required_key_is_rejected(self, record, key):
        mutated = dict(record)
        del mutated[key]
        with pytest.raises(ValueError):
            validate_record(mutated)

    @given(record=records(), key=st.sampled_from(sorted(_RECORD_KEYS)))
    @settings(max_examples=80, deadline=None)
    def test_any_retyped_required_key_is_rejected(self, record, key):
        mutated = dict(record)
        # An object() is no valid JSON type, so it can never satisfy the
        # declared type tuple for any key.
        mutated[key] = object()
        with pytest.raises(ValueError):
            validate_record(mutated)

    @given(record=records())
    @settings(max_examples=40, deadline=None)
    def test_status_metric_consistency_is_enforced(self, record):
        mutated = dict(record)
        if mutated["status"] == "failed":
            mutated["metrics"] = {"f1": 0.5}  # failed runs carry no metrics
        else:
            mutated["metrics"] = None  # completed runs must carry them
        with pytest.raises(ValueError):
            validate_record(mutated)
