"""Property-based tests for the memmap embedding store.

Two invariants over arbitrary well-formed matrices: write -> open is an
exact round trip (every float, any shape, both dtypes), and any row-band
partition of an open store tiles the matrix exactly once with zero-copy
views — the contract the shard planner and the out-of-core scoring path
build on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import EmbeddingStore

shapes = st.tuples(st.integers(0, 40), st.integers(1, 12))
dtypes = st.sampled_from(["float32", "float64"])


@st.composite
def matrices(draw):
    (n_rows, dim) = draw(shapes)
    dtype = draw(dtypes)
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n_rows, dim)).astype(dtype)


@settings(max_examples=40, deadline=None)
@given(array=matrices())
def test_write_open_round_trip_is_exact(tmp_path_factory, array):
    path = tmp_path_factory.mktemp("store") / "emb.bin"
    EmbeddingStore.write(path, array).close()
    with EmbeddingStore.open(path) as store:
        assert store.shape == array.shape
        assert store.dtype == array.dtype
        np.testing.assert_array_equal(store.as_array(), array)


@settings(max_examples=40, deadline=None)
@given(array=matrices(), chunk_rows=st.integers(1, 50))
def test_row_shards_tile_exactly_once(tmp_path_factory, array, chunk_rows):
    path = tmp_path_factory.mktemp("store") / "emb.bin"
    EmbeddingStore.write(path, array).close()
    with EmbeddingStore.open(path) as store:
        covered = np.zeros(array.shape[0], dtype=int)
        pieces = []
        for band, view in store.row_shards(chunk_rows):
            assert view.base is not None  # a view, never a copy
            assert band.stop - band.start <= chunk_rows
            covered[band] += 1
            pieces.append(np.asarray(view))
        assert (covered == 1).all()
        if pieces:
            np.testing.assert_array_equal(np.concatenate(pieces), array)
        else:
            assert array.shape[0] == 0
