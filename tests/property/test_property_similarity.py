"""Property-based tests for the similarity layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.similarity.metrics import (
    cosine_similarity,
    euclidean_similarity,
    manhattan_similarity,
)
from repro.similarity.topk import top_k_mean, top_k_values


def embedding_matrices(max_rows=12, max_dim=6):
    shape = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(1, max_dim)
    )
    return shape.flatmap(
        lambda s: st.tuples(
            arrays(np.float64, (s[0], s[2]),
                   elements=st.floats(-10, 10, allow_nan=False)),
            arrays(np.float64, (s[1], s[2]),
                   elements=st.floats(-10, 10, allow_nan=False)),
        )
    )


class TestCosineProperties:
    @given(embedding_matrices())
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, matrices):
        a, b = matrices
        sim = cosine_similarity(a, b)
        assert np.all(sim >= -1.0 - 1e-9)
        assert np.all(sim <= 1.0 + 1e-9)

    @given(embedding_matrices())
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, matrices):
        a, b = matrices
        np.testing.assert_allclose(
            cosine_similarity(a, b), cosine_similarity(b, a).T, atol=1e-9
        )

    @given(embedding_matrices(), st.floats(0.1, 100))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, matrices, scale):
        # Rows whose norm sits near the zero-guard epsilon legitimately
        # break scale invariance (they clamp to "zero vector" on one side
        # of the scaling only); snap tiny values to exact zero, which IS
        # scale invariant.
        a, b = matrices
        a = np.where(np.abs(a) < 1e-6, 0.0, a)
        b = np.where(np.abs(b) < 1e-6, 0.0, b)
        np.testing.assert_allclose(
            cosine_similarity(a, b), cosine_similarity(scale * a, b), atol=1e-6
        )


class TestDistanceProperties:
    @given(embedding_matrices())
    @settings(max_examples=50, deadline=None)
    def test_euclidean_nonpositive_and_symmetric(self, matrices):
        a, b = matrices
        sim = euclidean_similarity(a, b)
        assert np.all(sim <= 1e-9)
        np.testing.assert_allclose(sim, euclidean_similarity(b, a).T, atol=1e-6)

    @given(embedding_matrices())
    @settings(max_examples=50, deadline=None)
    def test_manhattan_dominates_euclidean(self, matrices):
        # |x|_2 <= |x|_1, so -manhattan <= -euclidean.  Tolerance covers
        # the matmul-identity rounding in the euclidean path (~sqrt(eps)).
        a, b = matrices
        assert np.all(
            manhattan_similarity(a, b) <= euclidean_similarity(a, b) + 1e-5
        )

    @given(embedding_matrices())
    @settings(max_examples=50, deadline=None)
    def test_translation_invariance(self, matrices):
        a, b = matrices
        shift = np.ones(a.shape[1])
        np.testing.assert_allclose(
            euclidean_similarity(a, b),
            euclidean_similarity(a + shift, b + shift),
            atol=1e-6,
        )


class TestTopKProperties:
    @given(
        arrays(np.float64, (8, 10), elements=st.floats(-100, 100, allow_nan=False)),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_topk_subset_of_row(self, scores, k):
        top = top_k_values(scores, k)
        for row_idx in range(scores.shape[0]):
            row_values = scores[row_idx].tolist()
            for value in top[row_idx]:
                assert any(np.isclose(value, rv) for rv in row_values)

    @given(
        arrays(np.float64, (8, 10), elements=st.floats(-100, 100, allow_nan=False)),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_bounded_by_extremes(self, scores, k):
        means = top_k_mean(scores, k)
        assert np.all(means <= scores.max(axis=1) + 1e-9)
        assert np.all(means >= scores.min(axis=1) - 1e-9)
