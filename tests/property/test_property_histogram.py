"""Property-based tests for the streaming histogram.

The histogram is the serving daemon's latency instrument, so its
algebra has to hold for *any* observation stream, not just the happy
path: merge must behave like concatenating the streams (associatively,
conserving count and sum), quantile estimates must be monotone in q,
and every recorded value must genuinely lie inside the bucket the
histogram claims holds it.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import DEFAULT_LATENCY_BOUNDS, Histogram

# Latencies spanning the default buckets' six decades, plus values
# beyond both ends (first-bucket and overflow paths).
latencies = st.floats(
    min_value=1e-6, max_value=1e4, allow_nan=False, allow_infinity=False
)
latency_lists = st.lists(latencies, max_size=60)

# Small custom bucket layouts: strictly ascending positive floats.
bucket_layouts = st.lists(
    st.floats(min_value=1e-3, max_value=1e3,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True,
).map(sorted)

quantiles = st.floats(min_value=0.0, max_value=1.0)


def fill(values: list[float]) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


class TestConservation:
    @given(values=latency_lists)
    @settings(max_examples=100, deadline=None)
    def test_count_and_sum_are_conserved(self, values):
        hist = fill(values)
        assert hist.count == len(values)
        assert math.isclose(hist.sum, math.fsum(values), abs_tol=1e-9)
        snap = hist.snapshot()
        assert sum(snap["counts"]) == len(values)

    @given(a=latency_lists, b=latency_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = fill(a).merge(fill(b))
        together = fill(a + b)
        assert merged.snapshot()["counts"] == together.snapshot()["counts"]
        assert merged.count == together.count
        assert math.isclose(merged.sum, together.sum, abs_tol=1e-9)

    @given(a=latency_lists, b=latency_lists, c=latency_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = fill(a).merge(fill(b)).merge(fill(c))
        right = fill(a).merge(fill(b).merge(fill(c)))
        assert left.snapshot()["counts"] == right.snapshot()["counts"]
        assert left.count == right.count
        assert math.isclose(left.sum, right.sum, abs_tol=1e-9)


class TestQuantiles:
    @given(values=latency_lists, qs=st.lists(quantiles, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_quantile_is_monotone_in_q(self, values, qs):
        hist = fill(values)
        ordered = sorted(qs)
        estimates = [hist.quantile(q) for q in ordered]
        assert estimates == sorted(estimates)

    @given(values=st.lists(latencies, min_size=1, max_size=60), q=quantiles)
    @settings(max_examples=100, deadline=None)
    def test_quantile_lands_in_a_populated_bucket_range(self, values, q):
        hist = fill(values)
        estimate = hist.quantile(q)
        # The estimate is bracketed by the bucket ranges of the extreme
        # observations (quantiles cannot escape the observed support,
        # up to bucket resolution; overflow reports the last bound).
        low = hist.bucket_bounds(min(values))[0]
        high = min(hist.bucket_bounds(max(values))[1],
                   DEFAULT_LATENCY_BOUNDS[-1])
        assert low <= estimate <= high


class TestBucketContract:
    @given(value=latencies, layout=bucket_layouts)
    @settings(max_examples=100, deadline=None)
    def test_value_lies_within_its_reported_bucket_bounds(self, value, layout):
        hist = Histogram(layout)
        lower, upper = hist.bucket_bounds(value)
        assert lower < value <= upper or (lower == 0.0 and value <= upper)
        # And observing it increments exactly that bucket.
        hist.observe(value)
        counts = hist.snapshot()["counts"]
        bounds = list(hist.bounds) + [float("inf")]
        index = counts.index(1)
        assert value <= bounds[index]
        assert index == 0 or value > bounds[index - 1]
        assert sum(counts) == 1
