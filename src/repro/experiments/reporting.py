"""Plain-text table rendering for experiment output.

The benchmark harness prints each regenerated table in a layout close to
the paper's, so paper-vs-measured comparison (EXPERIMENTS.md) is a
side-by-side read.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(
    rows: Iterable[Mapping[str, object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows the first row's key order; missing cells render
    empty; floats use ``float_format``.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        return (title + "\n") if title else ""
    headers = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in headers:
                headers.append(key)

    def cell(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    grid = [[cell(row.get(header)) for header in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[i]) for line in grid)) if grid else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in grid:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)
