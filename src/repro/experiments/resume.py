"""Resume bookkeeping for interrupted sweeps.

A killed sweep leaves behind exactly one durable trace: the run ledger's
per-cell records (the reason :meth:`~repro.obs.ledger.RunLedger.append`
can fsync).  Resuming is therefore pure bookkeeping over that ledger —
no checkpoint files, no partial state: a cell is identified by its
config fingerprint (blake2b over the config's identity fields, the same
digest ``repro runs diff`` keys on) plus the requested matcher name, and
a cell whose *latest* record satisfies the :class:`ResumePolicy` is
skipped with a ``matcher.skipped`` event instead of re-run.

Determinism makes this sound: the whole pipeline is seeded, so the cells
a resumed sweep re-runs produce bitwise-identical numbers to the cells
an uninterrupted sweep would have produced — the property the
kill-resume round-trip test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.ledger import RunLedger


@dataclass(frozen=True)
class ResumePolicy:
    """Which prior cell outcomes satisfy a resumed sweep.

    ``ok`` cells are always skipped — re-running them is the one thing a
    resume must never do.  ``failed`` and ``degraded`` cells re-run by
    default (the crash may *be* why they failed); flip the flags to
    accept them as final instead.
    """

    rerun_failed: bool = True
    rerun_degraded: bool = True

    def satisfied_by(self, status: str) -> bool:
        """Whether a latest-record ``status`` lets the cell be skipped."""
        if status == "ok":
            return True
        if status == "degraded":
            return not self.rerun_degraded
        if status == "failed":
            return not self.rerun_failed
        return False


def satisfied_cells(
    ledger: RunLedger,
    fingerprint: str,
    policy: ResumePolicy | None = None,
) -> dict[str, dict[str, Any]]:
    """Matcher name -> latest ledger record for cells a resume may skip.

    Reads the ledger tolerantly (``strict=False``) — the ledger of a
    *crashed* sweep is exactly where a torn tail lives, and the torn
    record is simply a cell that never completed.  Only records whose
    fingerprint matches this config count; within a cell the latest
    record wins, so an earlier failure followed by a clean re-run is
    satisfied, and a later failure after an old success re-runs (under
    the default policy).
    """
    policy = policy or ResumePolicy()
    satisfied: dict[str, dict[str, Any]] = {}
    for record in ledger.records(strict=False):
        if record["fingerprint"] != fingerprint:
            continue
        if policy.satisfied_by(record["status"]):
            satisfied[record["matcher"]] = record
        else:
            satisfied.pop(record["matcher"], None)
    return satisfied
