"""One-shot report generation: every table and figure into one document.

``generate_report`` runs the full experiment campaign and writes a
single self-contained Markdown report (plus the plain-text artifacts),
the way the benchmark suite would produce them — handy for regeneration
on new machines or after library changes::

    python -m repro report -o report/
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments.figures import (
    FigureResult,
    figure4_top5_std,
    figure5_efficiency,
    figure6_csls_k,
    figure7_sinkhorn_l,
)
from repro.experiments.reporting import format_table
from repro.experiments.tables import (
    TableResult,
    table3_dataset_statistics,
    table4_structure_only,
    table5_auxiliary_information,
    table6_large_scale,
    table7_unmatchable,
    table8_non_one_to_one,
)

_TABLE_BUILDERS = (
    ("table3", table3_dataset_statistics),
    ("table4", table4_structure_only),
    ("table5", table5_auxiliary_information),
    ("table6", table6_large_scale),
    ("table7", table7_unmatchable),
    ("table8", table8_non_one_to_one),
)

_FIGURE_BUILDERS = (
    ("figure4", figure4_top5_std),
    ("figure5", figure5_efficiency),
    ("figure6", figure6_csls_k),
    ("figure7", figure7_sinkhorn_l),
)


def render_figure(figure: FigureResult) -> str:
    """Plain-text rendering of a figure's series."""
    lines = [figure.title]
    for series, points in figure.series.items():
        rendered = "  ".join(f"{x}:{y:.3f}" for x, y in points)
        lines.append(f"  {series}: {rendered}")
    return "\n".join(lines)


def generate_report(
    output_dir: str | Path, scale: float = 1.0, seed: int = 0
) -> Path:
    """Regenerate every table and figure into ``output_dir``.

    Writes one ``REPORT.md`` plus a ``.txt`` artifact per item; returns
    the report path.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} at scale {scale}, "
        f"seed {seed}.  Shape expectations and paper-vs-measured commentary "
        "live in EXPERIMENTS.md; this file is the raw regenerated output.",
    ]

    for name, builder in _TABLE_BUILDERS:
        table: TableResult = (
            builder(scale=scale)
            if name == "table3"
            else builder(scale=scale, seed=seed)
        )
        text = format_table(table.rows, title=table.title)
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        sections += ["", f"## {table.title}", "", "```", text, "```"]

    for name, builder in _FIGURE_BUILDERS:
        figure = builder(scale=scale, seed=seed)
        text = render_figure(figure)
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        sections += ["", f"## {figure.title}", "", "```", text, "```"]

    report_path = output_dir / "REPORT.md"
    report_path.write_text("\n".join(sections) + "\n", encoding="utf-8")
    return report_path
