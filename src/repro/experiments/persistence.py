"""Persist embeddings and experiment results to disk.

Long experiment campaigns want to decouple the expensive stages: encode
once, match many times; run a sweep overnight, analyse in the morning.
Embeddings round-trip as ``.npz`` archives, experiment results as JSON —
both plain formats other tooling can read.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.embedding.base import UnifiedEmbeddings
from repro.eval.metrics import AlignmentMetrics
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, MatcherRun


def save_embeddings(embeddings: UnifiedEmbeddings, path: str | Path) -> Path:
    """Write embeddings to an ``.npz`` archive; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, source=embeddings.source, target=embeddings.target)
    # np.savez appends .npz when missing; normalise the reported path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_embeddings(path: str | Path) -> UnifiedEmbeddings:
    """Read embeddings written by :func:`save_embeddings`."""
    with np.load(Path(path)) as archive:
        missing = {"source", "target"} - set(archive.files)
        if missing:
            raise ValueError(f"{path} is not an embeddings archive (missing {missing})")
        return UnifiedEmbeddings(archive["source"], archive["target"])


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write an :class:`ExperimentResult` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "config": {
            "preset": result.config.preset,
            "input_regime": result.config.input_regime,
            "matchers": list(result.config.matchers),
            "scale": result.config.scale,
            "seed": result.config.seed,
            "metric": result.config.metric,
        },
        "task_name": result.task_name,
        "top5_std": result.top5_std,
        "runs": {
            name: {
                "precision": run.metrics.precision,
                "recall": run.metrics.recall,
                "f1": run.metrics.f1,
                "num_predicted": run.metrics.num_predicted,
                "num_correct": run.metrics.num_correct,
                "num_gold": run.metrics.num_gold,
                "seconds": run.seconds,
                "peak_bytes": run.peak_bytes,
            }
            for name, run in result.runs.items()
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result`.

    Reconstructs the config and per-matcher records; the heavy artefacts
    (embeddings, raw pairs) are intentionally not persisted.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    config_data = payload["config"]
    config = ExperimentConfig(
        preset=config_data["preset"],
        input_regime=config_data["input_regime"],
        matchers=tuple(config_data["matchers"]),
        scale=config_data["scale"],
        seed=config_data["seed"],
        metric=config_data["metric"],
    )
    result = ExperimentResult(
        config=config,
        task_name=payload["task_name"],
        top5_std=payload["top5_std"],
    )
    for name, run in payload["runs"].items():
        metrics = AlignmentMetrics(
            precision=run["precision"],
            recall=run["recall"],
            f1=run["f1"],
            num_predicted=run["num_predicted"],
            num_correct=run["num_correct"],
            num_gold=run["num_gold"],
        )
        result.runs[name] = MatcherRun(
            matcher=name,
            metrics=metrics,
            seconds=run["seconds"],
            peak_bytes=run["peak_bytes"],
        )
    return result
