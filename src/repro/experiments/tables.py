"""Regeneration of every table in the paper's evaluation.

Each ``tableN_*`` function sweeps the relevant presets/regimes through
the runner and returns a :class:`TableResult` whose ``rows`` print like
the paper's table and whose ``results`` keep the raw per-run records for
shape assertions in the benchmark suite.

Under a supervised sweep (``policy=`` forwarded to the runner) a matcher
may fail and leave no run; its cells render as :data:`FAILED_CELL`
(``"—"``) instead of crashing the table, and the failure stays in the
per-result ledger (``ExperimentResult.failures``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.registry import PAPER_MATCHERS
from repro.datasets.zoo import (
    DBP15K_PRESETS,
    DWY100K_PRESETS,
    SRPRS_PRESETS,
    list_presets,
    load_preset,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.kg.stats import dataset_statistics
from repro.runtime.supervisor import SupervisorPolicy

#: Rendering of a cell whose matcher failed under supervision.
FAILED_CELL = "—"


@dataclass
class TableResult:
    """Rows of one regenerated table plus the raw experiment results."""

    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    #: Raw results keyed by (regime, preset).
    results: dict[tuple[str, str], ExperimentResult] = field(default_factory=dict)

    def result(self, regime: str, preset: str) -> ExperimentResult:
        return self.results[(regime, preset)]


# ----------------------------------------------------------------------
# Table 3: dataset statistics
# ----------------------------------------------------------------------

def table3_dataset_statistics(scale: float = 1.0) -> TableResult:
    """Table 3: entity/relation/triple/link counts and average degree."""
    table = TableResult(title="Table 3: dataset statistics")
    for preset in list_presets():
        task = load_preset(preset, scale=scale)
        stats = dataset_statistics(task)
        row: dict[str, object] = {"preset": preset}
        row.update(stats.as_row())
        if stats.num_non_one_to_one_links:
            row["#non-1-to-1"] = stats.num_non_one_to_one_links
        table.rows.append(row)
    return table


# ----------------------------------------------------------------------
# Tables 4 and 5: main F1 comparison
# ----------------------------------------------------------------------

def _group_sweep(
    table: TableResult,
    regime: str,
    presets: tuple[str, ...],
    matchers: tuple[str, ...],
    scale: float,
    seed: int,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> None:
    for preset in presets:
        config = ExperimentConfig(
            preset=preset, input_regime=regime, matchers=matchers,
            scale=scale, seed=seed,
        )
        table.results[(regime, preset)] = run_experiment(
            config, policy=policy, matcher_factory=matcher_factory
        )


def _matcher_rows(
    table: TableResult,
    groups: list[tuple[str, str, tuple[str, ...]]],
    matchers: tuple[str, ...],
) -> None:
    """One row per matcher: F1 per (group, preset) column + per-group Imp.

    Matchers that failed under supervision have no run in that cell's
    result; their F1 and Imp. cells render as :data:`FAILED_CELL`.
    """
    for matcher in matchers:
        row: dict[str, object] = {"matcher": matcher}
        for group_label, regime, presets in groups:
            improvements = []
            failed = False
            for preset in presets:
                result = table.results[(regime, preset)]
                run = result.runs.get(matcher)
                if run is None:
                    row[f"{group_label}:{result.task_name}"] = FAILED_CELL
                    failed = True
                    continue
                row[f"{group_label}:{result.task_name}"] = run.f1
                if matcher != "DInf":
                    improvements.append(result.improvement_over()[matcher])
            if matcher != "DInf":
                if failed:
                    row[f"{group_label}:Imp."] = FAILED_CELL
                elif improvements:
                    row[f"{group_label}:Imp."] = (
                        f"{sum(improvements) / len(improvements) * 100:+.1f}%"
                    )
        table.rows.append(row)


def table4_structure_only(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = PAPER_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> TableResult:
    """Table 4: F1 with structure-only embeddings (R-/G- regimes)."""
    table = TableResult(title="Table 4: F1, structural information only")
    groups = [
        ("R-DBP", "R", DBP15K_PRESETS),
        ("R-SRP", "R", SRPRS_PRESETS),
        ("G-DBP", "G", DBP15K_PRESETS),
        ("G-SRP", "G", SRPRS_PRESETS),
    ]
    seen: set[tuple[str, str]] = set()
    for _, regime, presets in groups:
        todo = tuple(p for p in presets if (regime, p) not in seen)
        seen.update((regime, p) for p in todo)
        _group_sweep(table, regime, todo, matchers, scale, seed, policy, matcher_factory)
    _matcher_rows(table, groups, matchers)
    return table


#: SRPRS presets evaluated in Table 5 (the multilingual pairs; names of
#: the monolingual pairs are near-identical and excluded by the paper).
TABLE5_SRPRS = ("srprs/en_fr", "srprs/en_de")


def table5_auxiliary_information(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = PAPER_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> TableResult:
    """Table 5: F1 with name embeddings (N-) and name+structure (NR-)."""
    table = TableResult(title="Table 5: F1, auxiliary (name) information")
    groups = [
        ("N-DBP", "N", DBP15K_PRESETS),
        ("N-SRP", "N", TABLE5_SRPRS),
        ("NR-DBP", "NR", DBP15K_PRESETS),
        ("NR-SRP", "NR", TABLE5_SRPRS),
    ]
    for _, regime, presets in groups:
        _group_sweep(table, regime, presets, matchers, scale, seed, policy, matcher_factory)
    _matcher_rows(table, groups, matchers)
    return table


# ----------------------------------------------------------------------
# Table 6: large-scale datasets
# ----------------------------------------------------------------------

#: Matchers of Table 6 in paper order; SMat is reported as infeasible.
TABLE6_MATCHERS = ("DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb", "Sink.", "Hun.", "RL")

#: Memory budget in units of one similarity matrix (n_s x n_t float64).
#: 2.5 matrices reproduces the paper's feasibility pattern: methods that
#: materialise several extra n^2 buffers (RInf, Sink., Hun.) blow it.
TABLE6_MEMORY_BUDGET_UNITS = 2.5


def table6_large_scale(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = TABLE6_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> TableResult:
    """Table 6: F1 + time + memory feasibility on the DWY100K-like presets."""
    table = TableResult(title="Table 6: large-scale results (G- regime)")
    _group_sweep(table, "G", DWY100K_PRESETS, matchers, scale, seed, policy, matcher_factory)

    budgets: dict[str, float] = {}
    for preset in DWY100K_PRESETS:
        result = table.results[("G", preset)]
        task = load_preset(preset, scale=scale)
        n_queries = len(task.test_query_ids())
        n_candidates = len(task.candidate_target_ids())
        budgets[preset] = TABLE6_MEMORY_BUDGET_UNITS * n_queries * n_candidates * 8

    for matcher in matchers:
        row: dict[str, object] = {"matcher": matcher}
        seconds = []
        fits = True
        failed = False
        improvements = []
        for preset in DWY100K_PRESETS:
            result = table.results[("G", preset)]
            run = result.runs.get(matcher)
            if run is None:
                row[result.task_name] = FAILED_CELL
                failed = True
                continue
            row[result.task_name] = run.f1
            seconds.append(run.seconds)
            fits = fits and run.peak_bytes <= budgets[preset]
            if matcher != "DInf":
                improvements.append(result.improvement_over()[matcher])
        if failed:
            row["Imp."] = FAILED_CELL
        elif improvements:
            row["Imp."] = f"{sum(improvements) / len(improvements) * 100:+.1f}%"
        row["T"] = sum(seconds) / len(seconds) if seconds else FAILED_CELL
        row["Mem."] = FAILED_CELL if failed else ("Yes" if fits else "No")
        table.rows.append(row)
    # SMat's preference lists exceed any reasonable budget at this scale;
    # the paper reports it as infeasible ("/") and so do we.
    table.rows.append(
        {"matcher": "SMat", DWY_LABELS[0]: "/", DWY_LABELS[1]: "/", "T": "/", "Mem.": "/"}
    )
    return table


#: Display names of the DWY100K-like presets (row keys in Table 6).
DWY_LABELS = ("D-W", "D-Y")


# ----------------------------------------------------------------------
# Table 7: unmatchable entities
# ----------------------------------------------------------------------

DBP15K_PLUS_PRESETS = ("dbp15k_plus/zh_en", "dbp15k_plus/ja_en", "dbp15k_plus/fr_en")


def table7_unmatchable(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = PAPER_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> TableResult:
    """Table 7: F1 on the unmatchable-entity datasets (DBP15K+)."""
    table = TableResult(title="Table 7: F1 with unmatchable entities (DBP15K+)")
    for regime in ("G", "R"):
        _group_sweep(
            table, regime, DBP15K_PLUS_PRESETS, matchers, scale, seed,
            policy, matcher_factory,
        )
    for matcher in matchers:
        row: dict[str, object] = {"matcher": matcher}
        for regime in ("G", "R"):
            seconds = []
            for preset in DBP15K_PLUS_PRESETS:
                result = table.results[(regime, preset)]
                run = result.runs.get(matcher)
                if run is None:
                    row[f"{regime}:{result.task_name}"] = FAILED_CELL
                    continue
                row[f"{regime}:{result.task_name}"] = run.f1
                seconds.append(run.seconds)
            row[f"{regime}:T"] = sum(seconds) / len(seconds) if seconds else FAILED_CELL
        table.rows.append(row)
    return table


# ----------------------------------------------------------------------
# Table 8: non-1-to-1 alignment
# ----------------------------------------------------------------------

def table8_non_one_to_one(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = PAPER_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> TableResult:
    """Table 8: P/R/F1 on the non-1-to-1 dataset (FB_DBP_MUL)."""
    table = TableResult(title="Table 8: non-1-to-1 alignment (FB_DBP_MUL)")
    for regime in ("G", "R"):
        _group_sweep(
            table, regime, ("fb_dbp_mul",), matchers, scale, seed,
            policy, matcher_factory,
        )
    for matcher in matchers:
        row: dict[str, object] = {"matcher": matcher}
        for regime in ("G", "R"):
            run = table.results[(regime, "fb_dbp_mul")].runs.get(matcher)
            if run is None:
                for column in ("P", "R", "F1", "T"):
                    row[f"{regime}:{column}"] = FAILED_CELL
                continue
            row[f"{regime}:P"] = run.metrics.precision
            row[f"{regime}:R"] = run.metrics.recall
            row[f"{regime}:F1"] = run.metrics.f1
            row[f"{regime}:T"] = run.seconds
        table.rows.append(row)
    return table
