"""Regeneration of the paper's figures (as data series).

Each ``figureN_*`` function returns the series the corresponding figure
plots; the benchmark suite prints them and asserts the qualitative shape
(monotonicity, orderings) the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.registry import PAPER_MATCHERS
from repro.datasets.zoo import DBP15K_PRESETS, SRPRS_PRESETS
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.runtime.supervisor import SupervisorPolicy


@dataclass
class FigureResult:
    """Named data series of one regenerated figure."""

    title: str
    #: series name -> list of (x, y) points.
    series: dict[str, list[tuple[object, float]]] = field(default_factory=dict)

    def add_point(self, series: str, x: object, y: float) -> None:
        self.series.setdefault(series, []).append((x, y))

    def ys(self, series: str) -> list[float]:
        return [y for _, y in self.series[series]]


#: One representative preset per (regime, family) cell of Figure 4/5.
_FIGURE_SETTINGS = (
    ("R-DBP", "R", "dbp15k/zh_en"),
    ("R-SRP", "R", "srprs/en_fr"),
    ("G-DBP", "G", "dbp15k/zh_en"),
    ("G-SRP", "G", "srprs/en_fr"),
    ("N-DBP", "N", "dbp15k/zh_en"),
    ("NR-DBP", "NR", "dbp15k/zh_en"),
)


def figure4_top5_std(scale: float = 1.0, seed: int = 0) -> FigureResult:
    """Figure 4: mean STD of the top-5 similarity scores per setting.

    Structure-only settings produce crowded (low-STD) top scores; the
    name-informed settings produce discriminative (high-STD) ones —
    the statistic behind the paper's Pattern 1.
    """
    figure = FigureResult(title="Figure 4: STD of top-5 pairwise scores")
    for label, regime, preset in _FIGURE_SETTINGS:
        config = ExperimentConfig(
            preset=preset, input_regime=regime, matchers=("DInf",),
            scale=scale, seed=seed,
        )
        result = run_experiment(config)
        figure.add_point("top5_std", label, result.top5_std)
    return figure


def figure5_efficiency(
    scale: float = 1.0,
    seed: int = 0,
    matchers: tuple[str, ...] = PAPER_MATCHERS,
    policy: SupervisorPolicy | None = None,
    matcher_factory: Callable | None = None,
) -> FigureResult:
    """Figure 5: time (s) and declared peak memory (MiB) per matcher.

    Averaged over the DBP15K-like and SRPRS-like presets per regime,
    like the paper's per-setting averages.  Under a supervised sweep a
    failed matcher contributes no points for that setting (the series
    simply has a gap) instead of aborting the figure.
    """
    figure = FigureResult(title="Figure 5: efficiency comparison")
    settings = (
        ("R-DBP", "R", DBP15K_PRESETS),
        ("R-SRP", "R", SRPRS_PRESETS),
        ("G-DBP", "G", DBP15K_PRESETS),
        ("G-SRP", "G", SRPRS_PRESETS),
    )
    for label, regime, presets in settings:
        totals = {name: [0.0, 0.0, 0] for name in matchers}
        for preset in presets:
            config = ExperimentConfig(
                preset=preset, input_regime=regime, matchers=matchers,
                scale=scale, seed=seed,
            )
            result = run_experiment(
                config, policy=policy, matcher_factory=matcher_factory
            )
            for name in matchers:
                run = result.runs.get(name)
                if run is None:
                    continue
                totals[name][0] += run.seconds
                totals[name][1] += run.peak_bytes / 2**20
                totals[name][2] += 1
        for name in matchers:
            seconds, mib, completed = totals[name]
            if not completed:
                continue
            figure.add_point(f"time:{name}", label, seconds / completed)
            figure.add_point(f"memory:{name}", label, mib / completed)
    return figure


def figure6_csls_k(
    ks: tuple[int, ...] = (1, 2, 5, 10),
    presets: tuple[str, ...] = ("dbp15k/zh_en", "srprs/en_fr"),
    regime: str = "R",
    scale: float = 1.0,
    seed: int = 0,
) -> FigureResult:
    """Figure 6: CSLS F1 as a function of k (k=1 best under 1-to-1)."""
    figure = FigureResult(title="Figure 6: CSLS F1 vs k")
    for preset in presets:
        for k in ks:
            config = ExperimentConfig(
                preset=preset, input_regime=regime, matchers=("CSLS",),
                matcher_options={"CSLS": {"k": k}}, scale=scale, seed=seed,
            )
            result = run_experiment(config)
            figure.add_point(result.task_name, k, result.f1("CSLS"))
    return figure


def figure7_sinkhorn_l(
    ls: tuple[int, ...] = (1, 5, 10, 50, 100),
    presets: tuple[str, ...] = ("dbp15k/zh_en", "srprs/en_fr"),
    regime: str = "R",
    scale: float = 1.0,
    seed: int = 0,
) -> FigureResult:
    """Figure 7: Sinkhorn F1 as a function of the iteration count l."""
    figure = FigureResult(title="Figure 7: Sinkhorn F1 vs l")
    for preset in presets:
        for iterations in ls:
            config = ExperimentConfig(
                preset=preset, input_regime=regime, matchers=("Sink.",),
                matcher_options={"Sink.": {"iterations": iterations}},
                scale=scale, seed=seed,
            )
            result = run_experiment(config)
            figure.add_point(result.task_name, iterations, result.f1("Sink."))
    return figure
