"""Experiment runner: one config in, per-matcher metrics out.

Implements the paper's evaluation protocol (Section 4.2 and Section 5):

1. load the dataset preset and build unified embeddings for the regime;
2. slice the embedding matrices to the test *query* sources and
   *candidate* targets (under the unmatchable setting both sets include
   the grafted entities);
3. run each matcher; matchers exposing ``fit`` (RL) are first trained on
   the seed links;
4. map the matched pairs back to entity ids and score them against the
   gold test links (precision / recall / F1), recording wall-clock time
   and peak declared memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Matcher
from repro.core.registry import create_matcher
from repro.embedding.base import UnifiedEmbeddings
from repro.datasets.zoo import load_preset
from repro.eval.analysis import top_k_std
from repro.eval.metrics import AlignmentMetrics, evaluate_pairs, ranking_diagnostics
from repro.experiments.config import ExperimentConfig
from repro.experiments.regimes import build_embeddings
from repro.kg.pair import AlignmentTask
from repro.similarity.engine import SimilarityEngine


@dataclass(frozen=True)
class MatcherRun:
    """Result of one matcher on one experimental setting."""

    matcher: str
    metrics: AlignmentMetrics
    seconds: float
    peak_bytes: int

    @property
    def f1(self) -> float:
        return self.metrics.f1


@dataclass
class ExperimentResult:
    """All matcher runs of one config, plus score diagnostics."""

    config: ExperimentConfig
    task_name: str
    runs: dict[str, MatcherRun] = field(default_factory=dict)
    #: Mean std of the top-5 raw similarity scores (Figure 4 statistic).
    top5_std: float = 0.0
    #: Hits@k / MRR of the gold links under the raw scores — a property
    #: of the embedding space, the ceiling raw ranking offers matchers.
    ranking: dict[str, float] = field(default_factory=dict)

    def f1(self, matcher: str) -> float:
        return self.runs[matcher].f1

    def improvement_over(self, baseline: str = "DInf") -> dict[str, float]:
        """Relative F1 improvement of each matcher over ``baseline``."""
        base = self.runs[baseline].f1
        if base <= 0:
            return {name: 0.0 for name in self.runs}
        return {name: run.f1 / base - 1.0 for name, run in self.runs.items()}


def run_experiment(
    config: ExperimentConfig,
    task: AlignmentTask | None = None,
    engine: SimilarityEngine | None = None,
) -> ExperimentResult:
    """Execute ``config`` and return the per-matcher results.

    ``task`` may be supplied to reuse a generated dataset across several
    configs (the tables sweep regimes over the same presets).

    ``engine`` may be supplied to control parallelism, compute dtype, and
    caching; by default a serial caching engine is created per call, so
    the base score matrix is computed once and shared by every matcher in
    the sweep instead of being rebuilt per matcher.
    """
    if task is None:
        task = load_preset(config.preset, scale=config.scale)
    embeddings = build_embeddings(
        task, config.input_regime, seed=config.seed, preset_name=config.preset
    )

    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    source_slice = embeddings.source[queries]
    target_slice = embeddings.target[candidates]

    owns_engine = engine is None
    if engine is None:
        engine = SimilarityEngine()
    gold = _gold_local_pairs(task, queries, candidates)
    raw_scores = engine.similarity(source_slice, target_slice, metric=config.metric)

    result = ExperimentResult(
        config=config,
        task_name=task.name,
        top5_std=top_k_std(raw_scores, k=5),
        ranking=ranking_diagnostics(raw_scores, gold),
    )
    try:
        for name in config.matchers:
            matcher = create_matcher(
                name, metric=config.metric, **config.options_for(name)
            )
            matcher.engine = engine
            _maybe_fit(matcher, embeddings, task)
            match = matcher.match(source_slice, target_slice)
            metrics = evaluate_pairs(match.pairs, gold)
            result.runs[name] = MatcherRun(
                matcher=name,
                metrics=metrics,
                seconds=match.seconds,
                peak_bytes=match.peak_bytes,
            )
    finally:
        if owns_engine:
            engine.close()
    return result


def _maybe_fit(matcher: Matcher, embeddings: UnifiedEmbeddings, task: AlignmentTask) -> None:
    """Train matchers that learn from the seed links (the RL matcher)."""
    fit = getattr(matcher, "fit", None)
    if fit is None:
        return
    seed_pairs = task.seed_index_pairs()
    if len(seed_pairs) == 0:
        return
    fit(embeddings.source, embeddings.target, seed_pairs)


def _gold_local_pairs(
    task: AlignmentTask, queries: np.ndarray, candidates: np.ndarray
) -> list[tuple[int, int]]:
    """Gold test links re-indexed into query/candidate row positions."""
    query_pos = {int(entity): pos for pos, entity in enumerate(queries)}
    candidate_pos = {int(entity): pos for pos, entity in enumerate(candidates)}
    gold: list[tuple[int, int]] = []
    for source_id, target_id in task.test_index_pairs():
        try:
            gold.append((query_pos[int(source_id)], candidate_pos[int(target_id)]))
        except KeyError:
            raise ValueError(
                "test link references an entity outside the query/candidate sets; "
                "the task's split is inconsistent"
            )
    return gold
