"""Experiment runner: one config in, per-matcher metrics out.

Implements the paper's evaluation protocol (Section 4.2 and Section 5):

1. load the dataset preset and build unified embeddings for the regime;
2. slice the embedding matrices to the test *query* sources and
   *candidate* targets (under the unmatchable setting both sets include
   the grafted entities);
3. run each matcher; matchers exposing ``fit`` (RL) are first trained on
   the seed links;
4. map the matched pairs back to entity ids and score them against the
   gold test links (precision / recall / F1), recording wall-clock time
   and peak declared memory.

With a :class:`~repro.runtime.supervisor.SupervisorPolicy` (or a
ready-made :class:`~repro.runtime.supervisor.RunSupervisor`) supplied,
every matcher becomes a supervised, bounded unit of work: a failing or
over-budget matcher is retried, degraded down the ladder, or recorded
as a :class:`FailedRun` in :attr:`ExperimentResult.failures` while the
sweep *continues* — one diverging Sinkhorn run no longer aborts a whole
table's worth of accumulated results.  Without a policy the seed
behaviour is unchanged (exceptions propagate immediately).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.base import Matcher
from repro.core.registry import create_matcher
from repro.datasets.zoo import load_preset
from repro.embedding.base import UnifiedEmbeddings
from repro.errors import MatcherError, as_matcher_error
from repro.eval.analysis import top_k_std
from repro.eval.metrics import AlignmentMetrics, evaluate_pairs, ranking_diagnostics
from repro.experiments.config import ExperimentConfig
from repro.experiments.regimes import build_embeddings
from repro.index.candidates import CandidateSet
from repro.index.config import IndexConfig, build_candidates
from repro.kg.pair import AlignmentTask
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.experiments.resume import ResumePolicy, satisfied_cells
from repro.obs.ledger import RunLedger, as_ledger, build_record, config_fingerprint
from repro.obs.profile import build_profile
from repro.runtime.supervisor import RunSupervisor, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine


@dataclass(frozen=True)
class MatcherRun:
    """Result of one matcher on one experimental setting."""

    matcher: str
    metrics: AlignmentMetrics
    seconds: float
    peak_bytes: int
    #: Name of the degradation-ladder matcher that actually produced the
    #: result, or None when the requested matcher ran to completion.
    fallback: str | None = None
    #: Total supervised attempts across the fallback chain (1 = clean).
    attempts: int = 1
    #: Matchers tried in order under supervision (e.g. ``("Hun.",
    #: "Greedy")`` after one ladder hop); empty for unsupervised runs.
    chain: tuple[str, ...] = ()
    #: Process CPU seconds across the cell, measured only when a run
    #: ledger is recording (None otherwise — the clean path stays free).
    cpu_seconds: float | None = None

    @property
    def f1(self) -> float:
        return self.metrics.f1

    @property
    def degraded(self) -> bool:
        return self.fallback is not None


@dataclass(frozen=True)
class FailedRun:
    """Ledger entry for a matcher that failed under supervision."""

    matcher: str
    #: The terminal (or degradation-triggering) typed error.
    error: MatcherError
    #: "skipped" (no result) or "fallback" (a ladder matcher delivered).
    resolution: str
    #: The ladder matcher that delivered a result, if any.
    fallback: str | None = None
    #: Supervised attempts consumed before resolution.
    attempts: int = 1
    #: Matchers tried in order before the run resolved.
    chain: tuple[str, ...] = ()

    @property
    def error_type(self) -> str:
        return type(self.error).__name__

    @property
    def message(self) -> str:
        return str(self.error)

    def describe(self) -> str:
        """One-line ledger rendering for reports and CLI output."""
        line = f"{self.matcher}: {self.error_type}: {self.error}"
        if self.fallback is not None:
            line += f" -> degraded to {self.fallback}"
        return line


@dataclass
class ExperimentResult:
    """All matcher runs of one config, plus score diagnostics."""

    config: ExperimentConfig
    task_name: str
    runs: dict[str, MatcherRun] = field(default_factory=dict)
    #: Failure ledger: requested matcher name -> its supervised failure.
    #: A matcher appears here *and* in ``runs`` when a ladder fallback
    #: delivered its result; only here when it produced nothing.
    failures: dict[str, FailedRun] = field(default_factory=dict)
    #: Mean std of the top-5 raw similarity scores (Figure 4 statistic).
    top5_std: float = 0.0
    #: Hits@k / MRR of the gold links under the raw scores — a property
    #: of the embedding space, the ceiling raw ranking offers matchers.
    ranking: dict[str, float] = field(default_factory=dict)
    #: Per-cell observability profiles (requested matcher name -> the
    #: schema-versioned document of :func:`repro.obs.profile.build_profile`),
    #: populated only when ``run_experiment(..., profile=True)``.
    profiles: dict[str, dict] = field(default_factory=dict)
    #: Cells satisfied by a prior run and skipped on resume: requested
    #: matcher name -> the prior ledger record that satisfied it.  A
    #: skipped cell appears in no other map — its numbers live in the
    #: resume ledger, not in this result.
    skipped: dict[str, dict] = field(default_factory=dict)

    def f1(self, matcher: str) -> float:
        return self.runs[matcher].f1

    def improvement_over(self, baseline: str = "DInf") -> dict[str, float]:
        """Relative F1 improvement of each completed matcher over ``baseline``."""
        base_run = self.runs.get(baseline)
        if base_run is None or base_run.f1 <= 0:
            return {name: 0.0 for name in self.runs}
        return {name: run.f1 / base_run.f1 - 1.0 for name, run in self.runs.items()}


def run_experiment(
    config: ExperimentConfig,
    task: AlignmentTask | None = None,
    engine: SimilarityEngine | None = None,
    *,
    candidates: "CandidateSet | IndexConfig | None" = None,
    policy: SupervisorPolicy | None = None,
    supervisor: RunSupervisor | None = None,
    matcher_factory: Callable[..., Matcher] | None = None,
    profile: bool = False,
    ledger: "RunLedger | Path | str | None" = None,
    resume: "RunLedger | Path | str | None" = None,
    resume_policy: ResumePolicy | None = None,
) -> ExperimentResult:
    """Execute ``config`` and return the per-matcher results.

    ``task`` may be supplied to reuse a generated dataset across several
    configs (the tables sweep regimes over the same presets).

    ``engine`` may be supplied to control parallelism, compute dtype, and
    caching; by default a serial caching engine is created per call, so
    the base score matrix is computed once and shared by every matcher in
    the sweep instead of being rebuilt per matcher.

    ``candidates`` switches the sweep onto the sparse matching path: a
    prebuilt :class:`~repro.index.candidates.CandidateSet`, or an
    :class:`~repro.index.config.IndexConfig` describing how to build one
    (exact streamed top-k or the IVF index) from the sliced embeddings.
    Matchers then run :meth:`~repro.core.base.Matcher.match_candidates`
    — O(n k) for the sparse-aware ones, a counted densify for the rest —
    and the score diagnostics (``top5_std`` / ``ranking``) come from the
    candidate lists, so no dense n x n matrix is ever built for the
    sparse-aware matchers.

    ``policy`` / ``supervisor`` enable the fault-tolerant runtime: each
    matcher runs under deadline, memory budget, retry, and degradation
    per the policy, failures land in :attr:`ExperimentResult.failures`
    and the sweep continues (unless the policy says ``raise``).

    ``matcher_factory`` replaces the registry factory — the hook the
    fault-injection harness (:func:`repro.testing.faulty_factory`) uses;
    production code never needs it.

    ``profile=True`` wraps every matcher cell in a fresh trace recorder
    and scoped metrics registry, attaching one schema-versioned profile
    document per matcher to :attr:`ExperimentResult.profiles` — the
    evidence trail behind the cell's time/memory numbers.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger` or a path)
    appends one durable, provenance-stamped record per matcher cell —
    including failed and degraded cells — as the sweep progresses; see
    :mod:`repro.obs.ledger`.  The sweep also emits live telemetry
    events (:mod:`repro.obs.events`) throughout; with no sink installed
    both features cost a branch per cell.

    ``resume`` (typically the same ledger a killed sweep was appending
    to) turns the run into a *resumed* sweep: cells of this config —
    keyed by config fingerprint + matcher name — whose latest ledger
    status satisfies ``resume_policy`` (default: skip ``ok``, re-run
    ``failed``/``degraded``) are skipped with a ``matcher.skipped``
    event and land in :attr:`ExperimentResult.skipped`; only the
    remaining cells execute (and append to ``ledger``, when given).
    The resume ledger is read tolerantly, so a tail torn by the crash
    does not block recovery.
    """
    run_ledger = as_ledger(ledger)
    resume_ledger = as_ledger(resume)
    obs_events.emit(
        "experiment.start",
        preset=config.preset,
        regime=config.input_regime,
        seed=config.seed,
        scale=config.scale,
        matchers=len(config.matchers),
    )
    if task is None:
        task = load_preset(config.preset, scale=config.scale)
    embeddings = build_embeddings(
        task, config.input_regime, seed=config.seed, preset_name=config.preset
    )

    queries = task.test_query_ids()
    candidate_ids = task.candidate_target_ids()
    source_slice = embeddings.source[queries]
    target_slice = embeddings.target[candidate_ids]

    factory = matcher_factory or create_matcher
    if supervisor is None and policy is not None:
        supervisor = RunSupervisor(policy, matcher_factory=factory)
    owns_engine = engine is None
    if engine is None:
        engine = SimilarityEngine()
    gold = _gold_local_pairs(task, queries, candidate_ids)
    candidate_set: CandidateSet | None = None
    if isinstance(candidates, IndexConfig):
        candidate_set = build_candidates(
            source_slice, target_slice, candidates, engine=engine, metric=config.metric
        )
    elif candidates is not None:
        candidate_set = candidates

    if candidate_set is None:
        raw_scores = engine.similarity(
            source_slice, target_slice, metric=config.metric
        )
        top5_std = top_k_std(raw_scores, k=5)
        ranking = ranking_diagnostics(raw_scores, gold)
    else:
        # Sparse diagnostics: same statistics, computed from the stored
        # candidate entries — the dense matrix is never materialised.
        top5_std = candidate_set.top5_std()
        ranking = candidate_set.ranking_diagnostics(gold)
    obs_events.emit(
        "experiment.scores_ready",
        preset=config.preset,
        regime=config.input_regime,
        top5_std=top5_std,
        hits1=ranking.get("hits@1", 0.0),
        sparse=candidate_set is not None,
    )

    result = ExperimentResult(
        config=config,
        task_name=task.name,
        top5_std=top5_std,
        ranking=ranking,
    )
    need_fingerprint = run_ledger is not None or resume_ledger is not None
    fingerprint = config_fingerprint(config) if need_fingerprint else ""
    satisfied: dict[str, dict] = {}
    if resume_ledger is not None:
        satisfied = satisfied_cells(resume_ledger, fingerprint, resume_policy)
    try:
        for name in config.matchers:
            prior = satisfied.get(name)
            if prior is not None:
                result.skipped[name] = prior
                obs_events.emit(
                    "matcher.skipped",
                    matcher=name,
                    preset=config.preset,
                    regime=config.input_regime,
                    status=prior["status"],
                    run_id=prior["run_id"],
                )
                continue
            matcher = factory(name, metric=config.metric, **config.options_for(name))
            matcher.engine = engine

            def run_cell(matcher: Matcher = matcher, name: str = name) -> None:
                if supervisor is None:
                    _maybe_fit(matcher, embeddings, task)
                    if candidate_set is None:
                        match = matcher.match(source_slice, target_slice)
                    else:
                        match = matcher.match_candidates(candidate_set)
                    result.runs[name] = MatcherRun(
                        matcher=name,
                        metrics=evaluate_pairs(match.pairs, gold),
                        seconds=match.seconds,
                        peak_bytes=match.peak_bytes,
                    )
                    return
                _run_supervised(
                    result, supervisor, matcher, name, source_slice, target_slice,
                    gold, embeddings, task, candidate_set,
                )

            obs_events.emit(
                "matcher.start",
                matcher=name,
                preset=config.preset,
                regime=config.input_regime,
            )
            cpu0 = time.process_time() if run_ledger is not None else 0.0
            if not profile:
                run_cell()
            else:
                with obs_trace.recording() as recorder, obs_metrics.scoped() as registry:
                    run_cell()
                result.profiles[name] = build_profile(
                    recorder,
                    registry,
                    meta={
                        "matcher": name,
                        "preset": config.preset,
                        "regime": config.input_regime,
                        "task": task.name,
                        "seed": config.seed,
                    },
                )
            _emit_cell_finished(result, name)
            if run_ledger is not None:
                _append_cell_record(
                    run_ledger,
                    result,
                    name,
                    fingerprint,
                    cpu_seconds=time.process_time() - cpu0,
                    engine=engine,
                )
    finally:
        if owns_engine:
            engine.close()
    obs_events.emit(
        "experiment.finish",
        preset=config.preset,
        regime=config.input_regime,
        ok=sum(1 for run in result.runs.values() if not run.degraded),
        degraded=sum(1 for run in result.runs.values() if run.degraded),
        failed=sum(1 for f in result.failures.values() if f.resolution == "skipped"),
        skipped=len(result.skipped),
    )
    return result


def _emit_cell_finished(result: ExperimentResult, name: str) -> None:
    """One ``matcher.finish`` telemetry event per completed cell."""
    if not obs_events.enabled():
        return
    run = result.runs.get(name)
    if run is not None:
        obs_events.emit(
            "matcher.finish",
            matcher=name,
            status="degraded" if run.degraded else "ok",
            f1=run.f1,
            seconds=run.seconds,
            fallback=run.fallback,
        )
        return
    failure = result.failures.get(name)
    obs_events.emit(
        "matcher.finish",
        matcher=name,
        status="failed",
        error=failure.error_type if failure is not None else None,
    )


def _append_cell_record(
    ledger: RunLedger,
    result: ExperimentResult,
    name: str,
    fingerprint: str,
    *,
    cpu_seconds: float,
    engine: SimilarityEngine,
) -> None:
    """Durable ledger record for one matcher cell (clean, degraded, or failed)."""
    config = result.config
    common = {
        "fingerprint": fingerprint,
        "preset": config.preset,
        "regime": config.input_regime,
        "task": result.task_name,
        "seed": config.seed,
        "scale": config.scale,
        "metric": config.metric,
        "ranking": result.ranking,
        "top5_std": result.top5_std,
        "engine": engine.cache_info(),
        "resources": engine.resource_info(),
    }
    run = result.runs.get(name)
    failure = result.failures.get(name)
    error = None
    if failure is not None:
        error = {"type": failure.error_type, "message": failure.message}
    if run is not None:
        result.runs[name] = run = replace(run, cpu_seconds=cpu_seconds)
        ledger.append(
            build_record(
                matcher=name,
                status="degraded" if run.degraded else "ok",
                metrics={
                    "precision": run.metrics.precision,
                    "recall": run.metrics.recall,
                    "f1": run.metrics.f1,
                },
                seconds=run.seconds,
                cpu_seconds=cpu_seconds,
                peak_bytes=run.peak_bytes,
                attempts=run.attempts,
                fallback=run.fallback,
                chain=list(run.chain),
                error=error,
                **common,
            )
        )
        return
    if failure is None:  # pragma: no cover - every cell resolves one way
        return
    ledger.append(
        build_record(
            matcher=name,
            status="failed",
            metrics=None,
            cpu_seconds=cpu_seconds,
            attempts=failure.attempts,
            fallback=failure.fallback,
            chain=list(failure.chain),
            error=error,
            **common,
        )
    )


def _run_supervised(
    result: ExperimentResult,
    supervisor: RunSupervisor,
    matcher: Matcher,
    name: str,
    source_slice: np.ndarray,
    target_slice: np.ndarray,
    gold: list[tuple[int, int]],
    embeddings: UnifiedEmbeddings,
    task: AlignmentTask,
    candidate_set: CandidateSet | None = None,
) -> None:
    """One matcher under supervision; records a run, a failure, or both."""
    context = {
        "preset": result.config.preset,
        "regime": result.config.input_regime,
        "task": result.task_name,
    }
    try:
        _maybe_fit(matcher, embeddings, task)
    except Exception as err:  # noqa: BLE001 - typed into the ledger
        error = as_matcher_error(err, matcher=name, stage="fit", **context)
        obs_metrics.get_metrics().inc("runner.fit_failures")
        obs_trace.event("runner.fit_failure", matcher=name, error=type(error).__name__)
        obs_events.emit("runner.fit_failure", matcher=name, error=type(error).__name__)
        if supervisor.policy.on_error == "raise":
            raise error from err
        result.failures[name] = FailedRun(
            matcher=name, error=error, resolution="skipped", attempts=1
        )
        return
    run = supervisor.run(
        matcher,
        source_slice,
        target_slice,
        name=name,
        context=context,
        candidates=candidate_set,
    )
    if run.ok:
        result.runs[name] = MatcherRun(
            matcher=name,
            metrics=evaluate_pairs(run.result.pairs, gold),
            seconds=run.result.seconds,
            peak_bytes=run.result.peak_bytes,
            fallback=run.executed if run.degraded else None,
            attempts=len(run.attempts),
            chain=tuple(run.chain),
        )
        if run.degraded:
            # Never silently: a degraded cell is both a result and a
            # ledger entry naming what broke and who substituted.
            result.failures[name] = FailedRun(
                matcher=name,
                error=run.error,
                resolution="fallback",
                fallback=run.executed,
                attempts=len(run.attempts),
                chain=tuple(run.chain),
            )
    else:
        result.failures[name] = FailedRun(
            matcher=name,
            error=run.error,
            resolution="skipped",
            attempts=len(run.attempts),
            chain=tuple(run.chain),
        )


def _maybe_fit(matcher: Matcher, embeddings: UnifiedEmbeddings, task: AlignmentTask) -> None:
    """Train matchers that learn from the seed links (the RL matcher)."""
    fit = getattr(matcher, "fit", None)
    if fit is None:
        return
    seed_pairs = task.seed_index_pairs()
    if len(seed_pairs) == 0:
        return
    fit(embeddings.source, embeddings.target, seed_pairs)


def _gold_local_pairs(
    task: AlignmentTask, queries: np.ndarray, candidates: np.ndarray
) -> list[tuple[int, int]]:
    """Gold test links re-indexed into query/candidate row positions."""
    query_pos = {int(entity): pos for pos, entity in enumerate(queries)}
    candidate_pos = {int(entity): pos for pos, entity in enumerate(candidates)}
    gold: list[tuple[int, int]] = []
    for source_id, target_id in task.test_index_pairs():
        try:
            gold.append((query_pos[int(source_id)], candidate_pos[int(target_id)]))
        except KeyError as err:
            side = "query" if int(source_id) not in query_pos else "candidate"
            raise ValueError(
                f"test link ({int(source_id)}, {int(target_id)}) references "
                f"entity {err.args[0]} outside the {side} set; "
                "the task's split is inconsistent"
            ) from err
    return gold
