"""Experiment harness: regenerate every table and figure of the paper.

The harness glues the substrates together: named dataset presets
(:mod:`repro.datasets.zoo`), embedding regimes calibrated to the paper's
encoder settings (:mod:`repro.experiments.regimes`), the matching
algorithms (:mod:`repro.core`), and the evaluation protocol of Section
4.2.  ``tables`` and ``figures`` expose one function per paper artifact;
each returns plain rows that the benchmark suite prints and asserts
shape expectations on.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure4_top5_std,
    figure5_efficiency,
    figure6_csls_k,
    figure7_sinkhorn_l,
)
from repro.experiments.persistence import (
    load_embeddings,
    load_result,
    save_embeddings,
    save_result,
)
from repro.experiments.regimes import (
    REGIME_GEOMETRY,
    build_embeddings,
    family_of_preset,
)
from repro.experiments.repeats import AggregateStat, RepeatedResult, run_repeated
from repro.experiments.report import generate_report
from repro.experiments.resume import ResumePolicy, satisfied_cells
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, MatcherRun, run_experiment
from repro.experiments.tables import (
    table3_dataset_statistics,
    table4_structure_only,
    table5_auxiliary_information,
    table6_large_scale,
    table7_unmatchable,
    table8_non_one_to_one,
)
from repro.experiments.tuning import TuningOutcome, suggested_grids, tune_all, tune_matcher

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "MatcherRun",
    "REGIME_GEOMETRY",
    "build_embeddings",
    "family_of_preset",
    "figure4_top5_std",
    "figure5_efficiency",
    "figure6_csls_k",
    "figure7_sinkhorn_l",
    "AggregateStat",
    "RepeatedResult",
    "ResumePolicy",
    "satisfied_cells",
    "format_table",
    "generate_report",
    "run_repeated",
    "load_embeddings",
    "load_result",
    "run_experiment",
    "save_embeddings",
    "save_result",
    "suggested_grids",
    "tune_all",
    "tune_matcher",
    "TuningOutcome",
    "table3_dataset_statistics",
    "table4_structure_only",
    "table5_auxiliary_information",
    "table6_large_scale",
    "table7_unmatchable",
    "table8_non_one_to_one",
]
