"""Multi-seed experiment aggregation.

Single-seed tables can mislead: a 2-point F1 gap may be noise.  This
module repeats an :class:`ExperimentConfig` over several embedding seeds
and aggregates per-matcher F1 into mean +/- std, plus a pairwise
win-rate matrix (how often matcher A beat matcher B across seeds) — the
robustness evidence behind the benchmark suite's ordering assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.datasets.zoo import load_preset
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


@dataclass(frozen=True)
class AggregateStat:
    """Mean/std/min/max of one matcher's F1 across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "AggregateStat":
        array = np.asarray(values, dtype=np.float64)
        return cls(
            mean=float(array.mean()),
            std=float(array.std()),
            minimum=float(array.min()),
            maximum=float(array.max()),
        )


@dataclass
class RepeatedResult:
    """Aggregated outcome of one config across seeds."""

    config: ExperimentConfig
    seeds: tuple[int, ...]
    #: matcher -> per-seed F1 values, seed order preserved.
    f1_by_seed: dict[str, list[float]] = field(default_factory=dict)

    def stat(self, matcher: str) -> AggregateStat:
        return AggregateStat.of(self.f1_by_seed[matcher])

    def win_rate(self, matcher_a: str, matcher_b: str) -> float:
        """Fraction of seeds in which ``matcher_a``'s F1 >= ``matcher_b``'s."""
        a = np.asarray(self.f1_by_seed[matcher_a])
        b = np.asarray(self.f1_by_seed[matcher_b])
        return float((a >= b).mean())

    def consistent_order(self, better: str, worse: str, min_rate: float = 0.8) -> bool:
        """Whether ``better`` beats ``worse`` in at least ``min_rate`` of seeds."""
        return self.win_rate(better, worse) >= min_rate

    def as_rows(self) -> list[dict[str, object]]:
        """Tabular summary: one row per matcher."""
        rows = []
        for matcher, values in self.f1_by_seed.items():
            stat = AggregateStat.of(values)
            rows.append({
                "matcher": matcher,
                "mean F1": stat.mean,
                "std": stat.std,
                "min": stat.minimum,
                "max": stat.maximum,
            })
        return rows


def run_repeated(
    config: ExperimentConfig, seeds: Sequence[int] = (0, 1, 2)
) -> RepeatedResult:
    """Run ``config`` once per seed (embedding noise reseeded; the
    dataset itself is held fixed, matching the paper's protocol of fixed
    benchmarks with retrained encoders)."""
    if not seeds:
        raise ValueError("seeds must be non-empty")
    task = load_preset(config.preset, scale=config.scale)
    result = RepeatedResult(config=config, seeds=tuple(int(s) for s in seeds))
    for seed in seeds:
        seeded = replace(config, seed=int(seed))
        outcome = run_experiment(seeded, task=task)
        for matcher, run in outcome.runs.items():
            result.f1_by_seed.setdefault(matcher, []).append(run.f1)
    return result
