"""Validation-based hyper-parameter tuning for matchers.

The paper tunes matcher hyper-parameters on the validation split ("by
tuning on the validation set, we set l to 100 to reach the balance
between effectiveness and efficiency").  :func:`tune_matcher` reproduces
that workflow for any registered matcher: each candidate configuration
is evaluated on the validation links, and the best (by F1, ties broken
by preferring the earlier — typically cheaper — configuration) is
returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.registry import create_matcher
from repro.embedding.base import UnifiedEmbeddings
from repro.eval.metrics import evaluate_pairs
from repro.kg.pair import AlignmentTask


@dataclass(frozen=True)
class TuningTrial:
    """One evaluated configuration."""

    options: Mapping[str, object]
    f1: float
    seconds: float


@dataclass(frozen=True)
class TuningOutcome:
    """The result of a tuning sweep."""

    best_options: Mapping[str, object]
    best_f1: float
    trials: tuple[TuningTrial, ...]


def tune_matcher(
    matcher_name: str,
    task: AlignmentTask,
    embeddings: UnifiedEmbeddings,
    grid: Sequence[Mapping[str, object]],
    metric: str = "cosine",
) -> TuningOutcome:
    """Grid-search ``matcher_name``'s options on the validation links.

    The validation pool is the validation links' sources vs targets (the
    small matrix the paper tunes on); every configuration in ``grid`` is
    instantiated via the registry and scored by F1.
    """
    if not grid:
        raise ValueError("grid must contain at least one configuration")
    validation = task.validation_index_pairs()
    if len(validation) == 0:
        raise ValueError("task has no validation links to tune on")
    source = embeddings.source[validation[:, 0]]
    target = embeddings.target[validation[:, 1]]
    gold = [(i, i) for i in range(len(validation))]

    trials: list[TuningTrial] = []
    for options in grid:
        matcher = create_matcher(matcher_name, metric=metric, **options)
        fit = getattr(matcher, "fit", None)
        if fit is not None and len(task.seed_index_pairs()):
            fit(embeddings.source, embeddings.target, task.seed_index_pairs())
        result = matcher.match(source, target)
        trials.append(
            TuningTrial(
                options=dict(options),
                f1=evaluate_pairs(result.pairs, gold).f1,
                seconds=result.seconds,
            )
        )

    best = max(enumerate(trials), key=lambda item: (item[1].f1, -item[0]))[1]
    return TuningOutcome(
        best_options=best.options,
        best_f1=best.f1,
        trials=tuple(trials),
    )


def suggested_grids() -> dict[str, list[dict[str, object]]]:
    """The hyper-parameter grids the paper's analysis sweeps.

    CSLS's k (Figure 6), Sinkhorn's l (Figure 7), RInf-pb's block count,
    and the RL matcher's pre-filter margin.
    """
    return {
        "CSLS": [{"k": k} for k in (1, 2, 5, 10)],
        "Sink.": [{"iterations": l} for l in (1, 5, 10, 50, 100)],
        "RInf-pb": [{"num_blocks": b} for b in (2, 4, 8)],
        "RL": [{"confident_margin": m} for m in (0.05, 0.15, 0.3)],
    }


def tune_all(
    task: AlignmentTask,
    embeddings: UnifiedEmbeddings,
    matchers: Sequence[str] | None = None,
) -> dict[str, TuningOutcome]:
    """Run :func:`tune_matcher` over every matcher with a suggested grid."""
    grids = suggested_grids()
    selected = matchers if matchers is not None else list(grids)
    unknown = [name for name in selected if name not in grids]
    if unknown:
        raise ValueError(f"no suggested grid for: {unknown}")
    return {
        name: tune_matcher(name, task, embeddings, grids[name])
        for name in selected
    }
