"""Experiment configuration.

One :class:`ExperimentConfig` describes a single cell family of a paper
table: a dataset preset, an input (embedding) regime, and the matchers to
compare, with optional per-matcher constructor overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.core.registry import PAPER_MATCHERS

#: Input regimes accepted by the runner.  The single-letter regimes use
#: the calibrated oracle geometry (with the real name encoder for N/NR);
#: "gcn"/"rrea" train the real numpy encoders instead.
INPUT_REGIMES = ("R", "G", "N", "NR", "gcn", "rrea")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one experimental setting."""

    preset: str
    input_regime: str = "R"
    matchers: tuple[str, ...] = PAPER_MATCHERS
    matcher_options: Mapping[str, Mapping[str, object]] = field(
        default_factory=lambda: MappingProxyType({})
    )
    scale: float = 1.0
    seed: int = 0
    #: Similarity metric fed to every matcher (paper default: cosine).
    metric: str = "cosine"

    def __post_init__(self) -> None:
        if self.input_regime not in INPUT_REGIMES:
            raise ValueError(
                f"input_regime must be one of {INPUT_REGIMES}, got {self.input_regime!r}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not self.matchers:
            raise ValueError("matchers must be non-empty")
        unknown = set(self.matcher_options) - set(self.matchers)
        if unknown:
            raise ValueError(
                f"matcher_options given for matchers not in this experiment: {sorted(unknown)}"
            )

    def options_for(self, matcher: str) -> dict[str, object]:
        """Constructor overrides for ``matcher`` (empty dict if none)."""
        return dict(self.matcher_options.get(matcher, {}))
