"""Embedding regimes calibrated to the paper's encoder settings.

The paper compares matchers on four input regimes: RREA structural
embeddings (R-), GCN structural embeddings (G-), name embeddings (N-)
and the name+RREA fusion (NR-).  GPU-trained encoders at the original
scale are unavailable offline, so the structural regimes are produced by
the :class:`~repro.embedding.oracle.OracleEncoder` with geometry
parameters calibrated so each regime's DInf baseline and the relative
gains of the advanced matchers land where the paper reports them
(Tables 4-5; calibration documented in DESIGN.md).  The name regimes use
the *real* character-n-gram name encoder.

The calibration captures the paper's mechanics:

* **R-dense** — moderate noise over tightly clustered latents: greedy
  scrambles within semantic clusters, assignment methods recover (+~25%).
* **G-dense** — the same plus heavy *oversmoothing* (a global shared
  direction — the classic failure of shallow GCNs) and dispersed noise:
  a much weaker baseline with even larger relative gains.
* **R-sparse / G-sparse** — sparser KGs break the structure-similarity
  assumption (paper Pattern 2): latents lose cluster crowding and gain
  per-entity noise dispersion, so the advanced matchers' margins shrink.

Within a family, the effective noise is scaled by the task's average
degree, so denser presets (D-F, S-W) come out easier than sparser ones
(D-Z, S-F) — the intra-family variation visible in the paper's tables.
"""

from __future__ import annotations

from dataclasses import replace


from repro.embedding.base import UnifiedEmbeddings
from repro.embedding.fusion import fuse_embeddings
from repro.embedding.gcn import GCNEncoder
from repro.embedding.name_encoder import NameEncoder
from repro.embedding.oracle import OracleConfig, OracleEncoder
from repro.embedding.rrea import RREAEncoder
from repro.kg.pair import AlignmentTask
from repro.kg.stats import dataset_statistics

#: Calibrated oracle geometry per (structural regime, dataset family).
REGIME_GEOMETRY: dict[tuple[str, str], OracleConfig] = {
    ("R", "dense"): OracleConfig(noise=0.45, cluster_size=8, cluster_spread=0.25),
    ("G", "dense"): OracleConfig(
        noise=0.40, cluster_size=5, cluster_spread=0.20,
        smoothing=0.70, noise_dispersion=0.40,
    ),
    ("R", "sparse"): OracleConfig(noise=1.40, cluster_size=1, noise_dispersion=0.20),
    ("G", "sparse"): OracleConfig(
        noise=0.72, cluster_size=4, cluster_spread=0.20,
        smoothing=0.30, noise_dispersion=0.30,
    ),
    # The non-1-to-1 dataset (FB_DBP_MUL): dense-family geometry, but the
    # copies inside a link cluster sit visibly apart (different
    # granularity / noisy duplicates), which is what defeats the
    # 1-to-1-constrained matchers in the paper's Table 8.
    ("R", "multi"): OracleConfig(
        noise=0.40, cluster_size=5, cluster_spread=0.20, duplicate_jitter=0.45,
    ),
    ("G", "multi"): OracleConfig(
        noise=0.40, cluster_size=5, cluster_spread=0.20,
        smoothing=0.70, noise_dispersion=0.40, duplicate_jitter=0.45,
    ),
}

#: Reference average degree per family, used for intra-family scaling.
_REFERENCE_DEGREE = {"dense": 4.5, "sparse": 2.4, "multi": 3.7}

#: Degree-scaling exponent: noise grows as (ref / degree)^alpha.
_DEGREE_ALPHA = 0.5

#: Name-view weight of the NR- fusion.
_FUSION_NAME_WEIGHT = 0.7


def family_of_preset(preset_name: str) -> str:
    """Dataset family of a preset: SRPRS-like presets are "sparse".

    Accepts both zoo keys ("srprs/en_fr") and task display names ("S-F").
    """
    if preset_name.startswith(("srprs", "S-")):
        return "sparse"
    if preset_name.lower().startswith("fb"):
        return "multi"
    return "dense"


def structural_geometry(regime: str, task: AlignmentTask, family: str) -> OracleConfig:
    """The oracle geometry for ``regime`` on ``task``, degree-scaled."""
    try:
        base = REGIME_GEOMETRY[(regime, family)]
    except KeyError:
        known = sorted({key[0] for key in REGIME_GEOMETRY})
        raise ValueError(f"unknown structural regime {regime!r}; known: {known}")
    degree = dataset_statistics(task).average_degree
    reference = _REFERENCE_DEGREE[family]
    scale = (reference / max(degree, 0.5)) ** _DEGREE_ALPHA
    return replace(base, noise=base.noise * scale)


def build_embeddings(
    task: AlignmentTask, input_regime: str, seed: int = 0, preset_name: str | None = None
) -> UnifiedEmbeddings:
    """Produce unified embeddings for ``task`` under ``input_regime``.

    ``preset_name`` decides the dataset family (defaults to the task
    name, which works for all zoo presets).
    """
    family = family_of_preset(preset_name or task.name)
    if input_regime in ("R", "G"):
        geometry = structural_geometry(input_regime, task, family)
        return OracleEncoder(geometry, seed=seed).encode(task)
    if input_regime == "N":
        return NameEncoder().encode(task)
    if input_regime == "NR":
        geometry = structural_geometry("R", task, family)
        structural = OracleEncoder(geometry, seed=seed).encode(task)
        name = NameEncoder().encode(task)
        return fuse_embeddings(structural, name, name_weight=_FUSION_NAME_WEIGHT)
    if input_regime == "gcn":
        return GCNEncoder(seed=seed).encode(task)
    if input_regime == "rrea":
        return RREAEncoder(seed=seed).encode(task)
    raise ValueError(f"unknown input regime {input_regime!r}")
