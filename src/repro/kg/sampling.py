"""Subtask sampling: carve a small, consistent task out of a big one.

Iterating on a 100k-entity alignment problem is slow; practitioners
prototype on a subsample.  Doing that *consistently* is fiddly — the two
KGs must keep corresponding regions, the split must stay valid, and
unmatchable annotations must survive.  :func:`sample_subtask` handles
it: a random set of gold links seeds the sample, both neighbourhoods are
expanded by ``hops`` BFS steps through their own KGs, and everything
(triples, splits, names, unmatchable lists) is restricted to the
retained entities.
"""

from __future__ import annotations

from collections import deque

from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.pair import AlignmentSplit, AlignmentTask
from repro.utils.rng import RandomState, ensure_rng


def sample_subtask(
    task: AlignmentTask,
    num_links: int,
    hops: int = 1,
    seed: RandomState = None,
    name: str | None = None,
) -> AlignmentTask:
    """Sample a consistent sub-task anchored on ``num_links`` gold links.

    The sampled links keep their original split membership, so train/
    validation/test proportions approximately carry over.  Entities
    reachable within ``hops`` of a sampled entity are retained (with all
    triples among retained entities), preserving local structure for the
    encoders.  Gold links whose two endpoints both survive are kept even
    if not sampled directly, so the result never contains half-links.
    """
    if num_links < 1:
        raise ValueError(f"num_links must be >= 1, got {num_links}")
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    rng = ensure_rng(seed)
    all_links = task.split.all_links
    if not all_links:
        raise ValueError("task has no gold links to sample from")
    num_links = min(num_links, len(all_links))
    chosen_idx = rng.choice(len(all_links), size=num_links, replace=False)
    chosen = [all_links[i] for i in chosen_idx]

    source_keep = _expand({src for src, _ in chosen}, task.source, hops)
    target_keep = _expand({tgt for _, tgt in chosen}, task.target, hops)

    source_kg = _restrict(task.source, source_keep, "source")
    target_kg = _restrict(task.target, target_keep, "target")

    def surviving(links):
        return tuple(
            (src, tgt) for src, tgt in links
            if src in source_keep and tgt in target_keep
        )

    split = AlignmentSplit(
        surviving(task.split.train),
        surviving(task.split.validation),
        surviving(task.split.test),
    )
    return AlignmentTask(
        source_kg,
        target_kg,
        split,
        name=name or f"{task.name}-sample{num_links}",
        source_names={e: n for e, n in task.source_names.items() if e in source_keep},
        target_names={e: n for e, n in task.target_names.items() if e in target_keep},
        unmatchable_source=tuple(
            e for e in task.unmatchable_source if e in source_keep
        ),
        unmatchable_target=tuple(
            e for e in task.unmatchable_target if e in target_keep
        ),
    )


def _expand(seeds: set[str], graph: KnowledgeGraph, hops: int) -> set[str]:
    """Entities within ``hops`` BFS steps of ``seeds`` in ``graph``."""
    keep = set(seeds)
    if hops == 0:
        return keep
    # Precompute adjacency once; neighbors() per node would be O(n * m).
    adjacency: dict[int, list[int]] = {}
    for head, _, tail in graph.triple_ids:
        adjacency.setdefault(int(head), []).append(int(tail))
        adjacency.setdefault(int(tail), []).append(int(head))
    frontier = deque(
        (graph.entity_id(entity), 0) for entity in seeds if graph.has_entity(entity)
    )
    seen = {graph.entity_id(e) for e in seeds if graph.has_entity(e)}
    while frontier:
        node, depth = frontier.popleft()
        if depth == hops:
            continue
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
    keep.update(graph.entities[i] for i in seen)
    return keep


def _restrict(graph: KnowledgeGraph, keep: set[str], name: str) -> KnowledgeGraph:
    """The induced sub-KG over ``keep`` (triples with both endpoints kept)."""
    triples = [
        Triple(t.subject, t.predicate, t.object)
        for t in graph.triples()
        if t.subject in keep and t.object in keep
    ]
    entities = [e for e in graph.entities if e in keep]
    return KnowledgeGraph(triples, entities=entities, name=f"{graph.name}-{name}")
