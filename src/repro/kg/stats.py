"""Dataset statistics reproducing Table 3 of the paper.

For each alignment task we report the combined entity/relation/triple
counts of the KG pair, the number of gold links, the average entity
degree, and — for non-1-to-1 datasets — the breakdown of link types.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.kg.pair import AlignmentTask


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 3."""

    name: str
    num_entities: int
    num_relations: int
    num_triples: int
    num_gold_links: int
    average_degree: float
    num_one_to_one_links: int
    num_non_one_to_one_links: int

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "dataset": self.name,
            "#Entities": self.num_entities,
            "#Relations": self.num_relations,
            "#Triples": self.num_triples,
            "#Gold links": self.num_gold_links,
            "Avg. degree": round(self.average_degree, 1),
        }


def dataset_statistics(task: AlignmentTask) -> DatasetStatistics:
    """Compute the Table 3 statistics for an alignment task.

    Counts are summed over both KGs, matching the paper's convention
    (e.g. DBP15K D-Z reports 38,960 entities = both sides combined).
    """
    links = task.split.all_links
    source_counts = Counter(src for src, _ in links)
    target_counts = Counter(tgt for _, tgt in links)
    one_to_one = sum(
        1
        for src, tgt in links
        if source_counts[src] == 1 and target_counts[tgt] == 1
    )
    total_triples = task.source.num_triples + task.target.num_triples
    total_entities = task.source.num_entities + task.target.num_entities
    average_degree = (2.0 * total_triples / total_entities) if total_entities else 0.0
    return DatasetStatistics(
        name=task.name,
        num_entities=total_entities,
        num_relations=task.source.num_relations + task.target.num_relations,
        num_triples=total_triples,
        num_gold_links=len(links),
        average_degree=average_degree,
        num_one_to_one_links=one_to_one,
        num_non_one_to_one_links=len(links) - one_to_one,
    )
