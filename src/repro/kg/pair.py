"""Alignment tasks: a KG pair plus gold links and their splits.

The paper evaluates matchers on pairs of KGs with pre-annotated gold
links, split 20%/10%/70% into train/validation/test (Section 4.2).  The
non-1-to-1 dataset uses an *entity-disjoint* split instead (Section 5.2):
links sharing an entity must land in the same split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import RandomState, ensure_rng

#: A gold link is a (source entity name, target entity name) pair.
Link = tuple[str, str]


@dataclass(frozen=True)
class AlignmentSplit:
    """Train/validation/test partition of the gold links."""

    train: tuple[Link, ...]
    validation: tuple[Link, ...]
    test: tuple[Link, ...]

    @property
    def all_links(self) -> tuple[Link, ...]:
        return self.train + self.validation + self.test

    def __post_init__(self) -> None:
        overlap = (
            (set(self.train) & set(self.validation))
            | (set(self.train) & set(self.test))
            | (set(self.validation) & set(self.test))
        )
        if overlap:
            raise ValueError(f"splits overlap on {len(overlap)} links, e.g. {next(iter(overlap))}")


def split_links(
    links: Sequence[Link],
    train_fraction: float = 0.2,
    validation_fraction: float = 0.1,
    seed: RandomState = None,
    entity_disjoint: bool = False,
) -> AlignmentSplit:
    """Randomly split gold links into train/validation/test.

    With ``entity_disjoint=True``, links are first grouped into connected
    components of the "shares an entity" relation and whole components are
    assigned to splits, preserving the integrity of non-1-to-1 link
    clusters (paper Section 5.2).
    """
    if not 0.0 <= train_fraction <= 1.0:
        raise ValueError(f"train_fraction must be in [0, 1], got {train_fraction}")
    if not 0.0 <= validation_fraction <= 1.0:
        raise ValueError(f"validation_fraction must be in [0, 1], got {validation_fraction}")
    if train_fraction + validation_fraction > 1.0:
        raise ValueError("train_fraction + validation_fraction must not exceed 1")
    rng = ensure_rng(seed)
    links = list(dict.fromkeys(links))  # dedupe, stable order

    if entity_disjoint:
        groups = _link_components(links)
    else:
        groups = [[link] for link in links]

    order = rng.permutation(len(groups))
    total = len(links)
    train: list[Link] = []
    validation: list[Link] = []
    test: list[Link] = []
    for group_idx in order:
        group = groups[group_idx]
        if len(train) < train_fraction * total:
            train.extend(group)
        elif len(validation) < validation_fraction * total:
            validation.extend(group)
        else:
            test.extend(group)
    return AlignmentSplit(tuple(train), tuple(validation), tuple(test))


def _link_components(links: Sequence[Link]) -> list[list[Link]]:
    """Group links into connected components of shared entities.

    Source and target namespaces are kept apart by tagging, so a name that
    happens to occur in both KGs does not spuriously merge components.
    """
    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(node: tuple[str, str]) -> tuple[str, str]:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(a: tuple[str, str], b: tuple[str, str]) -> None:
        parent[find(a)] = find(b)

    for source, target in links:
        union(("s", source), ("t", target))

    components: dict[tuple[str, str], list[Link]] = {}
    for link in links:
        root = find(("s", link[0]))
        components.setdefault(root, []).append(link)
    return list(components.values())


@dataclass
class AlignmentTask:
    """A full EA problem instance: two KGs, gold links, and their split."""

    source: KnowledgeGraph
    target: KnowledgeGraph
    split: AlignmentSplit
    name: str = "task"
    #: Optional entity display names used by the name encoder (N-/NR- runs).
    source_names: dict[str, str] = field(default_factory=dict)
    target_names: dict[str, str] = field(default_factory=dict)
    #: Entities with no counterpart in the other KG (the DBP15K+ setting,
    #: paper Section 5.1).  Unmatchable *source* entities join the test
    #: query set; a matcher that aligns them loses precision.
    unmatchable_source: tuple[str, ...] = ()
    unmatchable_target: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for src, tgt in self.split.all_links:
            if not self.source.has_entity(src):
                raise ValueError(f"gold link references unknown source entity {src!r}")
            if not self.target.has_entity(tgt):
                raise ValueError(f"gold link references unknown target entity {tgt!r}")
        linked_sources = {src for src, _ in self.split.all_links}
        linked_targets = {tgt for _, tgt in self.split.all_links}
        for entity in self.unmatchable_source:
            if not self.source.has_entity(entity):
                raise ValueError(f"unmatchable source entity {entity!r} not in source KG")
            if entity in linked_sources:
                raise ValueError(f"entity {entity!r} is both linked and unmatchable")
        for entity in self.unmatchable_target:
            if not self.target.has_entity(entity):
                raise ValueError(f"unmatchable target entity {entity!r} not in target KG")
            if entity in linked_targets:
                raise ValueError(f"entity {entity!r} is both linked and unmatchable")

    # ------------------------------------------------------------------
    # Convenience accessors used throughout the experiment harness
    # ------------------------------------------------------------------

    @property
    def seed_links(self) -> tuple[Link, ...]:
        """Training links (the "seed pairs" S of the paper)."""
        return self.split.train

    @property
    def test_links(self) -> tuple[Link, ...]:
        return self.split.test

    def seed_index_pairs(self) -> np.ndarray:
        """Seed links as an ``(n, 2)`` array of (source id, target id)."""
        return self._links_to_ids(self.split.train)

    def test_index_pairs(self) -> np.ndarray:
        return self._links_to_ids(self.split.test)

    def validation_index_pairs(self) -> np.ndarray:
        return self._links_to_ids(self.split.validation)

    def _links_to_ids(self, links: Sequence[Link]) -> np.ndarray:
        pairs = [
            (self.source.entity_id(src), self.target.entity_id(tgt)) for src, tgt in links
        ]
        return np.array(pairs, dtype=np.int64).reshape(len(pairs), 2)

    def test_source_ids(self) -> np.ndarray:
        """Unique source-entity ids appearing in the test links."""
        pairs = self.test_index_pairs()
        return np.unique(pairs[:, 0]) if len(pairs) else np.empty(0, dtype=np.int64)

    def test_query_ids(self) -> np.ndarray:
        """Source ids a matcher must answer at test time.

        Test-link sources plus any unmatchable source entities: under the
        DBP15K+ setting a matcher does not know which queries have no
        counterpart, so it is evaluated on all of them.
        """
        ids = set(self.test_source_ids().tolist())
        ids.update(self.source.entity_id(name) for name in self.unmatchable_source)
        return np.array(sorted(ids), dtype=np.int64)

    def candidate_target_ids(self) -> np.ndarray:
        """Target ids eligible as answers: test-link targets plus
        unmatchable target entities (the distractor pool)."""
        pairs = self.test_index_pairs()
        ids = set(pairs[:, 1].tolist()) if len(pairs) else set()
        ids.update(self.target.entity_id(name) for name in self.unmatchable_target)
        return np.array(sorted(ids), dtype=np.int64)

    def display_name(self, side: str, entity: str) -> str:
        """Human-readable name for an entity (falls back to its id string)."""
        if side == "source":
            return self.source_names.get(entity, entity)
        if side == "target":
            return self.target_names.get(entity, entity)
        raise ValueError(f"side must be 'source' or 'target', got {side!r}")

    def __repr__(self) -> str:
        return (
            f"AlignmentTask(name={self.name!r}, source={self.source.num_entities} ents, "
            f"target={self.target.num_entities} ents, links={len(self.split.all_links)})"
        )
