"""OpenEA-compatible text serialization for KGs and alignment tasks.

The public EA libraries the paper builds on (OpenEA, EAkit) exchange
datasets as tab-separated files: ``rel_triples_1``/``rel_triples_2`` with
one triple per line and ``ent_links`` with one gold pair per line.  We
read and write that format so users can move data between this library
and the existing ecosystem.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.pair import AlignmentSplit, AlignmentTask, Link

_TRIPLES_1 = "rel_triples_1"
_TRIPLES_2 = "rel_triples_2"
_ENTITIES_1 = "entities_1"
_ENTITIES_2 = "entities_2"
_SPLIT_FILES = {
    "train": "train_links",
    "validation": "valid_links",
    "test": "test_links",
}


def load_knowledge_graph(
    path: str | Path, name: str = "kg", entities_path: str | Path | None = None
) -> KnowledgeGraph:
    """Load a KG from a tab-separated triples file (one s\\tp\\to per line).

    ``entities_path`` optionally names a one-entity-per-line vocabulary
    file; it preserves isolated entities, which the bare OpenEA triples
    format cannot express.
    """
    triples = []
    path = Path(path)
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
                )
            triples.append(Triple(*parts))
    entities = None
    if entities_path is not None and Path(entities_path).exists():
        with Path(entities_path).open(encoding="utf-8") as handle:
            entities = [line.rstrip("\n") for line in handle if line.rstrip("\n")]
    return KnowledgeGraph(triples, entities=entities, name=name)


def _load_links(path: Path) -> list[Link]:
    links: list[Link] = []
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 2 tab-separated fields, got {len(parts)}"
                )
            links.append((parts[0], parts[1]))
    return links


def load_alignment_task(directory: str | Path, name: str | None = None) -> AlignmentTask:
    """Load a full alignment task from an OpenEA-style directory.

    Expects ``rel_triples_1``, ``rel_triples_2``, ``train_links``,
    ``valid_links`` and ``test_links`` inside ``directory``.
    """
    directory = Path(directory)
    source = load_knowledge_graph(
        directory / _TRIPLES_1, name="source", entities_path=directory / _ENTITIES_1
    )
    target = load_knowledge_graph(
        directory / _TRIPLES_2, name="target", entities_path=directory / _ENTITIES_2
    )
    splits = {
        split_name: tuple(_load_links(directory / filename))
        for split_name, filename in _SPLIT_FILES.items()
    }
    split = AlignmentSplit(splits["train"], splits["validation"], splits["test"])
    return AlignmentTask(source, target, split, name=name or directory.name)


def _write_triples(path: Path, graph: KnowledgeGraph) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for triple in graph.triples():
            handle.write(f"{triple.subject}\t{triple.predicate}\t{triple.object}\n")


def _write_entities(path: Path, graph: KnowledgeGraph) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for entity in graph.entities:
            handle.write(f"{entity}\n")


def _write_links(path: Path, links: Sequence[Link]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for source, target in links:
            handle.write(f"{source}\t{target}\n")


def save_alignment_task(task: AlignmentTask, directory: str | Path) -> Path:
    """Write ``task`` to ``directory`` in the OpenEA layout; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _write_triples(directory / _TRIPLES_1, task.source)
    _write_triples(directory / _TRIPLES_2, task.target)
    _write_entities(directory / _ENTITIES_1, task.source)
    _write_entities(directory / _ENTITIES_2, task.target)
    _write_links(directory / _SPLIT_FILES["train"], task.split.train)
    _write_links(directory / _SPLIT_FILES["validation"], task.split.validation)
    _write_links(directory / _SPLIT_FILES["test"], task.split.test)
    return directory
