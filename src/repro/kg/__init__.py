"""Knowledge-graph substrate.

The paper's experiments operate on KG *pairs* plus gold alignment links
(Section 2.1).  This package provides the data model those experiments
need: a triple store with entity/relation vocabularies
(:class:`KnowledgeGraph`), an alignment task bundling two KGs with
seed/test splits (:class:`AlignmentTask`), OpenEA-compatible text
serialization, and the statistics reported in Table 3.
"""

from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.io import load_alignment_task, load_knowledge_graph, save_alignment_task
from repro.kg.pair import AlignmentSplit, AlignmentTask, split_links
from repro.kg.sampling import sample_subtask
from repro.kg.stats import DatasetStatistics, dataset_statistics

__all__ = [
    "AlignmentSplit",
    "AlignmentTask",
    "DatasetStatistics",
    "KnowledgeGraph",
    "Triple",
    "dataset_statistics",
    "load_alignment_task",
    "load_knowledge_graph",
    "sample_subtask",
    "save_alignment_task",
    "split_links",
]
