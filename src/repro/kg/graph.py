"""The knowledge-graph data model.

A KG is a set of ``(subject, predicate, object)`` triples over entity and
relation vocabularies (paper Section 2.1).  :class:`KnowledgeGraph` stores
the triples in index form, maintains name<->index vocabularies, and exposes
the adjacency structures the embedding encoders need (neighbour lists,
normalized adjacency matrix, degrees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class Triple:
    """A single ``(subject, predicate, object)`` statement by name."""

    subject: str
    predicate: str
    object: str

    def __iter__(self) -> Iterator[str]:
        return iter((self.subject, self.predicate, self.object))


class KnowledgeGraph:
    """An immutable triple store with integer-indexed vocabularies.

    Entities and relations are assigned dense indices in first-seen order,
    so the embedding matrices produced downstream line up row-for-row with
    :attr:`entities`.
    """

    def __init__(
        self,
        triples: Iterable[Triple | tuple[str, str, str]],
        entities: Sequence[str] | None = None,
        relations: Sequence[str] | None = None,
        name: str = "kg",
    ) -> None:
        """Build a KG from triples.

        ``entities``/``relations`` optionally pre-seed the vocabularies
        (needed when a KG legitimately contains isolated entities, e.g.
        after the unmatchable-entity construction).
        """
        self.name = name
        self._entity_index: dict[str, int] = {}
        self._relation_index: dict[str, int] = {}
        if entities is not None:
            for entity in entities:
                self._intern(self._entity_index, entity)
        if relations is not None:
            for relation in relations:
                self._intern(self._relation_index, relation)

        rows: list[tuple[int, int, int]] = []
        seen: set[tuple[int, int, int]] = set()
        for triple in triples:
            subject, predicate, obj = triple
            encoded = (
                self._intern(self._entity_index, subject),
                self._intern(self._relation_index, predicate),
                self._intern(self._entity_index, obj),
            )
            if encoded not in seen:
                seen.add(encoded)
                rows.append(encoded)

        self._triples = np.array(rows, dtype=np.int64).reshape(len(rows), 3)
        self._entities = tuple(self._entity_index)
        self._relations = tuple(self._relation_index)

    @staticmethod
    def _intern(index: dict[str, int], name: str) -> int:
        if name not in index:
            index[name] = len(index)
        return index[name]

    # ------------------------------------------------------------------
    # Vocabulary access
    # ------------------------------------------------------------------

    @property
    def entities(self) -> tuple[str, ...]:
        """Entity names in index order."""
        return self._entities

    @property
    def relations(self) -> tuple[str, ...]:
        """Relation names in index order."""
        return self._relations

    @property
    def num_entities(self) -> int:
        return len(self._entities)

    @property
    def num_relations(self) -> int:
        return len(self._relations)

    @property
    def num_triples(self) -> int:
        return int(self._triples.shape[0])

    def entity_id(self, name: str) -> int:
        """Dense index of entity ``name`` (KeyError if absent)."""
        return self._entity_index[name]

    def relation_id(self, name: str) -> int:
        """Dense index of relation ``name`` (KeyError if absent)."""
        return self._relation_index[name]

    def has_entity(self, name: str) -> bool:
        return name in self._entity_index

    # ------------------------------------------------------------------
    # Triple access
    # ------------------------------------------------------------------

    @property
    def triple_ids(self) -> np.ndarray:
        """``(num_triples, 3)`` int64 array of (head, relation, tail) ids."""
        return self._triples.copy()

    def triples(self) -> Iterator[Triple]:
        """Iterate triples by name."""
        for head, relation, tail in self._triples:
            yield Triple(
                self._entities[head], self._relations[relation], self._entities[tail]
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def degrees(self) -> np.ndarray:
        """Undirected degree (triples incident as head or tail) per entity."""
        deg = np.zeros(self.num_entities, dtype=np.int64)
        if self.num_triples:
            np.add.at(deg, self._triples[:, 0], 1)
            np.add.at(deg, self._triples[:, 2], 1)
        return deg

    def average_degree(self) -> float:
        """Average entity degree, the sparsity measure of Table 3."""
        if self.num_entities == 0:
            return 0.0
        return float(self.degrees().mean())

    def adjacency(self, add_self_loops: bool = True) -> sp.csr_matrix:
        """Symmetric binary adjacency matrix over entities.

        Self-loops are added by default because the GCN propagation rule
        expects them (Kipf & Welling normalisation).
        """
        n = self.num_entities
        if self.num_triples:
            heads = self._triples[:, 0]
            tails = self._triples[:, 2]
            data = np.ones(len(heads), dtype=np.float64)
            adj = sp.coo_matrix((data, (heads, tails)), shape=(n, n))
            adj = adj + adj.T
        else:
            adj = sp.coo_matrix((n, n), dtype=np.float64)
        if add_self_loops:
            adj = adj + sp.eye(n, format="coo")
        adj = adj.tocsr()
        adj.data[:] = 1.0  # collapse duplicate edges to binary
        return adj

    def normalized_adjacency(self) -> sp.csr_matrix:
        """Symmetric-normalised adjacency ``D^-1/2 (A + I) D^-1/2``."""
        adj = self.adjacency(add_self_loops=True)
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
        d_inv = sp.diags(inv_sqrt)
        return (d_inv @ adj @ d_inv).tocsr()

    def neighbors(self, entity: str) -> tuple[str, ...]:
        """Names of entities adjacent to ``entity`` (either direction)."""
        idx = self.entity_id(entity)
        heads = self._triples[self._triples[:, 0] == idx, 2]
        tails = self._triples[self._triples[:, 2] == idx, 0]
        neighbor_ids = sorted(set(heads.tolist()) | set(tails.tolist()))
        return tuple(self._entities[i] for i in neighbor_ids)

    def relation_triples(self) -> dict[str, int]:
        """Triple count per relation name (used by dataset diagnostics)."""
        counts = np.bincount(self._triples[:, 1], minlength=self.num_relations)
        return {name: int(counts[i]) for i, name in enumerate(self._relations)}

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={self.num_triples})"
        )
