"""Seeded load generation and soak testing for the alignment daemon.

``repro serve`` (DESIGN.md §12) answers single queries; this package
answers the question the ROADMAP's north star actually poses — does the
daemon hold up under *sustained, realistic traffic*?  One-shot latency
numbers hide compaction stalls, batching stragglers, and insert-induced
tail spikes; a minutes-long mixed stream surfaces them.  Three layers:

- :mod:`repro.loadgen.spec` — :class:`~repro.loadgen.spec.WorkloadSpec`:
  a JSON-round-trippable description of a traffic mix (Zipfian entity
  popularity, query/insert/delete/explain ratios, open-loop arrivals at
  a target QPS) that expands deterministically into a request stream —
  same seed, same stream, byte for byte.
- :mod:`repro.loadgen.runner` — :class:`~repro.loadgen.runner.SoakRunner`:
  replays a stream against a live daemon open-loop (requests fire on
  their schedule regardless of completions), recording per-request
  latency and outcome through the :mod:`repro.obs.events` sinks.
- :mod:`repro.loadgen.report` — :class:`~repro.loadgen.report.SoakReport`:
  the schema-versioned result (p50/p95/p99/p999, offered vs sustained
  QPS, error/timeout counts, per-phase breakdown, snapshot-version lag)
  that ``benchmarks/check_regression.py``'s latency gate family reads.

:mod:`repro.loadgen.daemon` boots the real ``repro serve`` CLI in a
subprocess so soak runs exercise the full stack — HTTP parsing, the
micro-batcher, snapshot publication — not an in-process shortcut.
"""

from repro.loadgen.daemon import ServeDaemon
from repro.loadgen.report import SoakReport
from repro.loadgen.runner import SoakRunner
from repro.loadgen.spec import Request, WorkloadSpec, stream_fingerprint

__all__ = [
    "Request",
    "ServeDaemon",
    "SoakReport",
    "SoakRunner",
    "WorkloadSpec",
    "stream_fingerprint",
]
