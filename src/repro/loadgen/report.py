"""Schema-versioned soak results: tail percentiles, QPS, and outcomes.

A :class:`SoakReport` is what a soak run is *for*: the distilled
numbers CI gates on and engineers diff across PRs.  It is deliberately
plain data — a dataclass with a canonical JSON rendering written
through the atomic-write protocol — so a report survives exactly as
measured and ``benchmarks/check_regression.py`` can flatten it.

Latency percentiles are computed over **open-loop latency**: completion
time minus *scheduled* arrival, not minus actual send.  A daemon that
falls behind the schedule therefore pays its queueing delay in the tail
instead of quietly stretching the run (the coordinated-omission trap a
closed-loop driver falls into; DESIGN.md §13).  Errors are included in
the latency population — a fast error must not flatter the tail.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.exposition import metric_name, parse_histograms
from repro.obs.histogram import bucket_width_at, quantile_from_cumulative
from repro.storage.durable import atomic_write

#: Bump when the report's JSON layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1

#: The tail points every report carries, in ascending order.
PERCENTILES = ((50, "p50_seconds"), (95, "p95_seconds"),
               (99, "p99_seconds"), (99.9, "p999_seconds"))


#: The daemon-side request-latency histogram, as exposed on /metrics.
SERVER_LATENCY_SERIES = metric_name("serve.request.seconds")


def server_latency_summary(metrics_text: str) -> dict[str, float] | None:
    """Server-side tail latency derived from a ``/metrics`` scrape.

    Reads the ``serve.request.seconds`` histogram out of the exposition
    document and estimates the same percentile points the client-side
    :func:`latency_summary` reports — plus ``bucket_width_p99_seconds``,
    the histogram's resolution at the p99 estimate, which is the honest
    tolerance for comparing the two sides (the CI smoke asserts client
    and server p99 agree within one bucket width).  Returns ``None``
    when the scrape carries no request histogram (e.g. an idle daemon
    that served no traffic).
    """
    series = parse_histograms(metrics_text).get(SERVER_LATENCY_SERIES)
    if series is None or not series["buckets"] or series["count"] == 0:
        return None
    buckets = series["buckets"]
    bounds = [le for le, _ in buckets if le != float("inf")]
    summary = {
        name: quantile_from_cumulative(buckets, q / 100.0)
        for q, name in PERCENTILES
    }
    summary["count"] = float(series["count"])
    summary["sum_seconds"] = float(series["sum"])
    summary["mean_seconds"] = (
        float(series["sum"]) / series["count"] if series["count"] else 0.0
    )
    summary["bucket_width_p99_seconds"] = bucket_width_at(
        bounds, summary["p99_seconds"]
    )
    return summary


def latency_summary(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99/p999 + mean/max over one latency population."""
    if not samples:
        return {name: 0.0 for _, name in PERCENTILES} | {
            "mean_seconds": 0.0, "max_seconds": 0.0,
        }
    values = np.asarray(samples, dtype=np.float64)
    summary = {
        name: float(np.percentile(values, q)) for q, name in PERCENTILES
    }
    summary["mean_seconds"] = float(values.mean())
    summary["max_seconds"] = float(values.max())
    return summary


@dataclass(frozen=True)
class PhaseStats:
    """Outcome + latency breakdown for one request kind."""

    count: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    latency: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SoakReport:
    """The schema-versioned result of one soak run."""

    schema_version: int
    #: The expanded spec that produced the stream (JSON dict form).
    spec: dict[str, object]
    #: blake2b fingerprint of the replayed request stream.
    stream_fingerprint: str
    #: Requests the stream scheduled / the runner completed.
    scheduled: int
    completed: int
    ok: int
    errors: int
    timeouts: int
    #: Rate the schedule asked for vs what actually completed.
    offered_qps: float
    sustained_qps: float
    #: Wall-clock span of the replay (first dispatch -> last completion).
    wall_seconds: float
    #: Open-loop latency over *all* completed requests.
    latency: dict[str, float]
    #: Per-kind breakdown (query / insert / delete / explain).
    phases: dict[str, PhaseStats]
    #: Worst observed staleness: newest insert-acknowledged snapshot
    #: version minus the version a query's response was served from.
    max_version_lag: int
    #: Worst scheduler slip: how late a request was actually sent
    #: relative to its open-loop arrival (load-driver health signal).
    max_dispatch_lag_seconds: float
    #: Server-side accounting from a post-run ``/metrics`` scrape
    #: (:func:`server_latency_summary` plus the daemon's SLO snapshot),
    #: or None when the daemon was not scraped.  Additive in schema
    #: version 1: absent in older documents, defaulting to None.
    server: dict[str, object] | None = None

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | Path) -> Path:
        """Atomically persist the report (crash leaves old bytes or new)."""
        return atomic_write(Path(path), self.to_json())

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "SoakReport":
        version = document.get("schema_version")
        if version != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SoakReport schema_version {version!r} "
                f"(this build reads {REPORT_SCHEMA_VERSION})"
            )
        phases = {
            kind: PhaseStats(**stats)
            for kind, stats in document.get("phases", {}).items()
        }
        fields = {key: value for key, value in document.items() if key != "phases"}
        return cls(phases=phases, **fields)  # type: ignore[arg-type]

    @classmethod
    def load(cls, path: str | Path) -> "SoakReport":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(document, dict):
            raise ValueError(f"{path} does not hold a SoakReport object")
        return cls.from_dict(document)

    # -- human rendering ----------------------------------------------

    def summary_lines(self) -> list[str]:
        """The terminal rendering ``repro soak`` prints."""
        lines = [
            f"requests: {self.completed}/{self.scheduled} completed, "
            f"{self.ok} ok, {self.errors} errors, {self.timeouts} timeouts",
            f"qps: offered {self.offered_qps:.1f}, "
            f"sustained {self.sustained_qps:.1f} "
            f"over {self.wall_seconds:.1f}s",
            "latency: " + "  ".join(
                f"{name[:-8]}={self.latency.get(name, 0.0) * 1e3:.2f}ms"
                for _, name in PERCENTILES
            ),
            f"staleness: max version lag {self.max_version_lag}, "
            f"max dispatch lag {self.max_dispatch_lag_seconds * 1e3:.1f}ms",
        ]
        if self.server:
            latency = self.server.get("latency") or {}
            if latency:
                lines.append(
                    "server:  " + "  ".join(
                        f"{name[:-8]}={latency.get(name, 0.0) * 1e3:.2f}ms"
                        for _, name in PERCENTILES
                    )
                )
        for kind in sorted(self.phases):
            stats = self.phases[kind]
            if stats.count == 0:
                continue
            p99 = stats.latency.get("p99_seconds", 0.0)
            lines.append(
                f"  {kind:<8s} n={stats.count:<6d} ok={stats.ok:<6d} "
                f"err={stats.errors:<4d} p99={p99 * 1e3:.2f}ms"
            )
        return lines
