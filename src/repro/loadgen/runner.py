"""Open-loop soak driver: replay a seeded stream against a live daemon.

The :class:`SoakRunner` takes the stream a
:class:`~repro.loadgen.spec.WorkloadSpec` expanded to and fires each
request at its scheduled arrival offset, from a pool of worker threads,
against the daemon's HTTP surface.  It is **open-loop**: the schedule
never waits for completions, so a daemon that falls behind accrues real
queueing delay in the recorded tail instead of silently throttling the
offered load.  Every request's outcome and open-loop latency is
recorded, streamed through the :mod:`repro.obs.events` sinks
(``soak.start`` / ``soak.request`` / ``soak.finish``), and folded into
a :class:`~repro.loadgen.report.SoakReport`.

Staleness is tracked alongside latency: write acknowledgements carry
the snapshot version they published, queries carry the version they
were served from, and the report's ``max_version_lag`` is the worst
gap a query observed against a write already acknowledged when it was
dispatched — the serving layer's analogue of replication lag.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass

from repro.loadgen.report import (
    REPORT_SCHEMA_VERSION,
    PhaseStats,
    SoakReport,
    latency_summary,
)
from repro.loadgen.spec import KINDS, Request, WorkloadSpec, stream_fingerprint
from repro.obs import events as obs_events


@dataclass(frozen=True)
class _Outcome:
    """One completed request, as the aggregator sees it."""

    kind: str
    status: str  # "ok" | "error" | "timeout"
    latency: float
    dispatch_lag: float
    version_lag: int


class SoakRunner:
    """Replays a request stream open-loop and aggregates the outcomes."""

    def __init__(
        self,
        url: str,
        workers: int = 16,
        request_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.url = url.rstrip("/")
        self.workers = workers
        self.request_timeout = request_timeout
        self._lock = threading.Lock()
        self._max_acked_version = 0
        self._request_ids = itertools.count(1)

    # -- daemon introspection -----------------------------------------

    def probe(self) -> dict:
        """GET /stats — the id-space geometry a spec expands over."""
        with urllib.request.urlopen(
            f"{self.url}/stats", timeout=self.request_timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def scrape_metrics(self) -> str:
        """GET /metrics — the daemon's Prometheus exposition document.

        The raw text is the artifact of record (snapshot it next to the
        soak report); :func:`~repro.loadgen.report.server_latency_summary`
        derives the server-side tail from it.
        """
        with urllib.request.urlopen(
            f"{self.url}/metrics", timeout=self.request_timeout
        ) as response:
            return response.read().decode("utf-8")

    # -- the soak loop -------------------------------------------------

    def run(
        self,
        spec: WorkloadSpec,
        requests: list[Request] | None = None,
    ) -> SoakReport:
        """Replay ``spec`` (or a pre-expanded ``requests`` stream).

        When ``requests`` is None the stream is generated against the
        daemon's *current* geometry (``/stats`` ``ntotal`` and ``dim``),
        so the spec alone fully determines the traffic for a given
        artifact pair.
        """
        if requests is None:
            stats = self.probe()
            requests = spec.generate(int(stats["ntotal"]), int(stats["dim"]))
        fingerprint = stream_fingerprint(requests)
        outcomes: list[_Outcome] = []
        outcome_lock = threading.Lock()
        self._max_acked_version = 0

        obs_events.emit(
            "soak.start",
            requests=len(requests),
            qps=spec.qps,
            seed=spec.seed,
            fingerprint=fingerprint,
        )
        start = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-soak"
        ) as pool:
            futures = []
            for request in requests:
                delay = start + request.arrival - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(self._fire, start, request))
            wait(futures)
        wall = time.perf_counter() - start
        for future in futures:
            outcome = future.result()
            with outcome_lock:
                outcomes.append(outcome)

        report = self._build_report(spec, requests, fingerprint, outcomes, wall)
        obs_events.emit(
            "soak.finish",
            completed=report.completed,
            errors=report.errors,
            timeouts=report.timeouts,
            p99_ms=round(report.latency.get("p99_seconds", 0.0) * 1e3, 3),
            sustained_qps=round(report.sustained_qps, 2),
        )
        return report

    # -- one request ---------------------------------------------------

    def _fire(self, start: float, request: Request) -> _Outcome:
        scheduled = start + request.arrival
        dispatched = time.perf_counter()
        acked_before = self._max_acked_version
        status, version = self._send(request)
        done = time.perf_counter()
        version_lag = 0
        if version is not None:
            if request.kind in ("insert", "delete"):
                with self._lock:
                    if version > self._max_acked_version:
                        self._max_acked_version = version
            elif request.kind == "query":
                version_lag = max(0, acked_before - version)
        outcome = _Outcome(
            kind=request.kind,
            status=status,
            latency=done - scheduled,
            dispatch_lag=max(0.0, dispatched - scheduled),
            version_lag=version_lag,
        )
        obs_events.emit(
            "soak.request",
            kind=request.kind,
            status=status,
            seconds=round(outcome.latency, 6),
        )
        return outcome

    def _send(self, request: Request) -> tuple[str, int | None]:
        """Issue one HTTP call; returns (status, snapshot version|None)."""
        if request.kind == "query":
            http = ("POST", "/query",
                    {"entity_id": request.entity_id, "k": request.k})
        elif request.kind == "insert":
            http = ("POST", "/insert",
                    {"entity_id": request.entity_id,
                     "vector": list(request.vector or ())})
        elif request.kind == "delete":
            http = ("POST", "/delete", {"entity_id": request.entity_id})
        else:
            http = ("GET", f"/entity/{request.entity_id}/explain", None)
        method, path, body = http
        data = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else None
        )
        call = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={
                "Content-Type": "application/json",
                # Tagged ids tie the daemon's access-log lines back to
                # this soak run's requests.
                "X-Request-Id": f"soak-{next(self._request_ids)}",
            },
        )
        try:
            with urllib.request.urlopen(
                call, timeout=self.request_timeout
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            error.read()
            return "error", None
        except TimeoutError:
            return "timeout", None
        except (urllib.error.URLError, OSError) as error:
            reason = getattr(error, "reason", error)
            if isinstance(reason, TimeoutError):
                return "timeout", None
            return "error", None
        version = payload.get("version")
        return "ok", version if isinstance(version, int) else None

    # -- aggregation ---------------------------------------------------

    def _build_report(
        self,
        spec: WorkloadSpec,
        requests: list[Request],
        fingerprint: str,
        outcomes: list[_Outcome],
        wall: float,
    ) -> SoakReport:
        by_kind: dict[str, list[_Outcome]] = {kind: [] for kind in KINDS}
        for outcome in outcomes:
            by_kind[outcome.kind].append(outcome)
        phases = {
            kind: PhaseStats(
                count=len(group),
                ok=sum(1 for o in group if o.status == "ok"),
                errors=sum(1 for o in group if o.status == "error"),
                timeouts=sum(1 for o in group if o.status == "timeout"),
                latency=latency_summary([o.latency for o in group]),
            )
            for kind, group in by_kind.items()
            if group
        }
        completed = len(outcomes)
        return SoakReport(
            schema_version=REPORT_SCHEMA_VERSION,
            spec=spec.to_dict(),
            stream_fingerprint=fingerprint,
            scheduled=len(requests),
            completed=completed,
            ok=sum(1 for o in outcomes if o.status == "ok"),
            errors=sum(1 for o in outcomes if o.status == "error"),
            timeouts=sum(1 for o in outcomes if o.status == "timeout"),
            offered_qps=float(spec.qps),
            sustained_qps=(completed / wall) if wall > 0 else 0.0,
            wall_seconds=wall,
            latency=latency_summary([o.latency for o in outcomes]),
            phases=phases,
            max_version_lag=max(
                (o.version_lag for o in outcomes), default=0
            ),
            max_dispatch_lag_seconds=max(
                (o.dispatch_lag for o in outcomes), default=0.0
            ),
        )
