"""Workload specification and the deterministic request stream it expands to.

A :class:`WorkloadSpec` is the *description* of a traffic pattern — mix
ratios, skew, target QPS, duration, seed — small enough to commit next
to a benchmark and round-trippable through JSON.  :meth:`WorkloadSpec.
generate` expands it into the concrete stream: a list of
:class:`Request` objects with open-loop arrival offsets.  Everything is
drawn from one seeded PCG64 generator, so two expansions of the same
spec over the same id space are identical — :func:`stream_fingerprint`
hashes a canonical serialisation so tests can assert that in one line.

Modelling choices (DESIGN.md §13):

* **Zipfian popularity.**  Read traffic (query/explain) targets base
  entity ``rank`` with probability proportional to ``1/(rank+1)^alpha``
  over a seeded permutation of the id space — real entity-resolution
  traffic is head-heavy, and uniform streams hide hot-list effects.
  ``zipf_alpha = 0`` degenerates to uniform.
* **Open-loop arrivals.**  Inter-arrival gaps are exponential at the
  target QPS (a Poisson process), so bursts happen by construction.
  The runner fires requests on this schedule whether or not earlier
  ones have completed; a daemon that falls behind accumulates genuine
  queueing delay instead of silently throttling the load (the
  closed-loop coordinated-omission trap).
* **Non-conflicting writes.**  Inserts pin explicit entity ids above
  the base id space (``base + i``) and deletes only ever target
  previously-inserted ids, never base entities.  Reads therefore can
  never 404 against a correctly-functioning daemon — every observed
  error is a real serving failure, which is what lets the smoke gate
  demand *zero* errors.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

#: Bump when the spec's JSON layout changes incompatibly.
SPEC_SCHEMA_VERSION = 1

#: Request kinds a stream may contain, in mix-weight order.
KINDS = ("query", "insert", "delete", "explain")


@dataclass(frozen=True)
class Request:
    """One generated request: what to send and when to send it.

    ``arrival`` is the open-loop offset in seconds from stream start.
    ``entity_id`` is the read target (query/explain), the pinned id
    (insert), or the victim (delete).  ``vector`` is only present on
    inserts; queries go by entity id so popularity skew reaches the
    daemon's actual read path.
    """

    arrival: float
    kind: str
    entity_id: int
    k: int = 0
    vector: tuple[float, ...] | None = None

    def canonical(self) -> str:
        """A stable one-line rendering (fingerprint + replay logs)."""
        payload = {
            "arrival": round(self.arrival, 9),
            "kind": self.kind,
            "entity_id": self.entity_id,
            "k": self.k,
            "vector": None if self.vector is None else [
                round(value, 12) for value in self.vector
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stream_fingerprint(requests: Iterable[Request]) -> str:
    """blake2b digest of a stream's canonical serialisation.

    Two streams with equal fingerprints carry identical requests in an
    identical order — the determinism contract the soak smoke asserts.
    """
    digest = hashlib.blake2b(digest_size=16)
    for request in requests:
        digest.update(request.canonical().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class WorkloadSpec:
    """A deterministic traffic mix for one soak run.

    The weights describe the relative frequency of each request kind
    and are normalised at generation time; they need not sum to one.
    """

    #: RNG seed: same seed + same id space => identical stream.
    seed: int = 0
    #: Target offered rate, requests per second (open-loop).
    qps: float = 50.0
    #: Stream length in seconds of scheduled arrivals.
    duration_seconds: float = 10.0
    #: Zipf skew exponent for read popularity (0 = uniform).
    zipf_alpha: float = 1.1
    #: Top-k requested by queries.
    k: int = 5
    query_weight: float = 0.80
    insert_weight: float = 0.10
    delete_weight: float = 0.05
    explain_weight: float = 0.05
    schema_version: int = SPEC_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError(f"qps must be > 0, got {self.qps}")
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be > 0, got {self.duration_seconds}"
            )
        if self.zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        weights = self.weights()
        if any(weight < 0 for weight in weights.values()):
            raise ValueError(f"mix weights must be >= 0, got {weights}")
        if sum(weights.values()) <= 0:
            raise ValueError("at least one mix weight must be positive")
        if self.schema_version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported WorkloadSpec schema_version "
                f"{self.schema_version} (this build reads "
                f"{SPEC_SCHEMA_VERSION})"
            )

    # -- JSON round trip ----------------------------------------------

    def weights(self) -> dict[str, float]:
        """Kind -> raw (un-normalised) mix weight."""
        return {
            "query": self.query_weight,
            "insert": self.insert_weight,
            "delete": self.delete_weight,
            "explain": self.explain_weight,
        }

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "WorkloadSpec":
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(document) - known
        if unknown:
            raise ValueError(
                f"unknown WorkloadSpec fields: {', '.join(sorted(unknown))}"
            )
        return cls(**document)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        document = json.loads(text)
        if not isinstance(document, dict):
            raise ValueError("a WorkloadSpec document must be a JSON object")
        return cls.from_dict(document)

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- stream expansion ---------------------------------------------

    def generate(self, n_entities: int, dim: int) -> list[Request]:
        """Expand into the concrete request stream for one id space.

        ``n_entities`` is the daemon's base id space (ids ``0 ..
        n_entities-1`` must be live at soak start); ``dim`` sizes insert
        vectors.  Deterministic: one seeded generator drives arrivals,
        kinds, targets, and vectors in a fixed draw order.
        """
        if n_entities < 1:
            raise ValueError(f"n_entities must be >= 1, got {n_entities}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        rng = np.random.default_rng(self.seed)

        # Open-loop Poisson arrivals until the duration is exhausted.
        arrivals: list[float] = []
        clock = 0.0
        while True:
            clock += float(rng.exponential(1.0 / self.qps))
            if clock >= self.duration_seconds:
                break
            arrivals.append(clock)
        if not arrivals:
            arrivals.append(float(self.duration_seconds) / 2.0)

        weights = self.weights()
        probabilities = np.array([weights[kind] for kind in KINDS])
        probabilities = probabilities / probabilities.sum()
        kinds = rng.choice(len(KINDS), size=len(arrivals), p=probabilities)

        popularity = self._popularity(rng, n_entities)

        requests: list[Request] = []
        inserted: list[int] = []  # pinned ids, insertion order
        deleted: set[int] = set()
        next_insert_id = n_entities
        for arrival, kind_index in zip(arrivals, kinds):
            kind = KINDS[kind_index]
            if kind == "delete" and not inserted:
                kind = "query"  # nothing soak-owned to delete yet
            if kind in ("query", "explain"):
                rank = int(rng.choice(n_entities, p=popularity))
                requests.append(
                    Request(
                        arrival=arrival,
                        kind=kind,
                        entity_id=rank,
                        k=self.k if kind == "query" else 0,
                    )
                )
            elif kind == "insert":
                vector = rng.normal(size=dim)
                requests.append(
                    Request(
                        arrival=arrival,
                        kind="insert",
                        entity_id=next_insert_id,
                        vector=tuple(float(value) for value in vector),
                    )
                )
                inserted.append(next_insert_id)
                next_insert_id += 1
            else:  # delete: only ids this stream inserted, each once
                candidates = [eid for eid in inserted if eid not in deleted]
                if not candidates:
                    rank = int(rng.choice(n_entities, p=popularity))
                    requests.append(
                        Request(arrival=arrival, kind="query",
                                entity_id=rank, k=self.k)
                    )
                    continue
                victim = candidates[int(rng.integers(len(candidates)))]
                deleted.add(victim)
                requests.append(
                    Request(arrival=arrival, kind="delete", entity_id=victim)
                )
        return requests

    def _popularity(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Zipfian probability over a seeded permutation of the ids.

        The permutation decorrelates popularity from id order, so "hot"
        entities land in arbitrary inverted lists rather than the first
        few — the skew stresses list balance, not a storage prefix.
        """
        ranks = np.arange(1, n + 1, dtype=np.float64) ** (-self.zipf_alpha)
        probabilities = np.empty(n, dtype=np.float64)
        probabilities[rng.permutation(n)] = ranks / ranks.sum()
        return probabilities


@dataclass(frozen=True)
class StreamSummary:
    """Cheap aggregate view of a generated stream (tests, CLI echo)."""

    n_requests: int
    per_kind: dict[str, int] = field(default_factory=dict)
    fingerprint: str = ""

    @classmethod
    def of(cls, requests: list[Request]) -> "StreamSummary":
        per_kind = {kind: 0 for kind in KINDS}
        for request in requests:
            per_kind[request.kind] += 1
        return cls(
            n_requests=len(requests),
            per_kind=per_kind,
            fingerprint=stream_fingerprint(requests),
        )
