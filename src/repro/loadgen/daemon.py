"""Boot and manage one real ``repro serve`` subprocess for a soak run.

Soak results are only trustworthy when the whole stack is in the loop —
HTTP parsing, the micro-batcher's straggler window, snapshot
publication, durable appends — so the runner drives a genuine daemon
process, never an in-process :class:`~repro.serve.state.ServingState`
shortcut.  :class:`ServeDaemon` wraps the subprocess lifecycle: spawn
with the right ``PYTHONPATH``, parse the ``serving on http://host:port``
banner for the (possibly ephemeral) port, SIGTERM + wait on exit.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import TracebackType

import repro

#: Directory that makes ``import repro`` work in the child.
_PACKAGE_ROOT = str(Path(repro.__file__).resolve().parents[1])


class ServeDaemon:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(
        self,
        store: str | Path,
        index: str | Path,
        port: int = 0,
        extra_args: tuple[str, ...] = (),
        boot_timeout: float = 30.0,
    ) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _PACKAGE_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store),
                "--index", str(index),
                "--port", str(port),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.port = self._await_banner(boot_timeout)

    def _await_banner(self, timeout: float) -> int:
        """Block for the boot banner; raise with stderr on failure."""
        assert self.process.stdout is not None
        deadline = time.monotonic() + timeout
        banner = self.process.stdout.readline().strip()
        if "serving on" not in banner or time.monotonic() > deadline:
            stderr = ""
            try:
                _, stderr = self.process.communicate(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
            raise RuntimeError(
                f"repro serve failed to boot: banner {banner!r}; "
                f"stderr: {stderr.strip()}"
            )
        return int(banner.rsplit(":", 1)[1])

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM and reap; returns the exit code (0 = clean)."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            self.process.kill()
            self.process.communicate()
        return self.process.returncode

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.terminate()
