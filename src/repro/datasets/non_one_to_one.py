"""The non-1-to-1 alignment setting (FB_DBP_MUL, paper Section 5.2).

Real alignment links are frequently 1-to-many / many-to-1 / many-to-many —
KGs model the world at different granularities, or contain duplicates.
We reproduce the FB_DBP_MUL construction synthetically: a base graph is
sampled, then selected base entities are *duplicated* on one (or both)
sides, with the duplicate set sharing the original's neighbourhood edges
split among them.  Every (source copy, target copy) pair within a cluster
is a gold link, so a cluster duplicated into ``a`` source and ``b`` target
copies contributes ``a*b`` links.

The evaluation split is entity-disjoint (links sharing an entity stay in
the same split), as required by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.names import corrupt_name, generate_entity_names
from repro.datasets.synthetic import _preferential_edges, _zipf_relations
from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.pair import AlignmentTask, split_links
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class NonOneToOneConfig:
    """Parameters of the FB_DBP_MUL-style generator.

    The fractions select which base entities become non-1-to-1 clusters;
    the remainder stay 1-to-1.  FB_DBP_MUL has ~92% non-1-to-1 links, so
    the preset uses large fractions.
    """

    num_entities: int = 600
    num_relations: int = 15
    average_degree: float = 3.7
    one_to_many_fraction: float = 0.25
    many_to_one_fraction: float = 0.25
    many_to_many_fraction: float = 0.10
    max_duplicates: int = 3
    heterogeneity: float = 0.15
    name_edit_rate: float = 0.15
    train_fraction: float = 0.7
    validation_fraction: float = 0.1
    name: str = "fb_dbp_mul"
    seed: int = 0

    def __post_init__(self) -> None:
        total = (
            self.one_to_many_fraction
            + self.many_to_one_fraction
            + self.many_to_many_fraction
        )
        if total > 1.0:
            raise ValueError(f"cluster fractions sum to {total}, must be <= 1")
        if self.max_duplicates < 2:
            raise ValueError(f"max_duplicates must be >= 2, got {self.max_duplicates}")


def _duplicate_counts(
    config: NonOneToOneConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Per base entity: number of source copies and target copies."""
    n = config.num_entities
    source_copies = np.ones(n, dtype=np.int64)
    target_copies = np.ones(n, dtype=np.int64)
    order = rng.permutation(n)
    n_otm = round(config.one_to_many_fraction * n)
    n_mto = round(config.many_to_one_fraction * n)
    n_mtm = round(config.many_to_many_fraction * n)

    def copies() -> int:
        return int(rng.integers(2, config.max_duplicates + 1))

    cursor = 0
    for idx in order[cursor:cursor + n_otm]:
        target_copies[idx] = copies()
    cursor += n_otm
    for idx in order[cursor:cursor + n_mto]:
        source_copies[idx] = copies()
    cursor += n_mto
    for idx in order[cursor:cursor + n_mtm]:
        source_copies[idx] = copies()
        target_copies[idx] = copies()
    return source_copies, target_copies


def _materialize_side(
    base_edges: list[tuple[int, int]],
    base_relations: np.ndarray,
    copies: np.ndarray,
    entity_prefix: str,
    relation_prefix: str,
    heterogeneity: float,
    num_relations: int,
    rng: np.random.Generator,
    kg_name: str,
) -> tuple[KnowledgeGraph, list[list[str]]]:
    """Build one KG side with duplicated entities.

    Each base entity ``i`` becomes ``copies[i]`` concrete entities; each
    base edge incident to ``i`` is attached to one randomly chosen copy
    (duplicates at different granularity share the neighbourhood but not
    every edge).  A ``heterogeneity`` fraction of edges is dropped, like
    the 1-to-1 generator.
    """
    num_base = len(copies)
    names: list[list[str]] = [
        [f"{entity_prefix}{i}_{c}" for c in range(int(copies[i]))] for i in range(num_base)
    ]
    flat_names = [name for group in names for name in group]

    def pick(base_entity: int) -> str:
        group = names[base_entity]
        return group[int(rng.integers(len(group)))]

    triples: list[Triple] = []
    used: set[str] = set()

    def record(name: str) -> str:
        used.add(name)
        return name

    for (head, tail), relation in zip(base_edges, base_relations):
        if rng.random() < heterogeneity:
            continue
        triples.append(
            Triple(record(pick(head)), f"{relation_prefix}{int(relation)}", record(pick(tail)))
        )
    # Anchor every copy that received no edge (edge drop + random copy
    # selection can leave any copy out), so no entity is isolated.
    for i in range(num_base):
        for copy_name in names[i]:
            if copy_name in used:
                continue
            other = int(rng.integers(num_base))
            if other == i and num_base > 1:
                other = (other + 1) % num_base
            relation = int(rng.integers(num_relations))
            triples.append(
                Triple(record(copy_name), f"{relation_prefix}{relation}", record(pick(other)))
            )

    graph = KnowledgeGraph(
        triples,
        entities=flat_names,
        relations=[f"{relation_prefix}{i}" for i in range(num_relations)],
        name=kg_name,
    )
    return graph, names


def generate_non_one_to_one_task(config: NonOneToOneConfig) -> AlignmentTask:
    """Generate an FB_DBP_MUL-style non-1-to-1 alignment task."""
    (
        graph_rng,
        cluster_rng,
        source_rng,
        target_rng,
        name_rng,
        corrupt_rng,
        split_rng,
    ) = spawn_rngs(config.seed, 7)

    num_edges = max(
        config.num_entities - 1, round(config.num_entities * config.average_degree / 2)
    )
    base_edges = _preferential_edges(config.num_entities, num_edges, graph_rng)
    base_relations = _zipf_relations(len(base_edges), config.num_relations, graph_rng)
    source_copies, target_copies = _duplicate_counts(config, cluster_rng)

    source_kg, source_groups = _materialize_side(
        base_edges, base_relations, source_copies, "s", "r",
        config.heterogeneity, config.num_relations, source_rng, f"{config.name}-source",
    )
    target_kg, target_groups = _materialize_side(
        base_edges, base_relations, target_copies, "t", "q",
        config.heterogeneity, config.num_relations, target_rng, f"{config.name}-target",
    )

    links = [
        (src, tgt)
        for i in range(config.num_entities)
        for src in source_groups[i]
        for tgt in target_groups[i]
    ]

    base_names = generate_entity_names(config.num_entities, seed=name_rng)
    source_names = {
        name: corrupt_name(base_names[i], config.name_edit_rate / 2, corrupt_rng)
        for i in range(config.num_entities)
        for name in source_groups[i]
    }
    target_names = {
        name: corrupt_name(base_names[i], config.name_edit_rate, corrupt_rng)
        for i in range(config.num_entities)
        for name in target_groups[i]
    }

    split = split_links(
        links,
        train_fraction=config.train_fraction,
        validation_fraction=config.validation_fraction,
        seed=split_rng,
        entity_disjoint=True,
    )
    return AlignmentTask(
        source_kg,
        target_kg,
        split,
        name=config.name,
        source_names=source_names,
        target_names=target_names,
    )
