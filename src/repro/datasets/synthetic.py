"""Correlated KG-pair generator.

The core of the dataset substrate.  A *base graph* with a scale-free
degree distribution is sampled first; the source and target KGs are then
two noisy views of it — each view independently drops a fraction of base
triples and adds its own random triples.  The ``heterogeneity`` knob
therefore controls exactly the property the paper's analysis turns on:
how *isomorphic* the neighbourhoods of equivalent entities are
(Section 2.3's fundamental assumption; Figure 1's cases a-c).

Average degree controls sparsity: DBP15K-like presets use ~4-5,
SRPRS-like presets ~2.5 (Table 3), which drives the paper's Pattern 2
(advanced matchers lose their edge on sparse graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.names import corrupt_name, generate_entity_names
from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.pair import AlignmentTask, split_links
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class KGPairConfig:
    """Parameters of a synthetic aligned KG pair.

    ``heterogeneity`` is the per-side triple replacement rate: 0 makes the
    two KGs isomorphic (Figure 1 case a), 0.5 leaves little common
    structure (case c).  ``name_edit_rate`` controls how similar the
    surface names of equivalent entities are (0 = identical, monolingual;
    ~0.4 = heavily corrupted, "multilingual").
    """

    num_entities: int = 500
    num_relations: int = 20
    average_degree: float = 4.0
    heterogeneity: float = 0.15
    name_edit_rate: float = 0.1
    train_fraction: float = 0.2
    validation_fraction: float = 0.1
    name: str = "synthetic"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities < 2:
            raise ValueError(f"num_entities must be >= 2, got {self.num_entities}")
        if self.num_relations < 1:
            raise ValueError(f"num_relations must be >= 1, got {self.num_relations}")
        if self.average_degree <= 0:
            raise ValueError(f"average_degree must be positive, got {self.average_degree}")
        if not 0.0 <= self.heterogeneity <= 1.0:
            raise ValueError(f"heterogeneity must be in [0, 1], got {self.heterogeneity}")


def _preferential_edges(
    num_entities: int, num_edges: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Sample ``num_edges`` distinct undirected edges with scale-free bias.

    Barabasi-Albert-style incremental growth: entities join one at a time
    (in random order) and attach their edges to existing entities drawn
    from a repeated-endpoints pool, so early/high-degree entities keep
    attracting edges.  The result is the heavy-tailed degree profile of
    real KGs (max degree many times the mean); graph connectivity is
    guaranteed because every entity attaches at least one edge on
    arrival.
    """
    max_edges = num_entities * (num_entities - 1) // 2
    num_edges = min(max(num_edges, num_entities - 1), max_edges)
    order = rng.permutation(num_entities)
    edges: set[tuple[int, int]] = set()
    pool: list[int] = [int(order[0])]

    def add_edge(a: int, b: int) -> bool:
        edge = (min(a, b), max(a, b))
        if a == b or edge in edges:
            return False
        edges.add(edge)
        pool.extend(edge)
        return True

    # Growth phase: each arriving entity spends its share of the edge
    # budget on preferential attachments to the existing graph.
    per_node = num_edges / num_entities
    budget = 0.0
    for position in range(1, num_entities):
        node = int(order[position])
        budget += per_node
        attach = max(1, int(budget))
        budget -= attach
        attached = 0
        attempts = 0
        while attached < attach and attempts < 20 * attach + 20:
            attempts += 1
            partner = pool[int(rng.integers(len(pool)))]
            if add_edge(node, partner):
                attached += 1
        if attached == 0:  # dense corner case: fall back to any partner
            add_edge(node, int(order[rng.integers(position)]))

    # Top-up phase: reach the exact edge count with preferential pairs.
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges:
        attempts += 1
        head = pool[int(rng.integers(len(pool)))]
        if rng.random() < 0.8:
            tail = pool[int(rng.integers(len(pool)))]
        else:
            tail = int(rng.integers(num_entities))
        add_edge(head, tail)
    return sorted(edges)


def _zipf_relations(
    num_edges: int, num_relations: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign relations with a Zipfian frequency profile, like real KGs."""
    ranks = np.arange(1, num_relations + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    return rng.choice(num_relations, size=num_edges, p=weights)


def generate_kg(
    num_entities: int,
    num_relations: int,
    average_degree: float,
    seed: RandomState = None,
    entity_prefix: str = "e",
    relation_prefix: str = "r",
    name: str = "kg",
) -> KnowledgeGraph:
    """Generate a standalone scale-free KG (used directly by unit tests
    and as the building block of :func:`generate_aligned_pair`)."""
    rng = ensure_rng(seed)
    num_edges = max(num_entities - 1, round(num_entities * average_degree / 2))
    edges = _preferential_edges(num_entities, num_edges, rng)
    relations = _zipf_relations(len(edges), num_relations, rng)
    triples = [
        Triple(f"{entity_prefix}{h}", f"{relation_prefix}{r}", f"{entity_prefix}{t}")
        for (h, t), r in zip(edges, relations)
    ]
    entities = [f"{entity_prefix}{i}" for i in range(num_entities)]
    relation_names = [f"{relation_prefix}{i}" for i in range(num_relations)]
    return KnowledgeGraph(triples, entities=entities, relations=relation_names, name=name)


def _perturb_view(
    base_edges: list[tuple[int, int]],
    base_relations: np.ndarray,
    num_entities: int,
    heterogeneity: float,
    num_relations: int,
    rng: np.random.Generator,
) -> list[tuple[int, int, int]]:
    """One noisy view of the base graph: drop + replace a triple fraction."""
    kept: list[tuple[int, int, int]] = []
    existing: set[tuple[int, int]] = set()
    dropped = 0
    for (head, tail), relation in zip(base_edges, base_relations):
        if rng.random() < heterogeneity:
            dropped += 1
            continue
        kept.append((head, int(relation), tail))
        existing.add((head, tail))

    # Replace dropped edges with view-specific random ones so both sides
    # keep the configured density.
    added = 0
    attempts = 0
    while added < dropped and attempts < 50 * max(dropped, 1):
        attempts += 1
        head = int(rng.integers(num_entities))
        tail = int(rng.integers(num_entities))
        if head == tail:
            continue
        edge = (min(head, tail), max(head, tail))
        if edge in existing:
            continue
        existing.add(edge)
        relation = int(rng.integers(num_relations))
        kept.append((edge[0], relation, edge[1]))
        added += 1
    return kept


def generate_aligned_pair(config: KGPairConfig) -> AlignmentTask:
    """Generate a full alignment task from ``config``.

    Gold links are 1-to-1 between the two noisy views.  Target entity ids
    are shuffled so index equality carries no alignment signal; display
    names (for the name encoder) are attached via
    :attr:`AlignmentTask.source_names` / ``target_names``.
    """
    (
        graph_rng,
        source_rng,
        target_rng,
        name_rng,
        corrupt_rng,
        split_rng,
        shuffle_rng,
    ) = spawn_rngs(config.seed, 7)

    num_edges = max(
        config.num_entities - 1, round(config.num_entities * config.average_degree / 2)
    )
    base_edges = _preferential_edges(config.num_entities, num_edges, graph_rng)
    base_relations = _zipf_relations(len(base_edges), config.num_relations, graph_rng)

    source_triples = _perturb_view(
        base_edges, base_relations, config.num_entities,
        config.heterogeneity, config.num_relations, source_rng,
    )
    target_triples = _perturb_view(
        base_edges, base_relations, config.num_entities,
        config.heterogeneity, config.num_relations, target_rng,
    )

    # Shuffled target ids: target entity j corresponds to base entity
    # permutation[j]; equivalently base entity i appears as target id
    # inverse_permutation[i].
    permutation = shuffle_rng.permutation(config.num_entities)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(config.num_entities)

    source_entity = [f"s{i}" for i in range(config.num_entities)]
    target_entity = [f"t{j}" for j in range(config.num_entities)]

    source_kg = KnowledgeGraph(
        [
            Triple(source_entity[h], f"r{r}", source_entity[t])
            for h, r, t in source_triples
        ],
        entities=source_entity,
        relations=[f"r{i}" for i in range(config.num_relations)],
        name=f"{config.name}-source",
    )
    target_kg = KnowledgeGraph(
        [
            Triple(target_entity[inverse[h]], f"q{r}", target_entity[inverse[t]])
            for h, r, t in target_triples
        ],
        entities=target_entity,
        relations=[f"q{i}" for i in range(config.num_relations)],
        name=f"{config.name}-target",
    )

    links = [(source_entity[i], target_entity[inverse[i]]) for i in range(config.num_entities)]

    base_names = generate_entity_names(config.num_entities, seed=name_rng)
    source_names = dict(zip(source_entity, base_names))
    target_names = {
        target_entity[inverse[i]]: corrupt_name(base_names[i], config.name_edit_rate, corrupt_rng)
        for i in range(config.num_entities)
    }

    split = split_links(
        links,
        train_fraction=config.train_fraction,
        validation_fraction=config.validation_fraction,
        seed=split_rng,
    )
    return AlignmentTask(
        source_kg,
        target_kg,
        split,
        name=config.name,
        source_names=source_names,
        target_names=target_names,
    )
