"""Synthetic benchmark generators.

The paper evaluates on DBP15K, SRPRS, DWY100K, DBP15K+ and FB_DBP_MUL —
public datasets extracted from DBpedia/Wikidata/YAGO/Freebase.  Those
extractions are not available offline, so this package provides a
parameterized generator (:func:`generate_aligned_pair`) that produces
correlated KG pairs with the properties the paper's analysis turns on:
size, density (average degree), structural heterogeneity between the two
sides, unmatchable-entity rate, and non-1-to-1 link clusters.  Named
presets in :mod:`repro.datasets.zoo` mirror each paper dataset's
statistics at reduced scale (documented in DESIGN.md).
"""

from repro.datasets.names import corrupt_name, generate_entity_names
from repro.datasets.non_one_to_one import NonOneToOneConfig, generate_non_one_to_one_task
from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair, generate_kg
from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities
from repro.datasets.zoo import DATASET_PRESETS, list_presets, load_preset

__all__ = [
    "DATASET_PRESETS",
    "KGPairConfig",
    "NonOneToOneConfig",
    "UnmatchableConfig",
    "add_unmatchable_entities",
    "corrupt_name",
    "generate_aligned_pair",
    "generate_entity_names",
    "generate_kg",
    "generate_non_one_to_one_task",
    "list_presets",
    "load_preset",
]
