"""Named dataset presets mirroring the paper's benchmarks (Table 3).

Each preset reproduces the *relative* properties of one paper dataset —
average degree (density), cross-KG structural heterogeneity, and name
similarity (monolingual vs. multilingual) — at a scale that runs on a
laptop.  Entity counts are roughly 30x smaller than the originals
(DWY100K-like presets 50x); the paper's analysis depends on the relative
properties, not the absolute sizes, and a ``scale`` multiplier lets
benchmarks grow any preset.

Preset families:

* ``dbp15k/*`` — dense multilingual pairs (D-Z, D-J, D-F).  Higher name
  edit rates model the harder languages (Chinese > Japanese > French).
* ``srprs/*``  — sparse pairs following the real-life degree distribution
  (S-F, S-D multilingual; S-W, S-Y monolingual with near-identical names).
* ``dwy100k/*`` — larger monolingual pairs (D-W, D-Y) for the scalability
  experiments (Table 6).
* ``dbp15k_plus/*`` — the unmatchable-entity adaptation (Table 7).
* ``fb_dbp_mul`` — the non-1-to-1 dataset (Table 8).
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.non_one_to_one import NonOneToOneConfig, generate_non_one_to_one_task
from repro.datasets.synthetic import KGPairConfig, generate_aligned_pair
from repro.datasets.unmatchable import UnmatchableConfig, add_unmatchable_entities
from repro.kg.pair import AlignmentTask

#: Baseline entity count per side for DBP15K-like presets.
_DBP_SIZE = 500
_SRPRS_SIZE = 450
_DWY_SIZE = 2000

DATASET_PRESETS: dict[str, KGPairConfig] = {
    # DBP15K-like: dense, multilingual (Table 3: avg degree 4.2-5.6).
    "dbp15k/zh_en": KGPairConfig(
        num_entities=_DBP_SIZE, num_relations=40, average_degree=4.2,
        heterogeneity=0.12, name_edit_rate=0.30, name="D-Z", seed=101,
    ),
    "dbp15k/ja_en": KGPairConfig(
        num_entities=_DBP_SIZE, num_relations=36, average_degree=4.3,
        heterogeneity=0.12, name_edit_rate=0.27, name="D-J", seed=102,
    ),
    "dbp15k/fr_en": KGPairConfig(
        num_entities=_DBP_SIZE, num_relations=32, average_degree=5.6,
        heterogeneity=0.11, name_edit_rate=0.22, name="D-F", seed=103,
    ),
    # SRPRS-like: sparse, real-life degree distribution (avg degree 2.3-2.6).
    "srprs/en_fr": KGPairConfig(
        num_entities=_SRPRS_SIZE, num_relations=16, average_degree=2.3,
        heterogeneity=0.15, name_edit_rate=0.18, name="S-F", seed=201,
    ),
    "srprs/en_de": KGPairConfig(
        num_entities=_SRPRS_SIZE, num_relations=14, average_degree=2.5,
        heterogeneity=0.14, name_edit_rate=0.16, name="S-D", seed=202,
    ),
    "srprs/dbp_wd": KGPairConfig(
        num_entities=_SRPRS_SIZE, num_relations=16, average_degree=2.6,
        heterogeneity=0.15, name_edit_rate=0.05, name="S-W", seed=203,
    ),
    "srprs/dbp_yg": KGPairConfig(
        num_entities=_SRPRS_SIZE, num_relations=12, average_degree=2.3,
        heterogeneity=0.15, name_edit_rate=0.05, name="S-Y", seed=204,
    ),
    # DWY100K-like: larger monolingual pairs for scalability runs.
    "dwy100k/dbp_wd": KGPairConfig(
        num_entities=_DWY_SIZE, num_relations=24, average_degree=4.6,
        heterogeneity=0.12, name_edit_rate=0.05, name="D-W", seed=301,
    ),
    "dwy100k/dbp_yg": KGPairConfig(
        num_entities=_DWY_SIZE, num_relations=16, average_degree=4.7,
        heterogeneity=0.12, name_edit_rate=0.05, name="D-Y", seed=302,
    ),
}

#: Presets grouped the way the paper's tables consume them.
DBP15K_PRESETS = ("dbp15k/zh_en", "dbp15k/ja_en", "dbp15k/fr_en")
SRPRS_PRESETS = ("srprs/en_fr", "srprs/en_de", "srprs/dbp_wd", "srprs/dbp_yg")
DWY100K_PRESETS = ("dwy100k/dbp_wd", "dwy100k/dbp_yg")

_UNMATCHABLE = UnmatchableConfig(unmatchable_fraction=0.4, attachment_degree=3)

_FB_DBP_MUL = NonOneToOneConfig(name="FB_DBP_MUL", seed=401)


def list_presets() -> list[str]:
    """All preset names accepted by :func:`load_preset`."""
    names = list(DATASET_PRESETS)
    names.extend(f"dbp15k_plus/{key.split('/', 1)[1]}" for key in DBP15K_PRESETS)
    names.append("fb_dbp_mul")
    return names


def load_preset(name: str, scale: float = 1.0, seed: int | None = None) -> AlignmentTask:
    """Instantiate a named preset.

    ``scale`` multiplies the entity count (for scalability sweeps);
    ``seed`` overrides the preset's fixed seed (for repeated trials).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if name == "fb_dbp_mul":
        config = _FB_DBP_MUL
        if scale != 1.0:
            config = replace(config, num_entities=max(10, round(config.num_entities * scale)))
        if seed is not None:
            config = replace(config, seed=seed)
        return generate_non_one_to_one_task(config)

    if name.startswith("dbp15k_plus/"):
        base_key = "dbp15k/" + name.split("/", 1)[1]
        base = _scaled(base_key, scale, seed)
        task = generate_aligned_pair(base)
        return add_unmatchable_entities(task, _UNMATCHABLE, seed=base.seed + 7)

    config = _scaled(name, scale, seed)
    return generate_aligned_pair(config)


def _scaled(name: str, scale: float, seed: int | None) -> KGPairConfig:
    try:
        config = DATASET_PRESETS[name]
    except KeyError:
        known = ", ".join(list_presets())
        raise ValueError(f"unknown preset {name!r}; known presets: {known}")
    if scale != 1.0:
        config = replace(config, num_entities=max(10, round(config.num_entities * scale)))
    if seed is not None:
        config = replace(config, seed=seed)
    return config
