"""Synthetic entity names with controllable cross-KG noise.

The paper's N-/NR- settings exploit entity *names*: equivalent entities in
DBP15K/SRPRS share very similar or identical surface forms (Section 4.3).
We reproduce that by generating pronounceable pseudo-names for the source
KG and deriving the target-side name of each equivalent entity by applying
character-level edits at a configurable rate — light noise mimics
monolingual pairs (DBpedia-YAGO), heavy noise mimics multilingual pairs
(English-Chinese).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"
_ALPHABET = _CONSONANTS + _VOWELS


def _random_word(rng: np.random.Generator, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(list(_CONSONANTS)))
        parts.append(rng.choice(list(_VOWELS)))
    return "".join(parts)


def generate_entity_names(
    count: int, seed: RandomState = None, min_syllables: int = 2, max_syllables: int = 4
) -> list[str]:
    """Generate ``count`` distinct pronounceable pseudo-names.

    Collisions are resolved with a numeric suffix so the result is always
    exactly ``count`` unique strings.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if min_syllables < 1 or max_syllables < min_syllables:
        raise ValueError("need 1 <= min_syllables <= max_syllables")
    rng = ensure_rng(seed)
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < count:
        syllables = int(rng.integers(min_syllables, max_syllables + 1))
        word = _random_word(rng, syllables)
        if word in seen:
            word = f"{word}{len(names)}"
        seen.add(word)
        names.append(word)
    return names


def corrupt_name(name: str, edit_rate: float, rng: np.random.Generator) -> str:
    """Apply character-level edits to ``name`` at rate ``edit_rate``.

    Each character independently suffers a substitution, deletion, or
    duplication with probability ``edit_rate``.  ``edit_rate=0`` returns
    the name unchanged (identical cross-KG names, the easy monolingual
    case); rates around 0.3-0.5 leave only partial lexical overlap, the
    hard multilingual case.
    """
    if not 0.0 <= edit_rate <= 1.0:
        raise ValueError(f"edit_rate must be in [0, 1], got {edit_rate}")
    if edit_rate == 0.0 or not name:
        return name
    chars: list[str] = []
    for char in name:
        if rng.random() >= edit_rate:
            chars.append(char)
            continue
        operation = rng.integers(0, 3)
        if operation == 0:  # substitution
            chars.append(str(rng.choice(list(_ALPHABET))))
        elif operation == 1:  # deletion
            continue
        else:  # duplication
            chars.append(char)
            chars.append(char)
    return "".join(chars) or name[0]
