"""The unmatchable-entity setting (DBP15K+, paper Section 5.1).

Real KG pairs contain entities with no counterpart on the other side
(e.g. 99% of YAGO 4 when aligning with IMDB).  Following the DBP15K+
construction of Zeng et al. (DASFAA 2021), we take a 1-to-1 task and
graft extra entities onto each KG; the grafted entities participate in
triples (so they have embeddings and look like ordinary candidates) but
carry no gold link.  Unmatchable *source* entities join the test query
set, so greedy matchers that answer every query lose precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph, Triple
from repro.kg.pair import AlignmentTask
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class UnmatchableConfig:
    """How many unmatchable entities to graft onto each side.

    ``attachment_degree`` is the number of triples connecting each grafted
    entity to the existing KG (so grafted entities are structurally
    embedded, not isolated points).
    """

    unmatchable_fraction: float = 0.4
    #: Fraction for the target side; defaults to half the source fraction so
    #: the two sides end up unequal — which is what makes dummy-node
    #: padding meaningful for Hun./SMat (paper Section 5.1).
    target_fraction: float | None = None
    attachment_degree: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.unmatchable_fraction <= 2.0:
            raise ValueError(
                f"unmatchable_fraction must be in [0, 2], got {self.unmatchable_fraction}"
            )
        if self.target_fraction is not None and not 0.0 <= self.target_fraction <= 2.0:
            raise ValueError(
                f"target_fraction must be in [0, 2], got {self.target_fraction}"
            )
        if self.attachment_degree < 1:
            raise ValueError(f"attachment_degree must be >= 1, got {self.attachment_degree}")

    @property
    def effective_target_fraction(self) -> float:
        """Target-side fraction (defaults to half the source fraction)."""
        if self.target_fraction is None:
            return self.unmatchable_fraction / 2.0
        return self.target_fraction


def _graft_entities(
    graph: KnowledgeGraph,
    count: int,
    prefix: str,
    attachment_degree: int,
    rng: np.random.Generator,
) -> tuple[KnowledgeGraph, tuple[str, ...]]:
    """Return a new KG with ``count`` grafted entities and their names."""
    existing = list(graph.entities)
    relations = list(graph.relations)
    if not relations:
        raise ValueError("cannot graft onto a KG with no relations")
    new_entities = [f"{prefix}{i}" for i in range(count)]
    new_triples = list(graph.triples())
    for entity in new_entities:
        anchors = rng.choice(len(existing), size=min(attachment_degree, len(existing)), replace=False)
        for anchor in anchors:
            relation = relations[int(rng.integers(len(relations)))]
            if rng.random() < 0.5:
                new_triples.append(Triple(entity, relation, existing[int(anchor)]))
            else:
                new_triples.append(Triple(existing[int(anchor)], relation, entity))
    grafted = KnowledgeGraph(
        new_triples,
        entities=existing + new_entities,
        relations=relations,
        name=f"{graph.name}+",
    )
    return grafted, tuple(new_entities)


def add_unmatchable_entities(
    task: AlignmentTask, config: UnmatchableConfig, seed: RandomState = None
) -> AlignmentTask:
    """Adapt a 1-to-1 ``task`` into its unmatchable variant (DBP15K+).

    Both KGs gain ``unmatchable_fraction * num_test_links`` grafted
    entities.  Gold links and their split are unchanged; the grafted
    entities are recorded in ``unmatchable_source`` / ``unmatchable_target``
    so the evaluator can include them in the query/candidate sets.
    """
    rng = ensure_rng(config.seed if seed is None else seed)
    source_rng, target_rng, name_rng = spawn_rngs(rng, 3)
    source_count = round(config.unmatchable_fraction * len(task.split.test))
    target_count = round(config.effective_target_fraction * len(task.split.test))
    source_kg, new_source = _graft_entities(
        task.source, source_count, "u_s", config.attachment_degree, source_rng
    )
    target_kg, new_target = _graft_entities(
        task.target, target_count, "u_t", config.attachment_degree, target_rng
    )

    # Grafted entities get their own display names with no cross-KG twin,
    # so name embeddings cannot rescue them either.
    source_names = dict(task.source_names)
    target_names = dict(task.target_names)
    from repro.datasets.names import generate_entity_names

    fresh = generate_entity_names(source_count + target_count, seed=name_rng)
    source_names.update(zip(new_source, fresh[:source_count]))
    target_names.update(zip(new_target, fresh[source_count:]))

    return AlignmentTask(
        source_kg,
        target_kg,
        task.split,
        name=f"{task.name}+",
        source_names=source_names,
        target_names=target_names,
        unmatchable_source=new_source,
        unmatchable_target=new_target,
    )
