"""EntMatcher reproduction: matching knowledge graphs in entity embedding spaces.

A from-scratch Python reproduction of the system and experimental study
of Zeng et al., "Matching Knowledge Graphs in Entity Embedding Spaces:
An Experimental Study" (ICDE 2024 / TKDE).

The library mirrors the paper's pipeline:

* :mod:`repro.kg` — knowledge-graph data model and alignment tasks;
* :mod:`repro.datasets` — synthetic benchmark generators mirroring
  DBP15K / SRPRS / DWY100K / DBP15K+ / FB_DBP_MUL;
* :mod:`repro.embedding` — representation-learning substrate (GCN, RREA,
  name encoder, fusion, calibrated oracle);
* :mod:`repro.similarity` — pairwise score computation;
* :mod:`repro.core` — the seven embedding-matching algorithms surveyed
  by the paper (the reproduction's subject);
* :mod:`repro.eval` — alignment metrics and score diagnostics;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the evaluation;
* :mod:`repro.baselines` — the deep-learning entity-matching baseline.

Quickstart::

    from repro.datasets import load_preset
    from repro.experiments import build_embeddings
    from repro.core import create_matcher

    task = load_preset("dbp15k/zh_en")
    emb = build_embeddings(task, "R")
    result = create_matcher("CSLS").match(
        emb.source[task.test_query_ids()],
        emb.target[task.candidate_target_ids()],
    )
"""

from repro.core import MatchResult, Matcher, available_matchers, create_matcher
from repro.datasets import list_presets, load_preset
from repro.embedding import UnifiedEmbeddings
from repro.errors import (
    ConvergenceError,
    DataIntegrityError,
    DeadlineExceeded,
    MatcherError,
    ResourceBudgetExceeded,
)
from repro.eval import AlignmentMetrics, evaluate_pairs
from repro.kg import AlignmentTask, KnowledgeGraph
from repro.pipeline import AlignmentPipeline, AlignmentPrediction
from repro.runtime import RunSupervisor, SupervisorPolicy
from repro.similarity import SimilarityEngine

__version__ = "1.0.0"

__all__ = [
    "AlignmentMetrics",
    "AlignmentPipeline",
    "AlignmentPrediction",
    "AlignmentTask",
    "ConvergenceError",
    "DataIntegrityError",
    "DeadlineExceeded",
    "KnowledgeGraph",
    "MatchResult",
    "Matcher",
    "MatcherError",
    "ResourceBudgetExceeded",
    "RunSupervisor",
    "SimilarityEngine",
    "SupervisorPolicy",
    "UnifiedEmbeddings",
    "__version__",
    "available_matchers",
    "create_matcher",
    "evaluate_pairs",
    "list_presets",
    "load_preset",
]
