"""Chunked similarity computation for beyond-memory problem sizes.

The full n x n score matrix is the scalability wall of Table 6.  These
helpers stream over the source rows in chunks, so the peak working set
is ``chunk_size x n_target`` regardless of n_source:

* :func:`chunked_top_k` — each source's top-k candidates and scores
  (the candidate-generation step of every blocking/ANN pipeline);
* :func:`chunked_argmax` — just the greedy decision, O(chunk) memory
  (a DInf that never materialises the matrix);
* :func:`chunked_csls_top_k` — top-k under CSLS rescaling, with the phi
  statistics accumulated in two streaming passes.

All three accept any registered similarity metric and are exact — no
approximation is involved, only scheduling.
"""

from __future__ import annotations

import numpy as np

from repro.similarity.metrics import similarity_matrix
from repro.utils.validation import check_embedding_matrix, check_shape_compatible


def _check_inputs(source: np.ndarray, target: np.ndarray, chunk_size: int):
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return source, target


def chunked_top_k(
    source: np.ndarray,
    target: np.ndarray,
    k: int,
    chunk_size: int = 1024,
    metric: str = "cosine",
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` candidates per source, computed in row chunks.

    Returns ``(indices, scores)`` of shape (n_source, k), both ordered
    best-first.  Peak memory is one ``chunk_size x n_target`` block.
    """
    source, target = _check_inputs(source, target, chunk_size)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_source, n_target = source.shape[0], target.shape[0]
    k = min(k, n_target)
    indices = np.empty((n_source, k), dtype=np.int64)
    scores = np.empty((n_source, k), dtype=np.float64)
    for start in range(0, n_source, chunk_size):
        stop = min(start + chunk_size, n_source)
        block = similarity_matrix(source[start:stop], target, metric=metric)
        part = np.argpartition(block, n_target - k, axis=1)[:, -k:]
        part_scores = np.take_along_axis(block, part, axis=1)
        order = np.argsort(-part_scores, axis=1)
        indices[start:stop] = np.take_along_axis(part, order, axis=1)
        scores[start:stop] = np.take_along_axis(part_scores, order, axis=1)
    return indices, scores


def chunked_argmax(
    source: np.ndarray,
    target: np.ndarray,
    chunk_size: int = 1024,
    metric: str = "cosine",
) -> tuple[np.ndarray, np.ndarray]:
    """The greedy (DInf) decision per source without the full matrix."""
    indices, scores = chunked_top_k(
        source, target, k=1, chunk_size=chunk_size, metric=metric
    )
    return indices[:, 0], scores[:, 0]


def chunked_csls_top_k(
    source: np.ndarray,
    target: np.ndarray,
    k: int,
    csls_k: int = 1,
    chunk_size: int = 1024,
    metric: str = "cosine",
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` candidates under CSLS rescaling, streamed.

    Two passes: the first accumulates each side's top-``csls_k`` mean
    similarity (the phi vectors of Equation 1), the second rescales each
    chunk with the precomputed phis and extracts the top-k.
    """
    source, target = _check_inputs(source, target, chunk_size)
    if k < 1 or csls_k < 1:
        raise ValueError(f"k and csls_k must be >= 1, got {k}, {csls_k}")
    n_source, n_target = source.shape[0], target.shape[0]
    k = min(k, n_target)
    csls_k_eff_t = min(csls_k, n_target)
    csls_k_eff_s = min(csls_k, n_source)

    # Pass 1: phi vectors, streamed over source chunks.  phi_source needs
    # each row's top-csls_k; phi_target needs each column's — accumulated
    # as a running top-csls_k buffer per target.
    phi_source = np.empty(n_source)
    target_top = np.full((n_target, csls_k_eff_s), -np.inf)
    for start in range(0, n_source, chunk_size):
        stop = min(start + chunk_size, n_source)
        block = similarity_matrix(source[start:stop], target, metric=metric)
        row_part = np.partition(block, n_target - csls_k_eff_t, axis=1)[:, -csls_k_eff_t:]
        phi_source[start:stop] = row_part.mean(axis=1)
        # Merge this chunk's columns into the running per-target top list.
        combined = np.concatenate([target_top, block.T], axis=1)
        width = combined.shape[1]
        target_top = np.partition(combined, width - csls_k_eff_s, axis=1)[:, -csls_k_eff_s:]
    phi_target = target_top.mean(axis=1)

    # Pass 2: rescale chunkwise and take the top-k.
    indices = np.empty((n_source, k), dtype=np.int64)
    scores = np.empty((n_source, k), dtype=np.float64)
    for start in range(0, n_source, chunk_size):
        stop = min(start + chunk_size, n_source)
        block = similarity_matrix(source[start:stop], target, metric=metric)
        rescaled = 2.0 * block - phi_source[start:stop, None] - phi_target[None, :]
        part = np.argpartition(rescaled, n_target - k, axis=1)[:, -k:]
        part_scores = np.take_along_axis(rescaled, part, axis=1)
        order = np.argsort(-part_scores, axis=1)
        indices[start:stop] = np.take_along_axis(part, order, axis=1)
        scores[start:stop] = np.take_along_axis(part_scores, order, axis=1)
    return indices, scores
