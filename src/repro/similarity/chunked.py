"""Chunked similarity computation for beyond-memory problem sizes.

The full n x n score matrix is the scalability wall of Table 6.  These
helpers stream over the source rows in chunks, so the peak working set
is ``chunk_size x n_target`` regardless of n_source:

* :func:`chunked_top_k` — each source's top-k candidates and scores
  (the candidate-generation step of every blocking/ANN pipeline);
* :func:`chunked_argmax` — just the greedy decision, O(chunk) memory
  (a DInf that never materialises the matrix);
* :func:`chunked_csls_top_k` — top-k under CSLS rescaling, with the phi
  statistics accumulated in two streaming passes (or one pass plus a
  block replay when the blocks fit in memory — see ``reuse_blocks``).

All three accept any registered similarity metric and are exact — no
approximation is involved, only scheduling.  ``workers`` schedules the
independent row chunks across a thread pool (BLAS releases the GIL);
because chunks are combined in chunk order, results are identical for
any worker count.  ``dtype`` selects the compute precision: float64 is
the validated default, float32 halves memory traffic at ~1e-6 relative
error.
"""

from __future__ import annotations

import numpy as np

from repro.similarity.metrics import prepare_metric
from repro.utils.parallel import map_chunks, row_chunks
from repro.utils.validation import check_embedding_matrix, check_shape_compatible

#: Auto block-reuse ceiling for :func:`chunked_csls_top_k`, in score-matrix
#: elements (2**24 = 128 MiB at float64).  Below this the pass-1 blocks are
#: kept and replayed in pass 2 instead of recomputing every similarity twice.
DEFAULT_REUSE_ELEMS = 2**24


def _check_inputs(
    source: np.ndarray,
    target: np.ndarray,
    chunk_size: int,
    dtype: np.dtype | str | None,
):
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        source = source.astype(dtype, copy=False)
        target = target.astype(dtype, copy=False)
    return source, target


def _best_first_top_k(block: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` per row of ``block``, ordered best-first."""
    n_cols = block.shape[1]
    part = np.argpartition(block, n_cols - k, axis=1)[:, -k:]
    part_scores = np.take_along_axis(block, part, axis=1)
    order = np.argsort(-part_scores, axis=1)
    return (
        np.take_along_axis(part, order, axis=1),
        np.take_along_axis(part_scores, order, axis=1),
    )


def chunked_top_k(
    source: np.ndarray,
    target: np.ndarray,
    k: int,
    chunk_size: int = 1024,
    metric: str = "cosine",
    workers: int | None = 1,
    dtype: np.dtype | str = np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` candidates per source, computed in row chunks.

    Returns ``(indices, scores)`` of shape (n_source, k), both ordered
    best-first.  Peak memory is one ``chunk_size x n_target`` block per
    in-flight worker.
    """
    source, target = _check_inputs(source, target, chunk_size, dtype)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_source, n_target = source.shape[0], target.shape[0]
    k = min(k, n_target)
    kernel = prepare_metric(metric, source, target)
    indices = np.empty((n_source, k), dtype=np.int64)
    scores = np.empty((n_source, k), dtype=source.dtype)

    def work(rows: slice) -> None:
        block = kernel(rows)
        indices[rows], scores[rows] = _best_first_top_k(block, k)

    map_chunks(work, row_chunks(n_source, chunk_size), workers)
    return indices, scores


def chunked_argmax(
    source: np.ndarray,
    target: np.ndarray,
    chunk_size: int = 1024,
    metric: str = "cosine",
    workers: int | None = 1,
    dtype: np.dtype | str = np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """The greedy (DInf) decision per source without the full matrix."""
    indices, scores = chunked_top_k(
        source, target, k=1, chunk_size=chunk_size, metric=metric,
        workers=workers, dtype=dtype,
    )
    return indices[:, 0], scores[:, 0]


def chunked_csls_top_k(
    source: np.ndarray,
    target: np.ndarray,
    k: int,
    csls_k: int = 1,
    chunk_size: int = 1024,
    metric: str = "cosine",
    workers: int | None = 1,
    dtype: np.dtype | str = np.float64,
    reuse_blocks: bool | None = None,
    reuse_elems: int = DEFAULT_REUSE_ELEMS,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` candidates under CSLS rescaling, streamed.

    Pass 1 accumulates each side's top-``csls_k`` mean similarity (the
    phi vectors of Equation 1); pass 2 rescales each chunk with the
    precomputed phis and extracts the top-k.

    ``reuse_blocks`` controls whether the pass-1 similarity blocks are
    held and replayed in pass 2 (halving the similarity work at the cost
    of O(n_source x n_target) memory) or recomputed (true streaming).
    The default ``None`` reuses automatically when the full matrix fits
    within ``reuse_elems`` elements; callers with an engine-level cache
    should pass ``True``, since they have already budgeted for holding S.
    """
    source, target = _check_inputs(source, target, chunk_size, dtype)
    if k < 1 or csls_k < 1:
        raise ValueError(f"k and csls_k must be >= 1, got {k}, {csls_k}")
    n_source, n_target = source.shape[0], target.shape[0]
    k = min(k, n_target)
    csls_k_eff_t = min(csls_k, n_target)
    csls_k_eff_s = min(csls_k, n_source)
    if reuse_blocks is None:
        reuse_blocks = n_source * n_target <= reuse_elems

    kernel = prepare_metric(metric, source, target)
    chunks = row_chunks(n_source, chunk_size)

    # Pass 1: phi vectors.  phi_source needs each row's top-csls_k mean;
    # phi_target needs each column's, gathered as one per-chunk column
    # top-list and merged in chunk order (worker-count independent).
    def pass1(rows: slice):
        block = kernel(rows)
        row_part = np.partition(block, n_target - csls_k_eff_t, axis=1)
        phi_rows = row_part[:, -csls_k_eff_t:].mean(axis=1)
        col_top_k = min(csls_k_eff_s, block.shape[0])
        col_top = np.partition(block.T, block.shape[0] - col_top_k, axis=1)
        col_top = col_top[:, -col_top_k:]
        return phi_rows, col_top, block if reuse_blocks else None

    first_pass = map_chunks(pass1, chunks, workers)
    phi_source = np.concatenate([phi for phi, _, _ in first_pass])
    col_tops = np.concatenate([top for _, top, _ in first_pass], axis=1)
    if col_tops.shape[1] > csls_k_eff_s:
        col_tops = np.partition(
            col_tops, col_tops.shape[1] - csls_k_eff_s, axis=1
        )[:, -csls_k_eff_s:]
    phi_target = col_tops.mean(axis=1)
    saved_blocks = [block for _, _, block in first_pass]
    del first_pass

    # Pass 2: rescale chunkwise and take the top-k, replaying saved
    # blocks when available instead of recomputing each similarity.
    indices = np.empty((n_source, k), dtype=np.int64)
    scores = np.empty((n_source, k), dtype=source.dtype)

    def pass2(item: tuple[int, slice]) -> None:
        position, rows = item
        block = saved_blocks[position]
        if block is None:
            block = kernel(rows)
        rescaled = 2.0 * block - phi_source[rows, None] - phi_target[None, :]
        indices[rows], scores[rows] = _best_first_top_k(rescaled, k)

    map_chunks(pass2, list(enumerate(chunks)), workers)
    return indices, scores
