"""Similarity metrics over entity embedding matrices.

All metrics return an ``(n_source, n_target)`` matrix where larger values
mean "more likely equivalent", matching the paper's convention.  Distances
are negated so downstream code never has to branch on metric direction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.validation import check_embedding_matrix, check_shape_compatible

_EPS = 1e-12


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Cosine similarity matrix between two embedding matrices.

    The paper's default metric (Section 4.2).  Zero vectors are treated as
    having zero similarity to everything rather than raising.
    """
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    source_norm = np.linalg.norm(source, axis=1, keepdims=True)
    target_norm = np.linalg.norm(target, axis=1, keepdims=True)
    normalized_source = source / np.maximum(source_norm, _EPS)
    normalized_target = target / np.maximum(target_norm, _EPS)
    return normalized_source @ normalized_target.T


def euclidean_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negated Euclidean distance matrix (higher means closer)."""
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    # ||u - v||^2 = ||u||^2 + ||v||^2 - 2 u.v, computed without the n^2 x d
    # intermediate that a broadcasted subtraction would need.
    sq_source = np.sum(source**2, axis=1)[:, None]
    sq_target = np.sum(target**2, axis=1)[None, :]
    squared = sq_source + sq_target - 2.0 * (source @ target.T)
    np.maximum(squared, 0.0, out=squared)
    return -np.sqrt(squared)


def manhattan_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negated Manhattan (L1) distance matrix (higher means closer)."""
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    # L1 has no matmul shortcut; chunk the broadcast to bound peak memory.
    n_source = source.shape[0]
    result = np.empty((n_source, target.shape[0]), dtype=np.float64)
    chunk = max(1, 2**22 // max(1, target.shape[0] * source.shape[1]))
    for start in range(0, n_source, chunk):
        stop = min(start + chunk, n_source)
        diffs = np.abs(source[start:stop, None, :] - target[None, :, :])
        result[start:stop] = -diffs.sum(axis=2)
    return result


#: Registry used by :func:`similarity_matrix` and the experiment configs.
SIMILARITY_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cosine": cosine_similarity,
    "euclidean": euclidean_similarity,
    "manhattan": manhattan_similarity,
}


def similarity_matrix(
    source: np.ndarray, target: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Pairwise score matrix ``S`` under the named ``metric``.

    This is the "Derive similarity matrix S based on E" step shared by
    every algorithm description in the paper (Algorithms 3-6).
    """
    try:
        func = SIMILARITY_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_METRICS))
        raise ValueError(f"unknown similarity metric {metric!r}; known metrics: {known}")
    return func(source, target)
