"""Similarity metrics over entity embedding matrices.

All metrics return an ``(n_source, n_target)`` matrix where larger values
mean "more likely equivalent", matching the paper's convention.  Distances
are negated so downstream code never has to branch on metric direction.

Each metric is factored into a *prepared kernel* (:func:`prepare_metric`):
a one-time preparation over the full inputs (row normalisation, squared
norms) plus a function that computes any row block of ``S``.  The public
functions compute the single full-matrix block; the chunked helpers and
the :class:`~repro.similarity.engine.SimilarityEngine` schedule many
blocks, serially or across threads.  Preparation is row-independent, so
a block's values do not depend on how the rows were chunked — except for
the BLAS matmul inside the cosine/euclidean kernels, whose summation
order may vary with the block height (documented on the engine).

Kernels preserve the floating dtype of their inputs: the public API
validates to float64 (exactly the historical behaviour), while the
engine may feed float32 views to halve memory bandwidth.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.parallel import DEFAULT_CHUNK_ELEMS, rows_per_chunk
from repro.utils.validation import check_embedding_matrix, check_shape_compatible

_EPS = 1e-12

#: A prepared kernel: maps a source-row slice to that block of ``S``.
BlockKernel = Callable[[slice], np.ndarray]


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm; zero rows are left at zero."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, _EPS)


def _prepare_cosine(source: np.ndarray, target: np.ndarray) -> BlockKernel:
    normalized_source = _normalize_rows(source)
    normalized_target_t = _normalize_rows(target).T

    def block(rows: slice) -> np.ndarray:
        return normalized_source[rows] @ normalized_target_t

    return block


def _prepare_euclidean(source: np.ndarray, target: np.ndarray) -> BlockKernel:
    # ||u - v||^2 = ||u||^2 + ||v||^2 - 2 u.v, computed without the n^2 x d
    # intermediate that a broadcasted subtraction would need.
    sq_source = np.sum(source**2, axis=1)
    sq_target = np.sum(target**2, axis=1)

    def block(rows: slice) -> np.ndarray:
        squared = sq_source[rows, None] + sq_target[None, :]
        squared -= 2.0 * (source[rows] @ target.T)
        np.maximum(squared, 0.0, out=squared)
        np.sqrt(squared, out=squared)
        np.negative(squared, out=squared)
        return squared

    return block


def _prepare_manhattan(
    source: np.ndarray, target: np.ndarray, chunk_elems: int
) -> BlockKernel:
    n_target, dim = target.shape[0], target.shape[1]
    # L1 has no matmul shortcut; bound the (rows x n_target x dim)
    # broadcast intermediate to ~chunk_elems elements per inner step.
    inner_rows = rows_per_chunk(n_target * dim, chunk_elems)

    def block(rows: slice) -> np.ndarray:
        sub = source[rows]
        result = np.empty((sub.shape[0], n_target), dtype=sub.dtype)
        for start in range(0, sub.shape[0], inner_rows):
            stop = min(start + inner_rows, sub.shape[0])
            diffs = np.abs(sub[start:stop, None, :] - target[None, :, :])
            result[start:stop] = -diffs.sum(axis=2)
        return result

    return block


def prepare_metric(
    metric: str,
    source: np.ndarray,
    target: np.ndarray,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
) -> BlockKernel:
    """One-time preparation of ``metric`` over validated inputs.

    Returns a kernel computing any source-row block of ``S``.  Inputs
    must already be validated and dtype-cast by the caller — this is the
    engine-facing seam below the public API.  ``chunk_elems`` bounds the
    broadcast intermediate of metrics without a matmul form (Manhattan).
    """
    if metric == "cosine":
        return _prepare_cosine(source, target)
    if metric == "euclidean":
        return _prepare_euclidean(source, target)
    if metric == "manhattan":
        return _prepare_manhattan(source, target, chunk_elems)
    known = ", ".join(sorted(SIMILARITY_METRICS))
    raise ValueError(f"unknown similarity metric {metric!r}; known metrics: {known}")


def _full(metric: str, source: np.ndarray, target: np.ndarray, **kwargs) -> np.ndarray:
    source = check_embedding_matrix(source, "source")
    target = check_embedding_matrix(target, "target")
    check_shape_compatible(source, target)
    kernel = prepare_metric(metric, source, target, **kwargs)
    return kernel(slice(0, source.shape[0]))


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Cosine similarity matrix between two embedding matrices.

    The paper's default metric (Section 4.2).  Zero vectors are treated as
    having zero similarity to everything rather than raising.
    """
    return _full("cosine", source, target)


def euclidean_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negated Euclidean distance matrix (higher means closer)."""
    return _full("euclidean", source, target)


def manhattan_similarity(
    source: np.ndarray,
    target: np.ndarray,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
) -> np.ndarray:
    """Negated Manhattan (L1) distance matrix (higher means closer).

    ``chunk_elems`` bounds the broadcasted ``rows x n_target x dim``
    difference tensor to roughly that many elements (the same budget the
    similarity engine uses for its chunk-size policy), trading peak
    memory against per-chunk overhead.
    """
    return _full("manhattan", source, target, chunk_elems=chunk_elems)


def rowwise_scores(
    metric: str, query: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Scores of one ``query`` vector against ``targets`` rows, *pair-stable*.

    Every output value is a pure function of ``(query, targets[j])``
    alone: the kernels use elementwise multiply/subtract plus a per-row
    reduction, never a BLAS matmul — so the score of a pair does not
    change with how many other queries were batched alongside or which
    other targets happen to share the call.  This is the determinism
    foundation of the serving layer (DESIGN.md §12): batched requests,
    single requests, inverted-list scans, and a from-scratch index
    rebuild all produce bitwise-identical scores for the same pair.

    The BLAS kernels in :func:`prepare_metric` do *not* have this
    property (summation order varies with the block shape), which is why
    the serving path cannot reuse them for its equality contracts.
    ``query`` is a 1-D vector; ``targets`` is ``(n, dim)``.  Matches the
    sign convention of the full-matrix metrics (larger = closer).
    """
    query = np.asarray(query, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {query.shape}")
    if targets.ndim != 2 or targets.shape[1] != query.shape[0]:
        raise ValueError(
            f"targets must be (n, {query.shape[0]}), got shape {targets.shape}"
        )
    if metric == "cosine":
        q = query / max(float(np.linalg.norm(query)), _EPS)
        norms = np.maximum(np.linalg.norm(targets, axis=1, keepdims=True), _EPS)
        return ((targets / norms) * q).sum(axis=1)
    if metric == "euclidean":
        squared = ((targets - query) ** 2).sum(axis=1)
        return -np.sqrt(np.maximum(squared, 0.0))
    if metric == "manhattan":
        return -np.abs(targets - query).sum(axis=1)
    known = ", ".join(sorted(SIMILARITY_METRICS))
    raise ValueError(f"unknown similarity metric {metric!r}; known metrics: {known}")


#: Registry used by :func:`similarity_matrix` and the experiment configs.
SIMILARITY_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cosine": cosine_similarity,
    "euclidean": euclidean_similarity,
    "manhattan": manhattan_similarity,
}


def similarity_matrix(
    source: np.ndarray, target: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Pairwise score matrix ``S`` under the named ``metric``.

    This is the "Derive similarity matrix S based on E" step shared by
    every algorithm description in the paper (Algorithms 3-6).
    """
    try:
        func = SIMILARITY_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_METRICS))
        raise ValueError(f"unknown similarity metric {metric!r}; known metrics: {known}")
    return func(source, target)
