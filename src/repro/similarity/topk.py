"""Top-k utilities over pairwise score matrices.

CSLS needs the mean of each entity's top-k neighbour scores (Equation 1),
and the Figure 4 analysis needs the standard deviation of each source
entity's top-5 scores.  Both are served by the partial-sort helpers here,
which avoid a full O(n lg n) sort per row.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_score_matrix


def _check_k(k: int, width: int) -> int:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return min(k, width)


def top_k_values(scores: np.ndarray, k: int, axis: int = 1) -> np.ndarray:
    """The ``k`` largest scores along ``axis``, sorted descending.

    If ``k`` exceeds the axis length, all values are returned (so callers
    can pass a nominal k without clamping themselves).
    """
    scores = check_score_matrix(scores)
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    working = scores if axis == 1 else scores.T
    k = _check_k(k, working.shape[1])
    # argpartition gives the top-k unordered; a final sort of just k items
    # per row orders them.
    part = np.partition(working, working.shape[1] - k, axis=1)[:, -k:]
    part.sort(axis=1)
    return part[:, ::-1]


def top_k_indices(scores: np.ndarray, k: int, axis: int = 1) -> np.ndarray:
    """Indices of the ``k`` largest scores along ``axis``, best first."""
    scores = check_score_matrix(scores)
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    working = scores if axis == 1 else scores.T
    k = _check_k(k, working.shape[1])
    part = np.argpartition(working, working.shape[1] - k, axis=1)[:, -k:]
    row_values = np.take_along_axis(working, part, axis=1)
    order = np.argsort(-row_values, axis=1)
    return np.take_along_axis(part, order, axis=1)


def top_k_mean(scores: np.ndarray, k: int, axis: int = 1) -> np.ndarray:
    """Mean of the top-``k`` scores along ``axis`` (the CSLS phi vector)."""
    return top_k_values(scores, k, axis=axis).mean(axis=1)


def top1_indices(scores: np.ndarray, axis: int = 1) -> np.ndarray:
    """Index of the single largest score along ``axis``.

    The top-1 special case skips the argpartition machinery — one argmax
    pass — and pins the tie rule (lowest index wins) that the best-suitor
    bucketing in :mod:`repro.core.blocking` relies on for reproducible
    block assignments.
    """
    scores = check_score_matrix(scores)
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return scores.argmax(axis=axis)
