"""Pairwise similarity between entity embedding matrices.

This package implements the first half of the embedding-matching stage:
turning two embedding matrices into the pairwise score matrix ``S`` that
every matching algorithm in :mod:`repro.core` consumes (Section 2.2 of
the paper).  Cosine similarity is the paper's default; Euclidean and
Manhattan distances are converted to similarities so that "higher is
better" holds uniformly (paper footnote 3).
"""

from repro.similarity.chunked import chunked_argmax, chunked_csls_top_k, chunked_top_k
from repro.similarity.engine import EngineStats, SimilarityEngine, fingerprint
from repro.similarity.metrics import (
    SIMILARITY_METRICS,
    cosine_similarity,
    euclidean_similarity,
    manhattan_similarity,
    prepare_metric,
    similarity_matrix,
)
from repro.similarity.sharded import (
    PROCESS_MIN_ELEMS,
    process_sharded_similarity,
    score_shard,
)
from repro.similarity.topk import top_k_indices, top_k_mean, top_k_values

__all__ = [
    "PROCESS_MIN_ELEMS",
    "SIMILARITY_METRICS",
    "EngineStats",
    "SimilarityEngine",
    "chunked_argmax",
    "chunked_csls_top_k",
    "chunked_top_k",
    "cosine_similarity",
    "euclidean_similarity",
    "fingerprint",
    "manhattan_similarity",
    "prepare_metric",
    "process_sharded_similarity",
    "score_shard",
    "similarity_matrix",
    "top_k_indices",
    "top_k_mean",
    "top_k_values",
]
