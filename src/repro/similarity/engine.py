"""Parallel similarity engine with cross-matcher score-matrix caching.

Every matcher in the paper (Algorithms 3-6) starts from the same "Derive
similarity matrix S based on E" step, and the experiment harness sweeps
seven matchers over the *same* unified embeddings — so the seed code
computed the identical n x n matrix seven times, single-threaded.  The
:class:`SimilarityEngine` closes both gaps:

* **Parallelism** — the score matrix is computed as independent
  source-row blocks (:func:`~repro.similarity.metrics.prepare_metric`)
  scheduled across a thread pool.  numpy/BLAS kernels release the GIL,
  so threads scale on the cosine/euclidean matmul hot path without
  process-spawn or pickling overhead.
* **Precision** — ``dtype="float32"`` computes and stores S in float32,
  halving memory bandwidth and footprint on the n x n working set at
  ~1e-6 relative error (scores only feed rankings, which are far less
  precise than that).
* **Caching** — computed matrices are kept in a fingerprint-keyed LRU
  cache.  The key is ``(source digest, target digest, metric, dtype)``
  where the digests hash the embedding bytes and shape, so a sweep of
  all seven matchers over shared embeddings computes S exactly once and
  serves six cache hits.

Determinism contract: the chunk grid is a function of the problem shape
and the chunk policy (``chunk_rows`` / ``chunk_elems``) only, and blocks
are written to disjoint output rows — so results are bitwise-identical
across worker counts.  With the default policy, small problems fall into
a single chunk and the output is bitwise-identical to the serial
:func:`~repro.similarity.metrics.similarity_matrix`; once a float64
problem spans multiple chunks, cosine/euclidean values may differ from
the serial path in the last bits (BLAS summation order varies with block
height) while Manhattan stays exact.

Cached matrices are returned with ``writeable=False`` — every consumer
of the cache shares one physical matrix, so an accidental in-place
transform would poison every later hit.  Callers that need to mutate S
must copy it (no matcher in :mod:`repro.core` does).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from repro.errors import WorkerCrashedError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.similarity.chunked import chunked_csls_top_k, chunked_top_k
from repro.similarity.metrics import prepare_metric, rowwise_scores
from repro.similarity.sharded import (
    PROCESS_MIN_ELEMS,
    process_sharded_similarity,
    score_shard,
)
from repro.similarity.topk import top_k_indices
from repro.utils.parallel import (
    DEFAULT_CHUNK_ELEMS,
    map_chunks,
    plan_shards,
    resolve_workers,
    row_chunks,
    rows_per_chunk,
)
from repro.utils.validation import check_embedding_matrix, check_shape_compatible

#: Cache key: (source digest, target digest, metric, dtype name).
CacheKey = tuple[str, str, str, str]


@dataclass
class EngineStats:
    """Counters for the engine's cache behaviour and work done.

    ``computations`` counts full score-matrix computations (the expensive
    O(n^2 d) kernels); a sweep that shares one matrix across m matchers
    shows ``computations == 1`` and ``hits == m - 1``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    computations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "computations": self.computations,
        }


@dataclass
class _CacheEntry:
    matrix: np.ndarray = field(repr=False)
    nbytes: int = 0


def fingerprint(array: np.ndarray) -> str:
    """Content digest of an embedding matrix (bytes + shape + dtype).

    blake2b over the raw buffer: O(n d) against the O(n^2 d) similarity
    computation it guards, so hashing is never the bottleneck.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str((array.shape, array.dtype.str)).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


class SimilarityEngine:
    """Schedules, caches, and precision-tunes score-matrix computation.

    Parameters
    ----------
    workers:
        Threads for row-chunked kernels.  ``1`` (default) is fully
        serial; ``None`` or ``0`` uses all cores.
    dtype:
        Compute/storage precision of S: ``float64`` (default, exact
        match with the serial path) or ``float32`` (half the bandwidth).
    cache:
        Whether to keep computed matrices for reuse across matchers.
    cache_size:
        Maximum number of cached matrices (LRU eviction).
    chunk_elems:
        Per-chunk working-set budget in elements; the chunk-size policy
        shared with :func:`~repro.similarity.metrics.manhattan_similarity`.
    chunk_rows:
        Explicit rows-per-chunk override; ``None`` derives it from
        ``chunk_elems``.  Part of the determinism contract — results
        depend on the grid, never on ``workers``.
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        runs shard workers over shared memory; it engages only when
        ``workers > 1``, the problem exceeds ``process_threshold``
        output elements, and the plan has more than one shard —
        otherwise threads run the identical shard grid.  Scores are
        bitwise-identical either way.
    memory_budget:
        Per-shard working-set budget in bytes.  Setting it switches
        ``similarity`` onto the 2-D shard grid of
        :func:`~repro.utils.parallel.plan_shards`.
    shard_cols:
        Explicit columns-per-shard override for the 2-D grid (also
        activates it).  Like ``chunk_rows``, part of the grid policy —
        never worker-dependent.
    """

    def __init__(
        self,
        workers: int | None = 1,
        dtype: np.dtype | str = np.float64,
        cache: bool = True,
        cache_size: int = 4,
        chunk_elems: int = DEFAULT_CHUNK_ELEMS,
        chunk_rows: int | None = None,
        backend: str = "thread",
        memory_budget: int | None = None,
        shard_cols: int | None = None,
        process_threshold: int = PROCESS_MIN_ELEMS,
        mp_context: str = "spawn",
    ) -> None:
        self.workers = resolve_workers(workers)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError(f"memory_budget must be >= 1 byte, got {memory_budget}")
        if shard_cols is not None and shard_cols < 1:
            raise ValueError(f"shard_cols must be >= 1, got {shard_cols}")
        self.cache_enabled = bool(cache)
        self.cache_size = cache_size
        self.chunk_elems = chunk_elems
        self.chunk_rows = chunk_rows
        self.backend = backend
        self.memory_budget = memory_budget
        self.shard_cols = shard_cols
        self.process_threshold = process_threshold
        self.mp_context = mp_context
        self.stats = EngineStats()
        self._cache: OrderedDict[CacheKey, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._last_compute: dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pools and drop cached matrices."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        self.clear_cache()

    def __enter__(self) -> "SimilarityEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _executor(self) -> ThreadPoolExecutor | None:
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="simeng"
            )
        return self._pool

    def _process_executor(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            # Spawn, not fork: forking a process whose BLAS has started
            # threads can deadlock the child inside the kernel.
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=get_context(self.mp_context)
            )
        return self._process_pool

    def _discard_process_pool(self) -> None:
        """Drop a (possibly broken) process pool, reaping its workers.

        Pools are only discarded after a worker crash, so survivors are
        abandoned mid-task: kill them first so the blocking shutdown
        returns promptly and no executor management thread outlives the
        engine — a thread left behind by a fire-and-forget shutdown can
        deadlock interpreter exit.
        """
        pool = self._process_pool
        if pool is None:
            return
        self._process_pool = None
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            if process.is_alive():
                process.kill()
        pool.shutdown(wait=True, cancel_futures=True)

    def degrade_to_threads(self) -> None:
        """Flip the engine to the thread backend (worker-crash containment).

        Called by the supervisor's process -> thread rung after a
        :class:`~repro.errors.WorkerCrashedError`: the thread backend
        runs the identical shard grid with bitwise-identical scores and
        has no child processes to lose.  The broken process pool is
        discarded.
        """
        self._discard_process_pool()
        self.backend = "thread"

    # -- cache ---------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached matrix (counters are kept)."""
        with self._lock:
            self._cache.clear()

    def cache_info(self) -> dict[str, object]:
        """Snapshot of cache occupancy and counters (for tests/reports)."""
        with self._lock:
            entries = len(self._cache)
            nbytes = sum(entry.nbytes for entry in self._cache.values())
        info: dict[str, object] = {"entries": entries, "nbytes": nbytes}
        info.update(self.stats.as_dict())
        return info

    def _cache_key(
        self, source: np.ndarray, target: np.ndarray, metric: str
    ) -> CacheKey:
        return (fingerprint(source), fingerprint(target), metric, self.dtype.name)

    # -- the hot path --------------------------------------------------

    def similarity(
        self, source: np.ndarray, target: np.ndarray, metric: str = "cosine"
    ) -> np.ndarray:
        """Pairwise score matrix ``S``, parallel and (maybe) cached.

        Drop-in for :func:`~repro.similarity.metrics.similarity_matrix`.
        Cache hits return the shared matrix marked read-only; misses (and
        cache-off engines) return a freshly computed matrix.
        """
        source = check_embedding_matrix(source, "source")
        target = check_embedding_matrix(target, "target")
        check_shape_compatible(source, target)
        key: CacheKey | None = None
        if self.cache_enabled:
            key = self._cache_key(source, target, metric)
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    self.stats.hits += 1
                    obs_metrics.get_metrics().inc("engine.cache.hits")
                    obs_trace.event(
                        "engine.cache.hit", metric=metric, nbytes=entry.nbytes
                    )
                    return entry.matrix
            self.stats.misses += 1
            obs_metrics.get_metrics().inc("engine.cache.misses")
            obs_trace.event("engine.cache.miss", metric=metric)
        scores = self._compute(source, target, metric)
        if key is not None:
            scores.setflags(write=False)
            with self._lock:
                self._cache[key] = _CacheEntry(matrix=scores, nbytes=scores.nbytes)
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.stats.evictions += 1
                    obs_metrics.get_metrics().inc("engine.cache.evictions")
        return scores

    @property
    def _sharded(self) -> bool:
        """Whether ``similarity`` runs on the 2-D shard grid."""
        return (
            self.backend == "process"
            or self.memory_budget is not None
            or self.shard_cols is not None
        )

    def _compute(
        self, source: np.ndarray, target: np.ndarray, metric: str
    ) -> np.ndarray:
        source = source.astype(self.dtype, copy=False)
        target = target.astype(self.dtype, copy=False)
        n_source, n_target = source.shape[0], target.shape[0]
        with obs_trace.span(
            "engine.similarity",
            metric=metric,
            rows=n_source,
            cols=n_target,
            dtype=self.dtype.name,
            workers=self.workers,
            backend=self.backend,
        ) as span:
            if self._sharded:
                out, n_chunks = self._compute_sharded(source, target, metric, span)
            else:
                kernel = prepare_metric(
                    metric, source, target, chunk_elems=self.chunk_elems
                )
                chunk = self.chunk_rows or rows_per_chunk(n_target, self.chunk_elems)
                out = np.empty((n_source, n_target), dtype=self.dtype)
                chunks = row_chunks(n_source, chunk)

                def work(rows: slice) -> None:
                    # Chunk kernels run on pool threads, so the parent is
                    # pinned explicitly (the span stack is thread-local).
                    with obs_trace.span(
                        "engine.chunk", parent=span, start=rows.start, stop=rows.stop
                    ):
                        out[rows] = kernel(rows)

                map_chunks(work, chunks, self.workers, self._executor())
                n_chunks = len(chunks)
                self._last_compute = {"backend": "thread", "shards": n_chunks}
            span.count("chunks", n_chunks)
        self.stats.computations += 1
        registry = obs_metrics.get_metrics()
        registry.inc("engine.computations")
        registry.inc("engine.chunks", n_chunks)
        # Once per computed matrix (the cold path only), so the live
        # stream sees "score matrix ready" without touching the chunk loop.
        obs_events.emit(
            "engine.scores_ready",
            metric=metric,
            rows=n_source,
            cols=n_target,
            dtype=self.dtype.name,
            chunks=n_chunks,
        )
        return out

    def _compute_sharded(
        self, source: np.ndarray, target: np.ndarray, metric: str, span
    ) -> tuple[np.ndarray, int]:
        """Score over the 2-D shard grid, on threads or shard processes.

        Both backends run :func:`~repro.similarity.sharded.score_shard`
        over the identical plan, so the choice never shows in the bits.
        """
        n_source, n_target = source.shape[0], target.shape[0]
        plan = plan_shards(
            n_source,
            n_target,
            chunk_rows=self.chunk_rows,
            chunk_cols=self.shard_cols,
            memory_budget=self.memory_budget,
            itemsize=self.dtype.itemsize,
            chunk_elems=self.chunk_elems,
        )
        use_processes = (
            self.backend == "process"
            and self.workers > 1
            and len(plan) > 1
            and n_source * n_target >= self.process_threshold
        )
        if use_processes:
            try:
                out, seconds = process_sharded_similarity(
                    source,
                    target,
                    metric,
                    plan,
                    pool=self._process_executor(),
                    chunk_elems=self.chunk_elems,
                )
            except WorkerCrashedError:
                # A broken ProcessPoolExecutor is dead for good — every
                # later submit would raise.  Discard it so a retry (or
                # the supervisor's process -> thread rung followed by a
                # later flip back) starts from a fresh pool.
                self._discard_process_pool()
                raise
            for shard, shard_seconds in zip(plan, seconds):
                obs_trace.event(
                    "engine.shard",
                    backend="process",
                    rows=f"{shard.rows.start}:{shard.rows.stop}",
                    cols=f"{shard.cols.start}:{shard.cols.stop}",
                    seconds=round(shard_seconds, 6),
                )
            executed = "process"
        else:
            out = np.empty((n_source, n_target), dtype=self.dtype)

            def work(shard) -> None:
                with obs_trace.span(
                    "engine.shard",
                    parent=span,
                    backend="thread",
                    rows=f"{shard.rows.start}:{shard.rows.stop}",
                    cols=f"{shard.cols.start}:{shard.cols.stop}",
                ):
                    out[shard.rows, shard.cols] = score_shard(
                        source, target, metric, shard, self.chunk_elems
                    )

            map_chunks(work, plan, self.workers, self._executor())
            executed = "thread"
        self._last_compute = {"backend": executed, "shards": len(plan)}
        return out, len(plan)

    def resource_info(self) -> dict[str, object]:
        """Backend/worker configuration and last shard count (for ledgers)."""
        info: dict[str, object] = {
            "backend": self.backend,
            "workers": self.workers,
            "shards": 0,
        }
        info.update(self._last_compute)
        return info

    # -- chunked entry points ------------------------------------------

    def _chunk_size(self, n_target: int, chunk_size: int | None) -> int:
        if chunk_size is not None:
            return chunk_size
        return self.chunk_rows or rows_per_chunk(n_target, self.chunk_elems)

    def top_k(
        self,
        source: np.ndarray,
        target: np.ndarray,
        k: int,
        metric: str = "cosine",
        chunk_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Engine-scheduled :func:`~repro.similarity.chunked.chunked_top_k`.

        Candidate lists are not cached (they are k/n_target the size of S
        and cheap to regenerate); the engine contributes its worker pool,
        dtype, and chunk policy.
        """
        return chunked_top_k(
            source,
            target,
            k,
            chunk_size=self._chunk_size(np.asarray(target).shape[0], chunk_size),
            metric=metric,
            workers=self.workers,
            dtype=self.dtype,
        )

    def top_k_candidates(
        self,
        source: np.ndarray,
        target: np.ndarray,
        k: int,
        metric: str = "cosine",
        chunk_size: int | None = None,
    ) -> "CandidateSet":
        """Exact top-``k`` candidate lists as a sparse ``CandidateSet``.

        The sparse matching path's front door.  A cached S for this
        (source, target, metric) problem is reused — deriving top-k from
        the cached matrix is O(n^2) selection, not O(n^2 d) computation,
        and counts as a cache hit — otherwise the streamed
        :meth:`top_k` kernel runs and no n x n array is ever allocated.
        The derived candidate lists themselves are not cached (k/n the
        size of S and cheap to regenerate).
        """
        from repro.index.candidates import CandidateSet  # index layers above similarity

        source = check_embedding_matrix(source, "source")
        target = check_embedding_matrix(target, "target")
        check_shape_compatible(source, target)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n_target = target.shape[0]
        k = min(k, n_target)
        if self.cache_enabled:
            key = self._cache_key(source, target, metric)
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    self.stats.hits += 1
            if entry is not None:
                obs_metrics.get_metrics().inc("engine.cache.hits")
                obs_trace.event("engine.topk.from_cache", metric=metric, k=k)
                indices = top_k_indices(entry.matrix, k, axis=1)
                scores = np.take_along_axis(entry.matrix, indices, axis=1)
                return CandidateSet.from_topk(
                    indices, scores.astype(np.float64), n_targets=n_target
                )
        with obs_trace.span(
            "engine.topk", metric=metric, rows=source.shape[0], cols=n_target, k=k
        ):
            indices, scores = self.top_k(
                source, target, k, metric=metric, chunk_size=chunk_size
            )
        return CandidateSet.from_topk(indices, scores, n_targets=n_target)

    def rowwise_top_k(
        self,
        queries: np.ndarray,
        targets: np.ndarray,
        k: int,
        metric: str = "cosine",
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-row *pair-stable* top-``k`` — the serving layer's scorer.

        Each query row is scored against ``targets`` with
        :func:`~repro.similarity.metrics.rowwise_scores` (elementwise
        kernels, no BLAS matmul), so every (query, target) score is a
        pure function of the two vectors: results are bitwise-identical
        whether a row arrives alone or coalesced into a batch, and
        whichever subset of targets shares the call.  Ties are broken by
        ascending target position.  Rows are independent, so they fan
        out across the engine's thread pool; nothing is cached (serving
        targets mutate between calls, so matrix reuse is the caller's
        snapshot-layer concern).

        Returns one ``(ids, scores)`` pair per query row, best-first.
        This deliberately does *not* share the BLAS block kernels of
        :meth:`top_k`: their summation order varies with block shape,
        which would break the serving determinism contract
        (DESIGN.md §12).
        """
        queries = check_embedding_matrix(queries, "queries")
        targets = check_embedding_matrix(targets, "targets")
        check_shape_compatible(queries, targets)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, targets.shape[0])

        def work(row: int) -> tuple[np.ndarray, np.ndarray]:
            scores = rowwise_scores(metric, queries[row], targets)
            order = np.lexsort((np.arange(len(scores)), -scores))[:k]
            return order.astype(np.int64), scores[order]

        with obs_trace.span(
            "engine.rowwise_topk",
            metric=metric,
            rows=queries.shape[0],
            cols=targets.shape[0],
            k=k,
        ):
            return map_chunks(
                work, range(queries.shape[0]), self.workers, self._executor()
            )

    def csls_top_k(
        self,
        source: np.ndarray,
        target: np.ndarray,
        k: int,
        csls_k: int = 1,
        metric: str = "cosine",
        chunk_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Engine-scheduled CSLS top-k.

        A caching engine has already budgeted for holding a full S, so
        the two CSLS passes share their similarity blocks instead of
        recomputing them (see ``reuse_blocks`` on
        :func:`~repro.similarity.chunked.chunked_csls_top_k`).
        """
        return chunked_csls_top_k(
            source,
            target,
            k,
            csls_k=csls_k,
            chunk_size=self._chunk_size(np.asarray(target).shape[0], chunk_size),
            metric=metric,
            workers=self.workers,
            dtype=self.dtype,
            reuse_blocks=True if self.cache_enabled else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimilarityEngine(workers={self.workers}, dtype={self.dtype.name!r}, "
            f"cache={self.cache_enabled}, cache_size={self.cache_size})"
        )
