"""Process-backed shard execution over ``multiprocessing.shared_memory``.

The thread backend is the right default: numpy/BLAS kernels release the
GIL, so threads scale without copying anything.  A process pool earns
its keep only when the GIL-holding share of a shard (fancy indexing,
Python-level prep) dominates, or when the platform's BLAS refuses to
run concurrently — so the engine routes to this module only above a
size threshold and on explicit request.

Determinism: both backends execute :func:`score_shard` — the same
per-shard math — over the same planner grid, and each shard writes a
disjoint output tile.  Metric preparation is row-independent (cosine
normalisation, squared norms), so a shard's block depends only on its
own rows and columns, never on the executor.  Scores are therefore
bitwise-identical across worker counts *and* across thread/process
backends.

Mechanics: the parent copies source, target, and the output buffer into
``multiprocessing.shared_memory`` segments once per computation; workers
attach by name (cached per process, pruned between computations), score
their shard, and write the tile in place.  Only shard descriptors cross
the pipe.  The parent copies the output out and unlinks every segment
before returning, so no shared memory outlives a call.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import WorkerCrashedError
from repro.similarity.metrics import prepare_metric
from repro.utils.parallel import DEFAULT_CHUNK_ELEMS, Shard

#: Output elements below which the engine never routes to processes:
#: pool spawn plus three shared-memory copies cost more than just
#: scoring this many elements on threads.
PROCESS_MIN_ELEMS = 2**22


@dataclass(frozen=True)
class _ShmSpec:
    """Enough to re-open one shared array from a worker process."""

    name: str
    shape: tuple[int, int]
    dtype: str


def score_shard(
    source: np.ndarray,
    target: np.ndarray,
    metric: str,
    shard: Shard,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
) -> np.ndarray:
    """Score one shard: ``source[shard.rows]`` against ``target[shard.cols]``.

    The single definition of per-shard math, shared by the thread and
    process backends — which is what makes backend choice invisible to
    the numbers.
    """
    kernel = prepare_metric(
        metric, source[shard.rows], target[shard.cols], chunk_elems=chunk_elems
    )
    return kernel(slice(0, shard.rows.stop - shard.rows.start))


# -- worker side -------------------------------------------------------

#: Per-worker-process attachment cache: segment name -> open handle.
#: Attaching is a syscall + mmap; shards from one computation share the
#: same three segments, so caching pays immediately.  Stale entries are
#: pruned at the start of each task so segments from a previous
#: computation do not pin pages for the life of the pool.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(spec: _ShmSpec) -> np.ndarray:
    segment = _ATTACHED.get(spec.name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=spec.name)
        _ATTACHED[spec.name] = segment
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)


def _prune_attachments(keep: frozenset[str]) -> None:
    for name in [name for name in _ATTACHED if name not in keep]:
        _ATTACHED.pop(name).close()


def _run_shard(
    task: tuple[_ShmSpec, _ShmSpec, _ShmSpec, str, int, Shard],
) -> float:
    """Worker entry point: score one shard, write its tile, return seconds."""
    source_spec, target_spec, out_spec, metric, chunk_elems, shard = task
    _prune_attachments(frozenset((source_spec.name, target_spec.name, out_spec.name)))
    started = time.perf_counter()
    source = _attach(source_spec)
    target = _attach(target_spec)
    out = _attach(out_spec)
    out[shard.rows, shard.cols] = score_shard(source, target, metric, shard, chunk_elems)
    return time.perf_counter() - started


# -- parent side -------------------------------------------------------


def _share(array: np.ndarray) -> tuple[shared_memory.SharedMemory, _ShmSpec]:
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, _ShmSpec(segment.name, tuple(array.shape), array.dtype.name)


def process_sharded_similarity(
    source: np.ndarray,
    target: np.ndarray,
    metric: str,
    shards: list[Shard],
    *,
    pool,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
) -> tuple[np.ndarray, list[float]]:
    """Score every shard on ``pool`` (a process pool); return (S, seconds).

    ``seconds`` holds per-shard worker-side wall time in shard order, for
    the caller to emit as trace events.  All shared segments are created
    and unlinked here — including when a worker dies mid-shard — so no
    shared memory ever outlives a call.  A dead worker (SIGKILL, OOM
    kill: the executor reports a broken pool rather than hanging on
    results that cannot arrive) surfaces as a typed
    :class:`~repro.errors.WorkerCrashedError` carrying whatever exit
    codes the pool still knows.
    """
    n_source, n_target = source.shape[0], target.shape[0]
    segments: list[shared_memory.SharedMemory] = []
    try:
        source_segment, source_spec = _share(source)
        segments.append(source_segment)
        target_segment, target_spec = _share(target)
        segments.append(target_segment)
        out_nbytes = max(1, n_source * n_target * source.dtype.itemsize)
        out_segment = shared_memory.SharedMemory(create=True, size=out_nbytes)
        segments.append(out_segment)
        out_spec = _ShmSpec(out_segment.name, (n_source, n_target), source.dtype.name)
        tasks = [
            (source_spec, target_spec, out_spec, metric, chunk_elems, shard)
            for shard in shards
        ]
        try:
            seconds = list(pool.map(_run_shard, tasks))
        except BrokenExecutor as error:
            exitcodes = _dead_exitcodes(pool)
            raise WorkerCrashedError(
                f"shard worker process died mid-computation "
                f"({len(shards)} shards in flight"
                + (f", worker exit codes {exitcodes}" if exitcodes else "")
                + f"): {error}",
                backend="process",
                exitcodes=exitcodes,
            ) from error
        out_view = np.ndarray(
            (n_source, n_target), dtype=source.dtype, buffer=out_segment.buf
        )
        result = out_view.copy()
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()
    return result, seconds


def _dead_exitcodes(pool) -> tuple[int, ...]:
    """Best-effort nonzero exit codes of a broken pool's dead workers.

    ``ProcessPoolExecutor`` keeps its worker ``Process`` objects in the
    private ``_processes`` map until shutdown; other pool types simply
    yield no codes.
    """
    try:
        processes = getattr(pool, "_processes", None) or {}
        return tuple(
            process.exitcode
            for process in list(processes.values())
            if process.exitcode not in (None, 0)
        )
    except Exception:  # pragma: no cover - purely diagnostic path
        return ()
