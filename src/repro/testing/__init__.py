"""Deterministic fault-injection harness for chaos-testing the runtime.

Everything here lives outside the production import graph: neither the
supervisor nor the experiment runner imports :mod:`repro.testing`, so
the clean path pays zero import cost.  Chaos suites plug injectors in
from the outside via ``run_experiment(matcher_factory=...)``; the
sparse-path tests wrap matchers in
:func:`~repro.testing.allocations.forbid_allocations`.
"""

from repro.testing.allocations import DenseAllocationError, forbid_allocations
from repro.testing.faults import (
    AllocationFailure,
    EmbeddingCorruptor,
    FaultInjector,
    ForcedConvergenceFailure,
    KernelStall,
    KilledWorkerInjector,
    TornWriteInjector,
    corrupt_embeddings,
    default_injectors,
    faulty_factory,
    kill_current_worker,
)

__all__ = [
    "AllocationFailure",
    "DenseAllocationError",
    "forbid_allocations",
    "EmbeddingCorruptor",
    "FaultInjector",
    "ForcedConvergenceFailure",
    "KernelStall",
    "KilledWorkerInjector",
    "TornWriteInjector",
    "corrupt_embeddings",
    "default_injectors",
    "faulty_factory",
    "kill_current_worker",
]
